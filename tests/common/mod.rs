//! Shared support for the cross-crate portability tests.
//!
//! The sweep helpers were promoted into `galois_harness::sweep` so the
//! serve/runtime/harness test crates share one implementation; this module
//! re-exports them for the workspace-level tests.

#[allow(unused_imports)]
pub use deterministic_galois::harness::sweep::{
    assert_portable, assert_portable_over, det_executor, det_executor_spread, THREAD_COUNTS,
};
