//! Shared support for the cross-crate portability tests.
//!
//! Portability sweeps follow one shape — run the app at every thread count,
//! reduce the run to a signature, assert all signatures are equal — so the
//! sweep loop and the executor construction live here instead of being
//! copied into every test.

use deterministic_galois::core::{DetOptions, Executor, Schedule};
use std::fmt::Debug;

/// Thread counts every portability sweep covers. The host running the
/// tests may have a single core: 8 and 16 deliberately oversubscribe it,
/// because determinism that only holds when every thread gets its own core
/// is not the paper's determinism.
pub const THREAD_COUNTS: [usize; 5] = [1, 2, 5, 8, 16];

/// The default deterministic executor at `threads`.
pub fn det_executor(threads: usize) -> Executor {
    Executor::new()
        .threads(threads)
        .schedule(Schedule::deterministic())
}

/// A deterministic executor with a non-default locality spread (the §3.3
/// id-assignment optimization used by the mesh apps).
pub fn det_executor_spread(threads: usize, locality_spread: usize) -> Executor {
    Executor::new()
        .threads(threads)
        .schedule(Schedule::Deterministic(DetOptions {
            locality_spread,
            ..Default::default()
        }))
}

/// Runs `run` at every thread count in [`THREAD_COUNTS`] and asserts the
/// returned signature never changes. The signature should hold everything
/// the test claims is portable: outputs, schedule counters, round counts.
pub fn assert_portable<S, F>(label: &str, mut run: F)
where
    S: PartialEq + Debug,
    F: FnMut(usize) -> S,
{
    let mut prev: Option<S> = None;
    for threads in THREAD_COUNTS {
        let sig = run(threads);
        if let Some(p) = &prev {
            assert_eq!(&sig, p, "{label} changed at {threads} threads");
        }
        prev = Some(sig);
    }
}
