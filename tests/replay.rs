//! Record/replay and lockstep-replication tests.
//!
//! The paper's portability property — bit-identical deterministic schedules
//! at any thread count — is what makes a recorded run a *contract*: a
//! [`RunManifest`] captured once must replay byte-identically on any
//! machine shape. These tests record at one thread count, replay across
//! `{2, 5, 8, 16}`, cross-check lockstep replicas, plant a schedule
//! perturbation to prove lockstep pinpoints the exact first divergent
//! round, and reject corrupted manifest files.
//!
//! [`RunManifest`]: deterministic_galois::core::RunManifest

use deterministic_galois::core::{
    DetOptions, ManifestError, ManifestRecorder, RunManifest, Schedule,
};
use deterministic_galois::graph::gen;
use deterministic_galois::harness::{
    record_run, replay_run, run_lockstep, unperturbed, App, InputConfig, LockstepReplica,
    ReplayError,
};
use deterministic_galois::runtime::fingerprint::Fnv64;

fn record_default(app: App) -> RunManifest {
    record_run(app, 1, None, &InputConfig::default()).expect("recording must succeed")
}

/// Record at threads=1, then replay at oversubscribed thread counts: every
/// replay must reproduce the recorded hash chain and final fingerprint
/// byte-for-byte.
#[test]
fn replay_is_bit_identical_across_thread_counts() {
    for app in [App::Bfs, App::Mis] {
        let manifest = record_default(app);
        assert!(manifest.round_hashes.len() > 1, "{app}: trivial recording");
        for threads in [2, 5, 8, 16] {
            let out = replay_run(&manifest, threads, None)
                .unwrap_or_else(|e| panic!("{app} replay at {threads} threads: {e}"));
            assert_eq!(
                out.fingerprint, manifest.final_fingerprint,
                "{app} at {threads} threads"
            );
            assert_eq!(out.rounds as usize, manifest.round_hashes.len());
        }
    }
}

/// The manifest round-trips through its on-disk form: save, load, replay.
#[test]
fn saved_manifest_replays_after_reload() {
    let dir = std::env::temp_dir().join("galois-replay-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mm.manifest.json");
    let manifest = record_default(App::Mm);
    manifest.save(&path).unwrap();
    let reloaded = RunManifest::load(&path).unwrap();
    assert_eq!(reloaded, manifest);
    let out = replay_run(&reloaded, 5, None).unwrap();
    assert_eq!(out.fingerprint, manifest.final_fingerprint);
    std::fs::remove_file(&path).ok();
}

/// A replay driven through the recorder marks its [`RunReport`] as a
/// replay (the report-provenance accessor this API added).
///
/// [`RunReport`]: deterministic_galois::core::RunReport
#[test]
fn replayed_reports_mark_themselves() {
    let manifest = record_default(App::Bfs);
    let g = gen::uniform_random_parallel(2_000, 5, 42, 1);
    let exec = manifest.exec.to_executor(4);
    let mut rec = ManifestRecorder::replaying(&manifest);
    let (_, report) =
        deterministic_galois::apps::bfs::try_galois_recorded(&g, 0, &exec, &mut rec).unwrap();
    assert!(report.is_replay());
    // A fresh (recording) run is not a replay.
    let (_, fresh) = deterministic_galois::apps::bfs::try_galois(&g, 0, &exec).unwrap();
    assert!(!fresh.is_replay());
}

/// Clean lockstep: replicas at different thread counts, one with a chaos
/// seed, must agree with each other and with the recording at every round.
#[test]
fn lockstep_replicas_agree_on_clean_runs() {
    let manifest = record_default(App::Mis);
    let replicas = [
        LockstepReplica {
            threads: 2,
            chaos_seed: None,
        },
        LockstepReplica {
            threads: 7,
            chaos_seed: Some(99),
        },
        LockstepReplica {
            threads: 16,
            chaos_seed: Some(5),
        },
    ];
    let report = run_lockstep(&manifest, &replicas, &unperturbed).unwrap();
    assert!(report.all_agree(), "divergence: {:?}", report.divergence);
    assert_eq!(report.rounds as usize, manifest.round_hashes.len());
}

/// Planted perturbation: one replica runs with a different locality
/// spread, which legally changes the deterministic schedule. Lockstep must
/// report the exact first divergent round — the same round its
/// per-replica manifest verdict pinpoints, stable across repetitions.
#[test]
fn lockstep_pinpoints_first_divergent_round() {
    let manifest = record_default(App::Bfs);
    let replicas = [
        LockstepReplica {
            threads: 2,
            chaos_seed: None,
        },
        LockstepReplica {
            threads: 4,
            chaos_seed: None,
        },
    ];
    // Perturb only the 4-thread replica: locality spread 7 deals the task
    // sequence differently, so its schedule diverges from the recording at
    // a deterministic round.
    let perturb = |_: App,
                   _: deterministic_galois::harness::Variant,
                   threads: usize,
                   _: Option<u64>,
                   exec: deterministic_galois::core::Executor| {
        if threads == 4 {
            exec.schedule(Schedule::Deterministic(DetOptions {
                locality_spread: 7,
                ..Default::default()
            }))
        } else {
            exec
        }
    };
    let first = run_lockstep(&manifest, &replicas, &perturb).unwrap();
    let div = first.divergence.expect("perturbed replica must diverge");
    assert_eq!((div.replica_a, div.replica_b), (0, 1));
    assert_ne!(div.hash_a, div.hash_b);
    // The clean replica reproduces the recording; the perturbed one
    // diverges from it at the same round the pairwise check found.
    assert_eq!(first.manifest_divergences[0], None);
    let against_manifest = first.manifest_divergences[1]
        .as_ref()
        .expect("perturbed replica must diverge from the recording");
    assert_eq!(against_manifest.round, div.round);
    // The pinpointed round is exact: a second run reports the same one.
    let second = run_lockstep(&manifest, &replicas, &perturb).unwrap();
    assert_eq!(second.divergence, Some(div));
}

/// A flipped byte anywhere in the manifest body is caught by the embedded
/// checksum before any field is trusted.
#[test]
fn corrupt_manifest_is_rejected() {
    let manifest = record_default(App::Bfs);
    let text = manifest.to_json();
    // Flip one hex digit inside the round-hash array.
    let at = text.find("round_hashes").unwrap() + 20;
    let mut bytes = text.clone().into_bytes();
    bytes[at] = if bytes[at] == b'a' { b'b' } else { b'a' };
    let corrupt = String::from_utf8(bytes).unwrap();
    match RunManifest::from_json(&corrupt) {
        Err(ManifestError::Checksum { .. }) => {}
        other => panic!("expected checksum rejection, got {other:?}"),
    }
    // Truncation is also rejected.
    assert!(RunManifest::from_json(&text[..text.len() / 2]).is_err());
}

/// A manifest from a future format version is rejected even when its
/// checksum is intact (re-signed after the version edit).
#[test]
fn future_version_is_rejected() {
    let manifest = record_default(App::Bfs);
    let text = manifest.to_json();
    let body = text.replacen("\"version\":1", "\"version\":9", 1);
    // Re-sign: the checksum covers everything before its own field, with
    // the closing brace restored.
    let at = body.find(",\"checksum\":").unwrap();
    let mut h = Fnv64::new();
    h.write_bytes(format!("{}}}", &body[..at]).as_bytes());
    let resigned = format!("{},\"checksum\":\"{:016x}\"}}\n", &body[..at], h.finish());
    match RunManifest::from_json(&resigned) {
        Err(ManifestError::Version(9)) => {}
        other => panic!("expected version rejection, got {other:?}"),
    }
}

/// A manifest whose input key was tampered with (but re-signed) is refused
/// by the replay layer rather than silently replaying the wrong input.
#[test]
fn foreign_input_key_is_refused() {
    let mut manifest = record_default(App::Bfs);
    manifest.input_key = "uniform-n9999-d5-s42".into();
    match replay_run(&manifest, 2, None) {
        Err(ReplayError::Mismatch(msg)) => {
            assert!(msg.contains("input"), "unexpected message: {msg}")
        }
        other => panic!("expected input-key mismatch, got {other:?}"),
    }
}
