//! Acceptance tests for the round-level observability layer.
//!
//! The round log's canonical serialization is the repo's portability oracle
//! in artifact form: under DIG scheduling every schedule-derived field
//! (window, attempted, committed, failed, conflict attribution) must be
//! byte-identical for any thread count. These tests pin that end to end
//! through the real applications, replay the adaptive-window sequence
//! against the §3.2 policy, and check that the probe is observation-only
//! (same atomic-update counts with and without it).

use deterministic_galois::apps::{bfs, dmr, mis};
use deterministic_galois::core::window::{AdaptiveWindow, WindowPolicy};
use deterministic_galois::core::{
    Ctx, Executor, MarkTable, OpResult, RoundLog, RunReport, Schedule,
};
use deterministic_galois::graph::gen;

fn det_exec(threads: usize) -> Executor {
    Executor::new()
        .threads(threads)
        .schedule(Schedule::deterministic())
        .record_rounds(true)
}

fn log_of(mut report: RunReport) -> RoundLog {
    report.take_round_log().expect("record_rounds was on")
}

/// bfs: canonical round logs are byte-identical at 1/2/4/8 threads.
#[test]
fn bfs_round_log_byte_identical_across_threads() {
    let g = gen::uniform_random(5_000, 4, 7);
    let reference = {
        let log = log_of(bfs::galois(&g, 0, &det_exec(1)).1);
        assert!(!log.is_empty(), "bfs det run must record rounds");
        log.canonical_jsonl()
    };
    for threads in [2usize, 4, 8] {
        let log = log_of(bfs::galois(&g, 0, &det_exec(threads)).1);
        assert_eq!(
            log.canonical_jsonl(),
            reference,
            "bfs canonical round log diverged at {threads} threads"
        );
    }
}

/// dmr: canonical round logs are identical at 1/2/4/8 threads. The mesh is
/// refined in place, so each run gets a fresh identical input.
///
/// One caveat that bfs does not have: dmr's abstract locations are mesh
/// arena slots, whose numeric ids are assigned by allocation order during
/// the parallel commit phase — the *schedule* is portable, but slot names
/// are only portable up to the (deterministic) renaming that the geometry
/// induces, exactly like [`tests/determinism.rs`]'s canonical-triangle
/// oracle. So the counts portion of the log is compared byte-for-byte, and
/// the conflict attribution is compared under the geometric canonical name
/// of each conflicting triangle (its sorted vertex coordinates).
#[test]
fn dmr_round_log_portable_across_threads() {
    // A conflicting location's canonical name: the triangle's vertex grid
    // coordinates, sorted.
    type GeoKey = [(i64, i64); 3];
    let run = |threads: usize| -> (String, Vec<Vec<(GeoKey, u64)>>) {
        let mesh = dmr::make_input(400, 42);
        let log = log_of(dmr::galois(&mesh, &det_exec(threads)));
        assert!(!log.is_empty(), "dmr det run must record rounds");
        let counts_only = log
            .records()
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.conflicts.clear();
                r.canonical_json() + "\n"
            })
            .collect::<String>();
        let geo_conflicts = log
            .records()
            .iter()
            .map(|r| {
                let mut per_round: Vec<(GeoKey, u64)> = r
                    .conflicts
                    .iter()
                    .map(|&(loc, n)| {
                        let mut key: GeoKey = mesh.tri(loc).v.map(|vid| mesh.vertex(vid).to_grid());
                        key.sort_unstable();
                        (key, n)
                    })
                    .collect();
                per_round.sort_unstable();
                per_round
            })
            .collect();
        (counts_only, geo_conflicts)
    };
    let (ref_counts, ref_conflicts) = run(1);
    for threads in [2usize, 4, 8] {
        let (counts, conflicts) = run(threads);
        assert_eq!(
            counts, ref_counts,
            "dmr schedule counts diverged at {threads} threads"
        );
        assert_eq!(
            conflicts, ref_conflicts,
            "dmr conflict attribution diverged at {threads} threads"
        );
    }
}

/// mis locks input graph nodes — input-derived names like bfs — so its log
/// is raw byte-identical too, including the conflict attribution.
#[test]
fn mis_round_log_byte_identical_across_threads() {
    let g = gen::uniform_random_undirected(3_000, 4, 11);
    let run = |threads: usize| {
        let log = log_of(mis::galois(&g, &det_exec(threads)).1);
        assert!(!log.is_empty(), "mis det run must record rounds");
        log.canonical_jsonl()
    };
    let reference = run(1);
    assert!(
        reference.contains("\"conflicts\":[["),
        "mis must exercise the abort attribution"
    );
    for threads in [2usize, 4, 8] {
        assert_eq!(
            run(threads),
            reference,
            "mis canonical round log diverged at {threads} threads"
        );
    }
}

/// The recorded window sizes replay the §3.2 adaptive policy exactly: a
/// single-pass workload's log must match a fresh [`AdaptiveWindow`] stepped
/// with the log's own (attempted, committed) pairs.
#[test]
fn window_sequence_matches_adaptive_policy() {
    const TASKS: u64 = 1_000;
    const CELLS: usize = 8;
    // High-conflict, no-push workload: one pass, lots of failed rounds, so
    // the window both shrinks and regrows over the run.
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        ctx.acquire((*t % CELLS as u64) as u32)?;
        ctx.failsafe()?;
        Ok(())
    };
    let marks = MarkTable::new(CELLS);
    let mut log = RoundLog::new();
    let report = Executor::new()
        .threads(3)
        .schedule(Schedule::deterministic())
        .iterate((0..TASKS).collect())
        .probe(&mut log)
        .run(&marks, &op);
    assert_eq!(report.stats.committed, TASKS);
    assert_eq!(report.stats.rounds, log.len() as u64);
    assert!(
        log.records().iter().any(|r| r.failed > 0),
        "workload must actually conflict"
    );
    assert!(
        log.records()
            .iter()
            .any(|r| r.failed > 0 && !r.conflicts.is_empty()),
        "conflicting rounds must attribute their aborts"
    );

    let mut sim = AdaptiveWindow::for_pass(WindowPolicy::default(), TASKS as usize);
    for rec in log.records() {
        assert_eq!(
            rec.window,
            sim.size() as u64,
            "round {}: recorded window diverged from the §3.2 policy replay",
            rec.round
        );
        sim.update(rec.attempted as usize, rec.committed as usize);
    }
}

/// The probe observes; it must not perturb. A probed run reports exactly
/// the same schedule-derived stats — including `atomic_updates` — as an
/// unprobed one.
#[test]
fn probe_does_not_perturb_atomic_updates() {
    let g = gen::uniform_random(5_000, 4, 7);
    let plain = bfs::galois(
        &g,
        0,
        &Executor::new()
            .threads(2)
            .schedule(Schedule::deterministic()),
    )
    .1;
    let probed = bfs::galois(&g, 0, &det_exec(2)).1;
    assert!(plain.round_log().is_none());
    assert!(probed.round_log().is_some());
    assert_eq!(plain.stats.atomic_updates, probed.stats.atomic_updates);
    assert_eq!(plain.stats.committed, probed.stats.committed);
    assert_eq!(plain.stats.aborted, probed.stats.aborted);
    assert_eq!(plain.stats.rounds, probed.stats.rounds);
}
