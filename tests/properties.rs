//! Property-based tests (proptest) over the core scheduling machinery and
//! the substrates, checking the invariants the paper's correctness argument
//! rests on.

use deterministic_galois::core::flags::AbortFlags;
use deterministic_galois::core::marks::{LockId, MarkTable, UNOWNED};
use deterministic_galois::core::task::{assign_ids, spread_for_locality, PendingItem};
use deterministic_galois::core::window::{AdaptiveWindow, WindowPolicy};
use deterministic_galois::core::{Ctx, Executor, OpResult, Schedule};
use proptest::prelude::*;

proptest! {
    /// writeMarksMax: the final mark of each location is the maximum of the
    /// ids that touched it, for any interleaving (here: any permutation).
    #[test]
    fn write_max_is_permutation_invariant(
        writes in proptest::collection::vec((0u32..16, 1u64..100), 1..60),
        seed in 0u64..1000,
    ) {
        let reference = {
            let t = MarkTable::new(16);
            for &(loc, id) in &writes {
                t.write_max(LockId(loc), id);
            }
            (0..16).map(|l| t.load(LockId(l))).collect::<Vec<_>>()
        };
        // A deterministic shuffle of the same writes.
        let mut shuffled = writes.clone();
        let n = shuffled.len();
        for i in 0..n {
            let j = (seed as usize + i * 7919) % n;
            shuffled.swap(i, j);
        }
        let t = MarkTable::new(16);
        for &(loc, id) in &shuffled {
            t.write_max(LockId(loc), id);
        }
        let got = (0..16).map(|l| t.load(LockId(l))).collect::<Vec<_>>();
        prop_assert_eq!(got, reference);
    }

    /// The abort-flag protocol marks exactly the tasks that are not local
    /// maxima of the interference relation.
    #[test]
    fn flags_select_local_maxima(
        neighborhoods in proptest::collection::vec(
            proptest::collection::btree_set(0u32..12, 1..5),
            1..12,
        ),
    ) {
        let marks = MarkTable::new(12);
        let flags = AbortFlags::new(neighborhoods.len());
        // Inspect phase: every task max-marks its neighborhood.
        for (id, nb) in neighborhoods.iter().enumerate() {
            let mark_value = id as u64 + 1;
            for &loc in nb {
                let prev = marks.write_max(LockId(loc), mark_value);
                if prev > mark_value {
                    flags.set(id);
                } else if prev != UNOWNED && prev != mark_value {
                    flags.set((prev - 1) as usize);
                }
            }
        }
        // A task is unflagged iff no *other* task with a higher id shares a
        // location with it.
        for (id, nb) in neighborhoods.iter().enumerate() {
            let beaten = neighborhoods
                .iter()
                .enumerate()
                .any(|(other, onb)| other > id && !onb.is_disjoint(nb));
            prop_assert_eq!(
                flags.get(id),
                beaten,
                "task {} with neighborhood {:?}", id, nb
            );
        }
        // Unflagged tasks form an independent set.
        for (a, na) in neighborhoods.iter().enumerate() {
            for (b, nb2) in neighborhoods.iter().enumerate() {
                if a < b && !flags.get(a) && !flags.get(b) {
                    prop_assert!(na.is_disjoint(nb2));
                }
            }
        }
    }

    /// Deterministic id assignment is a bijection ordered by (parent, rank),
    /// independent of input order.
    #[test]
    fn id_assignment_is_order_invariant(
        pairs in proptest::collection::btree_set((0u64..50, 0u32..8), 1..40),
        seed in 0u64..100,
    ) {
        let items: Vec<PendingItem<u64>> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(parent, rank))| PendingItem { task: i as u64, parent, rank })
            .collect();
        let mut shuffled = items.clone();
        let n = shuffled.len();
        for i in 0..n {
            let j = (seed as usize + i * 31) % n;
            shuffled.swap(i, j);
        }
        let a = assign_ids(items, 1);
        let b = assign_ids(shuffled, 2);
        prop_assert_eq!(a, b);
    }

    /// Locality spreading is a permutation for any stride.
    #[test]
    fn spread_permutes(len in 0usize..200, stride in 0usize..40) {
        let v: Vec<usize> = (0..len).collect();
        let mut s = spread_for_locality(v.clone(), stride);
        s.sort_unstable();
        prop_assert_eq!(s, v);
    }

    /// The adaptive window is a pure function of commit history.
    #[test]
    fn window_trajectory_is_deterministic(
        history in proptest::collection::vec((1usize..5000, 0usize..5000), 0..50),
        pass in 1usize..1_000_000,
    ) {
        let run = || {
            let mut w = AdaptiveWindow::for_pass(WindowPolicy::default(), pass);
            let mut out = vec![w.size()];
            for &(a, c) in &history {
                w.update(a, c.min(a));
                out.push(w.size());
            }
            out
        };
        prop_assert_eq!(run(), run());
    }

    /// Executor equivalence on a random reduction: for any multiset of
    /// tasks and any bucket mapping, all three schedulers commit every task
    /// exactly once and compute the same bucket sums.
    #[test]
    fn schedulers_agree_on_commutative_reductions(
        tasks in proptest::collection::vec(0u64..1000, 1..300),
        buckets in 1u64..12,
        threads in 1usize..5,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let run = |schedule: Schedule| {
            let sums: Vec<AtomicU64> = (0..buckets).map(|_| AtomicU64::new(0)).collect();
            let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
                let b = (*t % buckets) as u32;
                ctx.acquire(b)?;
                ctx.failsafe()?;
                let cur = sums[b as usize].load(Ordering::Relaxed);
                sums[b as usize].store(cur + *t, Ordering::Relaxed);
                Ok(())
            };
            let marks = MarkTable::new(buckets as usize);
            let report = Executor::new()
                .threads(threads)
                .schedule(schedule)
                .iterate(tasks.clone())
                .run(&marks, &op);
            let v: Vec<u64> = sums.iter().map(|s| s.load(Ordering::Relaxed)).collect();
            (v, report.stats.committed)
        };
        let (serial, c0) = run(Schedule::Serial);
        let (spec, c1) = run(Schedule::Speculative);
        let (det, c2) = run(Schedule::deterministic());
        prop_assert_eq!(&serial, &spec);
        prop_assert_eq!(&serial, &det);
        prop_assert_eq!(c0, tasks.len() as u64);
        prop_assert_eq!(c1, tasks.len() as u64);
        prop_assert_eq!(c2, tasks.len() as u64);
    }

    /// Deterministic scheduling of an order-sensitive operator is
    /// thread-count independent even under heavy conflicts.
    #[test]
    fn deterministic_order_sensitive_portability(
        tasks in proptest::collection::vec(0u64..64, 1..80),
        locs in 1u32..8,
    ) {
        use std::sync::Mutex;
        let run = |threads: usize| {
            let log: Vec<Mutex<Vec<u64>>> = (0..locs).map(|_| Mutex::new(vec![])).collect();
            let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
                let l = (*t % locs as u64) as u32;
                ctx.acquire(l)?;
                ctx.acquire((l + 1) % locs)?;
                ctx.failsafe()?;
                log[l as usize].lock().unwrap().push(*t);
                Ok(())
            };
            let marks = MarkTable::new(locs as usize);
            Executor::new()
                .threads(threads)
                .schedule(Schedule::deterministic())
                .iterate(tasks.clone())
                .run(&marks, &op);
            log.into_iter().map(|m| m.into_inner().unwrap()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(1), run(3));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Graph substrate: parallel deterministic BFS distances equal the
    /// sequential reference on arbitrary random graphs.
    #[test]
    fn bfs_distances_on_arbitrary_graphs(
        n in 2usize..120,
        deg in 1usize..5,
        seed in 0u64..500,
    ) {
        use deterministic_galois::apps::bfs;
        use deterministic_galois::graph::gen;
        let g = gen::uniform_random(n, deg, seed);
        let expect = g.bfs_distances(0);
        let exec = Executor::new().threads(2).schedule(Schedule::deterministic());
        let (dist, _) = bfs::galois(&g, 0, &exec);
        prop_assert_eq!(dist, expect);
    }

    /// Mesh substrate: the triangulation of arbitrary point sets is valid,
    /// Delaunay, and insertion-order independent.
    #[test]
    fn delaunay_of_arbitrary_points(
        raw in proptest::collection::btree_set((0i64..1024, 0i64..1024), 3..40),
    ) {
        use deterministic_galois::geometry::Point;
        use deterministic_galois::mesh::{build, check};
        // Spread points over the grid so they are distinct after scaling.
        let pts: Vec<Point> = raw
            .iter()
            .map(|&(x, y)| Point::from_grid(x << 10, y << 10))
            .collect();
        let mesh = build::triangulate(&pts);
        check::validate(&mesh).map_err(TestCaseError::fail)?;
        check::check_delaunay(&mesh).map_err(TestCaseError::fail)?;
        let mut rev = pts.clone();
        rev.reverse();
        let mesh2 = build::triangulate(&rev);
        prop_assert_eq!(
            check::canonical_triangles(&mesh),
            check::canonical_triangles(&mesh2)
        );
    }

    /// Flow substrate: preflow-push equals Edmonds–Karp on arbitrary small
    /// networks.
    #[test]
    fn pfp_equals_reference_flow(n in 4usize..40, deg in 1usize..4, seed in 0u64..200) {
        use deterministic_galois::apps::pfp;
        use deterministic_galois::graph::FlowNetwork;
        let net = FlowNetwork::random(n, deg, 50, seed);
        net.reset();
        let expect = net.edmonds_karp();
        let (flow, _) = pfp::seq(&net);
        prop_assert_eq!(flow, expect);
        net.verify_flow().map_err(TestCaseError::fail)?;
    }
}
