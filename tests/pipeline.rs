//! Cross-crate pipeline and system-level behavior tests.

use deterministic_galois::apps::dmr;
use deterministic_galois::cachesim::{CacheConfig, Hierarchy, HierarchyConfig};
use deterministic_galois::core::{Executor, Schedule};
use deterministic_galois::coredet::kernels::Kernel;
use deterministic_galois::coredet::model::{coredet_makespan_ns, native_makespan_ns};
use deterministic_galois::mesh::check;
use deterministic_galois::runtime::simtime::MachineProfile;

#[test]
fn dt_then_dmr_pipeline_end_to_end() {
    // Build the refinement input via sequential triangulation (as the
    // paper's offline input generation does), refine deterministically, and
    // verify the full chain.
    let mesh = dmr::make_input(200, 31);
    check::validate(&mesh).unwrap();
    check::check_delaunay(&mesh).unwrap();
    let before = check::quality(&mesh);
    assert!(before.bad > 0);

    let exec = Executor::new()
        .threads(2)
        .schedule(Schedule::deterministic());
    let report = dmr::galois(&mesh, &exec);
    assert!(report.stats.committed >= before.bad as u64);

    let after = check::quality(&mesh);
    assert_eq!(after.bad, 0);
    assert!(after.triangles > before.triangles);
    check::validate(&mesh).unwrap();
    check::check_delaunay(&mesh).unwrap();
}

#[test]
fn deterministic_scheduling_costs_more_memory_traffic() {
    // The §5.4 locality claim, end to end: record access streams for the
    // same app under both schedulers and replay them through the cache
    // model. The deterministic run must reach DRAM more.
    use deterministic_galois::apps::mis;
    use deterministic_galois::graph::gen;

    let g = gen::uniform_random_undirected(4_000, 4, 34);
    // Small caches so reuse distance (not compulsory misses) dominates —
    // equivalent to the paper's full-size inputs on real caches.
    let small = HierarchyConfig {
        l1: CacheConfig {
            sets: 8,
            ways: 4,
            line_bytes: 64,
        },
        l2: CacheConfig {
            sets: 32,
            ways: 4,
            line_bytes: 64,
        },
        l3: CacheConfig {
            sets: 128,
            ways: 8,
            line_bytes: 64,
        },
    };
    let run = |schedule: Schedule| {
        let exec = Executor::new()
            .threads(2)
            .schedule(schedule)
            .record_access(true);
        let (_, report) = mis::galois(&g, &exec);
        let streams: Vec<Vec<u32>> = report
            .accesses
            .unwrap()
            .into_iter()
            .map(|v| v.into_iter().map(|a| a.loc).collect())
            .collect();
        let mut h = Hierarchy::new(streams.len(), small);
        h.replay(&streams)
    };
    let nondet = run(Schedule::Speculative);
    let det = run(Schedule::deterministic());
    // A task's inspect and commit accesses are separated by a window of
    // other tasks, so the deterministic run misses to DRAM more — in total
    // and per access.
    assert!(
        det.dram > nondet.dram,
        "deterministic scheduling must cost DRAM traffic: {det:?} vs {nondet:?}"
    );
    assert!(
        det.dram_rate() > nondet.dram_rate(),
        "and a higher miss *rate*: {det:?} vs {nondet:?}"
    );
}

#[test]
fn virtual_time_model_reproduces_scaling_ordering() {
    // g-n traces must out-scale g-d traces for a conflict-light workload.
    use deterministic_galois::apps::mis;
    use deterministic_galois::graph::gen;

    let g = gen::uniform_random_undirected(4_000, 4, 33);
    let trace_of = |schedule: Schedule| {
        let exec = Executor::new()
            .threads(1)
            .schedule(schedule)
            .record_trace(true);
        let (_, report) = mis::galois(&g, &exec);
        report.trace.unwrap()
    };
    let m = MachineProfile::M4X10;
    let gn = trace_of(Schedule::Speculative);
    let gd = trace_of(Schedule::deterministic());
    let gn_scaling = gn.makespan_ns(&m, 1) / gn.makespan_ns(&m, 40);
    let gd_scaling = gd.makespan_ns(&m, 1) / gd.makespan_ns(&m, 40);
    assert!(
        gn_scaling > gd_scaling,
        "g-n must scale better: {gn_scaling:.1}x vs {gd_scaling:.1}x"
    );
}

#[test]
fn coredet_model_matches_paper_shape() {
    let slowdown = |k: Kernel| {
        let s = k.streams(40, 0.1);
        coredet_makespan_ns(&s, 50_000.0) / native_makespan_ns(&s)
    };
    // blackscholes tolerates CoreDet; the irregular non-data-parallel
    // programs collapse; mis (data-parallel) survives.
    assert!(slowdown(Kernel::Blackscholes) < 3.0);
    assert!(slowdown(Kernel::Bfs) > 10.0);
    assert!(slowdown(Kernel::Dt) > 10.0);
    assert!(slowdown(Kernel::Mis) < 5.0);
}
