//! Cross-crate portability tests: the deterministic scheduler must produce
//! bit-identical outputs *and schedules* for every thread count, for every
//! application (the paper's portability property). Thread counts include
//! oversubscribed ones — see [`common::THREAD_COUNTS`].

mod common;

use common::{assert_portable, det_executor, det_executor_spread};
use deterministic_galois::apps::{bfs, dmr, dt, mis, pfp};
use deterministic_galois::core::{Executor, Schedule};
use deterministic_galois::geometry::point::random_points;
use deterministic_galois::graph::{gen, FlowNetwork};
use deterministic_galois::mesh::check;

#[test]
fn bfs_schedule_and_output_portable() {
    let g = gen::uniform_random(3_000, 5, 11);
    assert_portable("bfs", |threads| {
        let (dist, report) = bfs::galois(&g, 0, &det_executor(threads));
        (
            dist,
            report.stats.committed,
            report.stats.aborted,
            report.stats.rounds,
        )
    });
}

#[test]
fn mis_set_portable() {
    let g = gen::uniform_random_undirected(2_000, 4, 12);
    assert_portable("mis", |threads| {
        let (flags, report) = mis::galois(&g, &det_executor(threads));
        mis::verify(&g, &flags).unwrap();
        (flags, report.stats.committed, report.stats.rounds)
    });
}

#[test]
fn dt_geometry_portable() {
    let pts = random_points(600, 13);
    assert_portable("dt", |threads| {
        let (mesh, _) = dt::galois(&pts, 3, &det_executor(threads));
        check::check_delaunay(&mesh).unwrap();
        check::canonical_triangles(&mesh)
    });
}

#[test]
fn dmr_geometry_portable_with_locality_spread() {
    // The generated g-d uses the §3.3 optimizations, including locality
    // spreading; determinism must hold with them enabled.
    assert_portable("dmr", |threads| {
        let mesh = dmr::make_input(150, 14);
        dmr::galois(&mesh, &det_executor_spread(threads, 16));
        check::validate(&mesh).unwrap();
        check::check_delaunay(&mesh).unwrap();
        assert_eq!(check::quality(&mesh).bad, 0);
        check::canonical_triangles(&mesh)
    });
}

#[test]
fn pfp_flow_and_schedule_portable() {
    let net = FlowNetwork::random(128, 4, 100, 15);
    assert_portable("pfp", |threads| {
        let (flow, report) = pfp::galois(&net, &det_executor(threads));
        (flow, report.stats.committed, report.bouts)
    });
}

#[test]
fn input_generators_portable_across_build_threads() {
    // The parallel input pipeline makes the same promise as the executors:
    // bit-identical output at every thread count, including oversubscribed
    // ones. The signature is the whole graph (offsets + targets), so any
    // reordering or dropped edge fails the sweep.
    assert_portable("gen::uniform_random", |threads| {
        gen::uniform_random_parallel(2_000, 5, 21, threads)
    });
    assert_portable("gen::uniform_random_undirected", |threads| {
        gen::uniform_random_undirected_parallel(1_500, 4, 21, threads)
    });
    assert_portable("gen::grid2d", |threads| {
        gen::grid2d_parallel(37, 23, threads)
    });
    assert_portable("gen::rmat", |threads| {
        gen::rmat_parallel(1 << 10, 4_000, 0.57, 0.19, 0.19, 21, threads)
    });
    assert_portable("FlowNetwork::random_edges", |threads| {
        FlowNetwork::random_edges_parallel(256, 4, 100, 21, threads)
    });
}

#[test]
fn bfs_on_parallel_built_input_matches_sequential_input_build() {
    // End to end: input built at any thread count feeds the deterministic
    // executor the same graph, so distances and schedule counters match a
    // run on the sequentially built input exactly.
    let oracle_graph = gen::uniform_random(3_000, 5, 11);
    let (oracle_dist, oracle_report) = bfs::galois(&oracle_graph, 0, &det_executor(2));
    assert_portable("bfs on parallel-built input", |threads| {
        let g = gen::uniform_random_parallel(3_000, 5, 11, threads);
        let (dist, report) = bfs::galois(&g, 0, &det_executor(2));
        assert_eq!(
            dist, oracle_dist,
            "distances moved (build threads {threads})"
        );
        assert_eq!(report.stats.committed, oracle_report.stats.committed);
        (dist, report.stats.rounds)
    });
}

#[test]
fn deterministic_run_is_repeatable_within_thread_count() {
    // Same thread count, two runs: trivially required, but exercises mark
    // table reuse and executor construction.
    let g = gen::uniform_random_undirected(1_000, 4, 16);
    let (a, _) = mis::galois(&g, &det_executor(4));
    let (b, _) = mis::galois(&g, &det_executor(4));
    assert_eq!(a, b);
}

#[test]
fn window_policy_is_part_of_the_algorithm_not_a_parameter() {
    // Parameter-freedom: the schedule consumes no user-tunable value whose
    // setting changes output — but if someone *does* alter the (fixed)
    // window constants for an ablation, the output may legitimately change.
    // What must never change output: thread count (tested above) and
    // worklist policy (ignored by the deterministic scheduler).
    use deterministic_galois::core::WorklistPolicy;
    let g = gen::uniform_random_undirected(1_000, 4, 17);
    let (a, _) = mis::galois(&g, &det_executor(2));
    let exec_fifo = Executor::new()
        .threads(2)
        .schedule(Schedule::deterministic())
        .worklist(WorklistPolicy::Fifo);
    let (b, _) = mis::galois(&g, &exec_fifo);
    assert_eq!(a, b, "worklist policy must not affect deterministic output");
}

#[test]
fn chaos_seed_does_not_leak_into_deterministic_output() {
    // The chaos layer's contract, end to end at the app level: seeds may
    // reorder thread arrivals and force spurious aborts, but mis output and
    // schedule counters match the chaos-free run at every thread count.
    let g = gen::uniform_random_undirected(1_000, 4, 18);
    let (baseline, base_report) = mis::galois(&g, &det_executor(2));
    for threads in common::THREAD_COUNTS {
        for seed in [3u64, 0x5EED] {
            let exec = det_executor(threads).chaos(seed);
            let (flags, report) = mis::galois(&g, &exec);
            assert_eq!(flags, baseline, "threads={threads} seed={seed}");
            assert_eq!(report.stats.rounds, base_report.stats.rounds);
            assert_eq!(report.stats.committed, base_report.stats.committed);
        }
    }
}
