//! Cross-crate portability tests: the deterministic scheduler must produce
//! bit-identical outputs *and schedules* for every thread count, for every
//! application (the paper's portability property).

use deterministic_galois::apps::{bfs, dmr, dt, mis, pfp};
use deterministic_galois::core::{DetOptions, Executor, Schedule};
use deterministic_galois::geometry::point::random_points;
use deterministic_galois::graph::{gen, FlowNetwork};
use deterministic_galois::mesh::check;

const THREAD_COUNTS: [usize; 3] = [1, 2, 5];

fn det_executor(threads: usize) -> Executor {
    Executor::new()
        .threads(threads)
        .schedule(Schedule::deterministic())
}

#[test]
fn bfs_schedule_and_output_portable() {
    let g = gen::uniform_random(3_000, 5, 11);
    let mut prev = None;
    for threads in THREAD_COUNTS {
        let (dist, report) = bfs::galois(&g, 0, &det_executor(threads));
        let sig = (
            dist,
            report.stats.committed,
            report.stats.aborted,
            report.stats.rounds,
        );
        if let Some(p) = &prev {
            assert_eq!(&sig, p, "bfs changed at {threads} threads");
        }
        prev = Some(sig);
    }
}

#[test]
fn mis_set_portable() {
    let g = gen::uniform_random_undirected(2_000, 4, 12);
    let mut prev = None;
    for threads in THREAD_COUNTS {
        let (flags, report) = mis::galois(&g, &det_executor(threads));
        mis::verify(&g, &flags).unwrap();
        let sig = (flags, report.stats.committed, report.stats.rounds);
        if let Some(p) = &prev {
            assert_eq!(&sig, p, "mis changed at {threads} threads");
        }
        prev = Some(sig);
    }
}

#[test]
fn dt_geometry_portable() {
    let pts = random_points(600, 13);
    let mut prev = None;
    for threads in THREAD_COUNTS {
        let (mesh, _) = dt::galois(&pts, 3, &det_executor(threads));
        check::check_delaunay(&mesh).unwrap();
        let canon = check::canonical_triangles(&mesh);
        if let Some(p) = &prev {
            assert_eq!(&canon, p, "dt changed at {threads} threads");
        }
        prev = Some(canon);
    }
}

#[test]
fn dmr_geometry_portable_with_locality_spread() {
    // The generated g-d uses the §3.3 optimizations, including locality
    // spreading; determinism must hold with them enabled.
    let mut prev = None;
    for threads in THREAD_COUNTS {
        let mesh = dmr::make_input(150, 14);
        let exec = Executor::new()
            .threads(threads)
            .schedule(Schedule::Deterministic(DetOptions {
                locality_spread: 16,
                ..Default::default()
            }));
        dmr::galois(&mesh, &exec);
        check::validate(&mesh).unwrap();
        check::check_delaunay(&mesh).unwrap();
        assert_eq!(check::quality(&mesh).bad, 0);
        let canon = check::canonical_triangles(&mesh);
        if let Some(p) = &prev {
            assert_eq!(&canon, p, "dmr changed at {threads} threads");
        }
        prev = Some(canon);
    }
}

#[test]
fn pfp_flow_and_schedule_portable() {
    let net = FlowNetwork::random(128, 4, 100, 15);
    let mut prev = None;
    for threads in THREAD_COUNTS {
        let (flow, report) = pfp::galois(&net, &det_executor(threads));
        let sig = (flow, report.stats.committed, report.bouts);
        if let Some(p) = &prev {
            assert_eq!(&sig, p, "pfp changed at {threads} threads");
        }
        prev = Some(sig);
    }
}

#[test]
fn deterministic_run_is_repeatable_within_thread_count() {
    // Same thread count, two runs: trivially required, but exercises mark
    // table reuse and executor construction.
    let g = gen::uniform_random_undirected(1_000, 4, 16);
    let (a, _) = mis::galois(&g, &det_executor(4));
    let (b, _) = mis::galois(&g, &det_executor(4));
    assert_eq!(a, b);
}

#[test]
fn window_policy_is_part_of_the_algorithm_not_a_parameter() {
    // Parameter-freedom: the schedule consumes no user-tunable value whose
    // setting changes output — but if someone *does* alter the (fixed)
    // window constants for an ablation, the output may legitimately change.
    // What must never change output: thread count (tested above) and
    // worklist policy (ignored by the deterministic scheduler).
    use deterministic_galois::core::WorklistPolicy;
    let g = gen::uniform_random_undirected(1_000, 4, 17);
    let (a, _) = mis::galois(&g, &det_executor(2));
    let exec_fifo = Executor::new()
        .threads(2)
        .schedule(Schedule::deterministic())
        .worklist(WorklistPolicy::Fifo);
    let (b, _) = mis::galois(&g, &exec_fifo);
    assert_eq!(a, b, "worklist policy must not affect deterministic output");
}
