//! Cross-crate validity tests: every scheduler must produce *correct*
//! solutions (serializability of the non-deterministic executor, §2).

use deterministic_galois::apps::{bfs, dmr, dt, mis, pfp};
use deterministic_galois::core::{Executor, Schedule, WorklistPolicy};
use deterministic_galois::geometry::point::random_points;
use deterministic_galois::graph::{gen, FlowNetwork};
use deterministic_galois::mesh::check;

fn spec(threads: usize) -> Executor {
    Executor::new()
        .threads(threads)
        .schedule(Schedule::Speculative)
}

#[test]
fn speculative_bfs_distances_exact() {
    let g = gen::uniform_random(5_000, 5, 21);
    let expect = bfs::seq(&g, 0);
    for threads in [1, 4] {
        let exec = spec(threads).worklist(WorklistPolicy::Fifo);
        let (dist, _) = bfs::galois(&g, 0, &exec);
        assert_eq!(dist, expect);
    }
}

#[test]
fn speculative_mis_is_maximal_independent() {
    let g = gen::uniform_random_undirected(3_000, 4, 22);
    for threads in [1, 4] {
        let (flags, _) = mis::galois(&g, &spec(threads));
        mis::verify(&g, &flags).unwrap();
    }
}

#[test]
fn speculative_dt_is_the_unique_delaunay_triangulation() {
    let pts = random_points(700, 23);
    let expect = check::canonical_triangles(&dt::seq(&pts, 9));
    for threads in [1, 4] {
        let (mesh, _) = dt::galois(&pts, 9, &spec(threads));
        check::validate(&mesh).unwrap();
        check::check_delaunay(&mesh).unwrap();
        assert_eq!(check::canonical_triangles(&mesh), expect);
    }
}

#[test]
fn speculative_dmr_produces_conforming_refined_mesh() {
    for threads in [1, 4] {
        let mesh = dmr::make_input(150, 24);
        dmr::galois(&mesh, &spec(threads));
        check::validate(&mesh).unwrap();
        check::check_delaunay(&mesh).unwrap();
        assert_eq!(check::quality(&mesh).bad, 0);
    }
}

#[test]
fn speculative_pfp_matches_reference_max_flow() {
    let net = FlowNetwork::random(96, 4, 80, 25);
    net.reset();
    let expect = net.edmonds_karp();
    for threads in [1, 4] {
        let (flow, _) = pfp::galois(&net, &spec(threads));
        assert_eq!(flow, expect);
        net.verify_flow().unwrap();
    }
}

#[test]
fn pbbs_variants_are_valid_and_deterministic() {
    let g = gen::uniform_random(3_000, 5, 26);
    let (d1, p1, _) = bfs::pbbs(&g, 0, 1, false);
    let (d2, p2, _) = bfs::pbbs(&g, 0, 4, false);
    bfs::verify(&g, 0, &d1).unwrap();
    assert_eq!((d1, p1), (d2, p2));

    let gu = gen::uniform_random_undirected(2_000, 4, 27);
    let (f1, _) = mis::pbbs(&gu, 1, false);
    let (f2, _) = mis::pbbs(&gu, 3, false);
    mis::verify(&gu, &f1).unwrap();
    assert_eq!(f1, f2);
    assert_eq!(
        f1,
        mis::seq(&gu),
        "pbbs mis is the lexicographically first MIS"
    );
}

#[test]
fn serial_executor_matches_seq_implementations() {
    let g = gen::uniform_random(2_000, 5, 28);
    let exec = Executor::new().schedule(Schedule::Serial);
    let (dist, report) = bfs::galois(&g, 0, &exec);
    bfs::verify(&g, 0, &dist).unwrap();
    assert_eq!(report.stats.aborted, 0);
    assert_eq!(report.stats.atomic_updates, 0, "serial mode takes no locks");
}
