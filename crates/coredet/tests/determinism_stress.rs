//! Stress tests of the deterministic thread runtime: many shapes of racy
//! programs must produce identical observations run after run.

use coredet_sim::blackscholes;
use coredet_sim::{DetRuntime, Mode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A bank of racy counters with data-dependent access patterns: thread
/// observations depend on the interleaving of every prior operation.
fn racy_bank(threads: usize, mode: Mode, iters: u64) -> Vec<Vec<u64>> {
    let cells: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
    let seen: Vec<Mutex<Vec<u64>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    DetRuntime::run(threads, mode, |w| {
        let mut cursor = w.tid() as u64;
        for i in 0..iters {
            w.work(50 + (i % 7) * 13);
            // The next cell visited depends on the value observed: any
            // interleaving difference cascades.
            let prev = w.fetch_add(&cells[(cursor % 8) as usize], i + 1);
            cursor = cursor.wrapping_add(prev + 1);
            seen[w.tid()].lock().unwrap().push(prev);
        }
    });
    seen.into_iter().map(|m| m.into_inner().unwrap()).collect()
}

#[test]
fn cascading_races_are_deterministic_under_coredet() {
    for quantum in [100u64, 1_000, 100_000] {
        let mode = Mode::CoreDet { quantum };
        let a = racy_bank(4, mode, 60);
        let b = racy_bank(4, mode, 60);
        assert_eq!(a, b, "quantum {quantum}");
    }
}

#[test]
fn different_quanta_may_change_the_schedule_but_not_totals() {
    // CoreDet's quantum is the kind of output-affecting parameter the paper
    // criticizes: different quanta → different (but internally
    // deterministic) observations. Totals are schedule-independent.
    let a = racy_bank(4, Mode::CoreDet { quantum: 100 }, 60);
    let b = racy_bank(4, Mode::CoreDet { quantum: 100_000 }, 60);
    let total = |obs: &Vec<Vec<u64>>| obs.iter().flatten().count();
    assert_eq!(total(&a), total(&b));
    // (The observation *sequences* typically differ; we don't assert
    // inequality since tiny runs can coincide.)
}

#[test]
fn two_thread_alternation_is_exact() {
    // The *observed previous values* prove strict alternation of the
    // synchronizing operations themselves (recording outside the serialized
    // section would race with thread scheduling).
    let cell = AtomicU64::new(0);
    let seen: Vec<Mutex<Vec<u64>>> = (0..2).map(|_| Mutex::new(Vec::new())).collect();
    DetRuntime::run(2, Mode::CoreDet { quantum: u64::MAX }, |w| {
        for _ in 0..25 {
            let prev = w.fetch_add(&cell, 1);
            seen[w.tid()].lock().unwrap().push(prev);
        }
    });
    for (tid, cell) in seen.iter().enumerate() {
        let obs = cell.lock().unwrap();
        for (k, &v) in obs.iter().enumerate() {
            assert_eq!(v as usize, tid + 2 * k, "thread {tid} op {k}");
        }
    }
}

#[test]
fn blackscholes_pricing_is_scheduler_independent() {
    let opts = blackscholes::portfolio(0.01, 9);
    let native = blackscholes::run_threaded(&opts, 3, Mode::Native);
    let det = blackscholes::run_threaded(&opts, 3, Mode::CoreDet { quantum: 5_000 });
    assert_eq!(native.checksum, det.checksum);
    assert!(det.stats.sync_ops > 0);
}

#[test]
fn single_thread_coredet_equals_native_semantics() {
    let run = |mode: Mode| {
        let cell = AtomicU64::new(0);
        DetRuntime::run(1, mode, |w| {
            for i in 0..100 {
                w.work(10);
                w.fetch_add(&cell, i);
            }
        });
        cell.load(Ordering::Relaxed)
    };
    assert_eq!(run(Mode::Native), run(Mode::CoreDet { quantum: 64 }));
}
