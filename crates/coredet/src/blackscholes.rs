//! The PARSEC blackscholes kernel, for real.
//!
//! blackscholes is the one PARSEC benchmark simple enough to reproduce
//! outright: price a portfolio of European options with the closed-form
//! Black–Scholes formula, split across threads in coarse chunks. It is the
//! paper's example of a program deterministic schedulers handle well: tasks
//! are hundreds of nanoseconds of pure arithmetic with essentially no
//! synchronization (Figure 5), so CoreDet's serialization has nothing to
//! serialize. Running it under [`crate::runtime::DetRuntime`] grounds the
//! synthetic instruction streams of [`crate::kernels::Kernel::Blackscholes`].

use crate::runtime::{DetRuntime, Mode, RunStats};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// One European option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Option_ {
    /// Spot price.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Volatility.
    pub volatility: f64,
    /// Time to maturity, years.
    pub time: f64,
    /// Call (true) or put (false).
    pub call: bool,
}

/// Standard normal CDF via the Abramowitz–Stegun polynomial (the same
/// approximation the PARSEC kernel uses).
pub fn cndf(x: f64) -> f64 {
    let neg = x < 0.0;
    let x = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * x);
    let poly = k
        * (0.319381530
            + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    let pdf = (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let one_minus = pdf * poly;
    if neg {
        one_minus
    } else {
        1.0 - one_minus
    }
}

/// Black–Scholes price of one option.
pub fn price(o: &Option_) -> f64 {
    let sqrt_t = o.time.sqrt();
    let d1 = ((o.spot / o.strike).ln() + (o.rate + o.volatility * o.volatility / 2.0) * o.time)
        / (o.volatility * sqrt_t);
    let d2 = d1 - o.volatility * sqrt_t;
    let discounted = o.strike * (-o.rate * o.time).exp();
    if o.call {
        o.spot * cndf(d1) - discounted * cndf(d2)
    } else {
        discounted * cndf(-d2) - o.spot * cndf(-d1)
    }
}

/// Generates a deterministic random portfolio (the simlarge shape: 64k
/// options at scale 1.0).
pub fn portfolio(scale: f64, seed: u64) -> Vec<Option_> {
    let n = ((65_536.0 * scale) as usize).max(64);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Option_ {
            spot: rng.random_range(10.0..200.0),
            strike: rng.random_range(10.0..200.0),
            rate: rng.random_range(0.01..0.1),
            volatility: rng.random_range(0.05..0.9),
            time: rng.random_range(0.1..5.0),
            call: rng.random_range(0..2u32) == 0,
        })
        .collect()
}

/// Result of a threaded pricing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricingRun {
    /// Sum of all option prices (the deterministic output checksum;
    /// fixed-point accumulated so it is associative).
    pub checksum: u64,
    /// Runtime statistics.
    pub stats: RunStats,
}

/// Prices the portfolio on `threads` threads under `mode`, reducing a
/// fixed-point checksum through the (rare) synchronizing adds — one atomic
/// per 4096-option chunk, the granularity the paper's Figure 5 reports.
pub fn run_threaded(options: &[Option_], threads: usize, mode: Mode) -> PricingRun {
    const CHUNK: usize = 4096;
    let checksum = AtomicU64::new(0);
    let stats = DetRuntime::run(threads, mode, |w| {
        // Balanced chunk assignment: thread t takes chunks t, t+p, t+2p...
        // and issues exactly ceil(nchunks/p) synchronizing adds (padding
        // with zero-adds so CoreDet token turns stay balanced).
        let nchunks = options.len().div_ceil(CHUNK);
        let turns = nchunks.div_ceil(threads);
        for k in 0..turns {
            let chunk = k * threads + w.tid();
            let mut local = 0u64;
            if chunk < nchunks {
                let lo = chunk * CHUNK;
                let hi = (lo + CHUNK).min(options.len());
                for o in &options[lo..hi] {
                    // Fixed-point microcents: associative, so the checksum
                    // is schedule-independent.
                    local += (price(o).max(0.0) * 1e4) as u64;
                }
            }
            w.fetch_add(&checksum, local);
        }
    });
    PricingRun {
        checksum: checksum.load(Ordering::Relaxed),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cndf_is_a_cdf() {
        assert!((cndf(0.0) - 0.5).abs() < 1e-7);
        assert!(cndf(-8.0) < 1e-9);
        assert!(cndf(8.0) > 1.0 - 1e-9);
        for i in -40..40 {
            let x = i as f64 / 10.0;
            assert!(cndf(x) <= cndf(x + 0.1), "monotone at {x}");
        }
    }

    #[test]
    fn put_call_parity() {
        // C - P = S - K e^{-rT}
        let base = Option_ {
            spot: 100.0,
            strike: 95.0,
            rate: 0.05,
            volatility: 0.3,
            time: 1.0,
            call: true,
        };
        let call = price(&base);
        let put = price(&Option_ {
            call: false,
            ..base
        });
        let parity = base.spot - base.strike * (-base.rate * base.time).exp();
        assert!(
            (call - put - parity).abs() < 1e-4,
            "parity violated: {call} - {put} != {parity}"
        );
    }

    #[test]
    fn known_price() {
        // Textbook example: S=42, K=40, r=10%, sigma=20%, T=0.5 → C ≈ 4.76.
        let c = price(&Option_ {
            spot: 42.0,
            strike: 40.0,
            rate: 0.1,
            volatility: 0.2,
            time: 0.5,
            call: true,
        });
        assert!((c - 4.76).abs() < 0.01, "got {c}");
    }

    #[test]
    fn threaded_checksum_matches_serial_and_is_deterministic() {
        let opts = portfolio(0.02, 3);
        let serial: u64 = opts.iter().map(|o| (price(o).max(0.0) * 1e4) as u64).sum();
        let native = run_threaded(&opts, 4, Mode::Native);
        assert_eq!(native.checksum, serial);
        let det1 = run_threaded(&opts, 4, Mode::CoreDet { quantum: 10_000 });
        let det2 = run_threaded(&opts, 4, Mode::CoreDet { quantum: 10_000 });
        assert_eq!(det1.checksum, serial);
        assert_eq!(det1.checksum, det2.checksum);
    }

    #[test]
    fn sync_rate_is_low() {
        // The Figure 5 point: ~1 atomic per 4096 options.
        let opts = portfolio(0.05, 4);
        let run = run_threaded(&opts, 2, Mode::Native);
        assert!(run.stats.sync_ops as usize <= opts.len() / 1024);
    }
}
