//! Virtual-time simulation of DMP-O over per-thread instruction streams.
//!
//! A [`ThreadStream`] abstracts one pthread's execution as `n_gaps`
//! stretches of local work, each ending in a synchronizing operation, plus a
//! synchronization-free tail. The two makespan functions replay the stream:
//!
//! - [`native_makespan_ns`]: threads run independently; a synchronizing
//!   operation costs a cache-coherence constant.
//! - [`coredet_makespan_ns`]: the DMP-O round structure. Each round a
//!   thread runs in *parallel mode* until its quantum expires or it reaches
//!   a synchronizing operation; from the first synchronizing operation to
//!   the end of its quantum it runs in *serial mode*, one thread at a time.
//!   Round time = max parallel-mode time + Σ serial-mode times + round
//!   overhead. All work is additionally scaled by CoreDet's
//!   load/store-instrumentation factor (the paper observes ≥1.3× even at
//!   one thread).
//!
//! The model's inputs (work per gap, gaps per thread) come from
//! [`crate::kernels`], whose ratios match the paper's Figure 5
//! characterization; the *shape* of Figure 6 — blackscholes fine, irregular
//! kernels collapsing — follows from those ratios alone.

/// Cost of a synchronizing operation executed natively (coherence miss).
pub const NATIVE_SYNC_NS: f64 = 25.0;

/// Cost of a synchronizing operation inside DMP-O serial mode.
pub const SERIAL_SYNC_NS: f64 = 40.0;

/// Per-round scheduling overhead: token circulation and round barrier.
pub const ROUND_BASE_NS: f64 = 2_000.0;

/// Additional per-thread round overhead.
pub const ROUND_PER_THREAD_NS: f64 = 150.0;

/// CoreDet's whole-program instrumentation slowdown on local work.
pub const INSTRUMENTATION_FACTOR: f64 = 1.4;

/// One event of a thread stream (explicit form, for tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Local computation, nanoseconds.
    Work(f64),
    /// A synchronizing operation (atomic/lock/barrier arrival).
    Sync,
}

/// A thread's execution, in compressed uniform form: `n_gaps` stretches of
/// `gap_ns` work, each followed by one synchronizing operation, then
/// `tail_ns` of synchronization-free work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadStream {
    /// Number of (work, sync) pairs.
    pub n_gaps: u64,
    /// Work per gap, nanoseconds.
    pub gap_ns: f64,
    /// Trailing synchronization-free work, nanoseconds.
    pub tail_ns: f64,
}

impl ThreadStream {
    /// Total local work in the stream, nanoseconds.
    pub fn work_ns(&self) -> f64 {
        self.n_gaps as f64 * self.gap_ns + self.tail_ns
    }

    /// Number of synchronizing operations.
    pub fn syncs(&self) -> u64 {
        self.n_gaps
    }
}

/// Makespan of the streams executing natively on one core per stream.
pub fn native_makespan_ns(streams: &[ThreadStream]) -> f64 {
    streams
        .iter()
        .map(|s| s.work_ns() + s.syncs() as f64 * NATIVE_SYNC_NS)
        .fold(0.0, f64::max)
}

/// Cursor over a compressed stream during the DMP-O simulation.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    gaps_left: u64,
    /// Work remaining in the current gap (or tail once gaps_left == 0).
    remaining_ns: f64,
    in_tail: bool,
    done: bool,
}

impl Cursor {
    fn new(s: &ThreadStream) -> Self {
        if s.n_gaps > 0 {
            Cursor {
                gaps_left: s.n_gaps,
                remaining_ns: s.gap_ns,
                in_tail: false,
                done: false,
            }
        } else {
            Cursor {
                gaps_left: 0,
                remaining_ns: s.tail_ns,
                in_tail: true,
                done: s.tail_ns <= 0.0,
            }
        }
    }

    /// Consumes up to `budget` ns of work; returns `(consumed, syncs_hit)`.
    /// When `stop_at_first_sync` is set, consumption ends at the first sync.
    fn advance(&mut self, s: &ThreadStream, budget: f64, stop_at_first_sync: bool) -> (f64, u64) {
        let mut consumed = 0.0;
        let mut syncs = 0u64;
        while !self.done && consumed < budget {
            let take = self.remaining_ns.min(budget - consumed);
            consumed += take;
            self.remaining_ns -= take;
            if self.remaining_ns > 0.0 {
                break; // budget exhausted mid-gap
            }
            if self.in_tail {
                self.done = true;
                break;
            }
            // Reached the sync at the end of this gap.
            syncs += 1;
            self.gaps_left -= 1;
            if self.gaps_left == 0 {
                self.in_tail = true;
                self.remaining_ns = s.tail_ns;
                if s.tail_ns <= 0.0 {
                    self.done = true;
                }
            } else {
                self.remaining_ns = s.gap_ns;
            }
            if stop_at_first_sync {
                break;
            }
        }
        (consumed, syncs)
    }
}

/// Makespan of the streams under DMP-O with the given quantum.
///
/// # Panics
///
/// Panics if `quantum_ns <= 0`.
pub fn coredet_makespan_ns(streams: &[ThreadStream], quantum_ns: f64) -> f64 {
    assert!(quantum_ns > 0.0);
    let p = streams.len();
    let mut cursors: Vec<Cursor> = streams.iter().map(Cursor::new).collect();
    let mut total = 0.0;
    let round_overhead = ROUND_BASE_NS + ROUND_PER_THREAD_NS * p as f64;

    while cursors.iter().any(|c| !c.done) {
        // Parallel mode: run until quantum end or first sync.
        let mut parallel_max = 0.0f64;
        let mut serial_sum = 0.0f64;
        for (c, s) in cursors.iter_mut().zip(streams) {
            if c.done {
                continue;
            }
            let (par, par_syncs) = c.advance(s, quantum_ns, true);
            let par_scaled = par * INSTRUMENTATION_FACTOR;
            parallel_max = parallel_max.max(par_scaled);
            if par_syncs > 0 {
                // Hit a sync before the quantum ended: the rest of the
                // quantum runs in serial mode.
                let serial_budget = quantum_ns - par;
                let (ser, ser_syncs) = c.advance(s, serial_budget, false);
                serial_sum +=
                    ser * INSTRUMENTATION_FACTOR + (par_syncs + ser_syncs) as f64 * SERIAL_SYNC_NS;
            }
        }
        total += parallel_max + serial_sum + round_overhead;
    }
    total
}

/// Makespan under DMP-O with a **dOS-style adaptive quantum**: the quantum
/// doubles after a round in which a thread hit no synchronization in
/// parallel mode, and shrinks proportionally when it synchronized early —
/// the same feedback idea as the paper's adaptive window (§3.2; §6 notes
/// dOS "uses an adaptive algorithm like the one described in Section 3.2").
///
/// The adaptation consumes only observed synchronization behaviour, so it
/// remains deterministic for a deterministic program.
///
/// # Panics
///
/// Panics if `initial_quantum_ns <= 0`.
pub fn coredet_adaptive_makespan_ns(streams: &[ThreadStream], initial_quantum_ns: f64) -> f64 {
    assert!(initial_quantum_ns > 0.0);
    let p = streams.len();
    let mut cursors: Vec<Cursor> = streams.iter().map(Cursor::new).collect();
    let mut total = 0.0;
    let round_overhead = ROUND_BASE_NS + ROUND_PER_THREAD_NS * p as f64;
    let mut quantum = initial_quantum_ns;
    const MIN_QUANTUM: f64 = 1_000.0;
    const MAX_QUANTUM: f64 = 10_000_000.0;

    while cursors.iter().any(|c| !c.done) {
        let mut parallel_max = 0.0f64;
        let mut serial_sum = 0.0f64;
        let mut earliest_sync = f64::INFINITY;
        let mut any_sync = false;
        for (c, s) in cursors.iter_mut().zip(streams) {
            if c.done {
                continue;
            }
            let (par, par_syncs) = c.advance(s, quantum, true);
            parallel_max = parallel_max.max(par * INSTRUMENTATION_FACTOR);
            if par_syncs > 0 {
                any_sync = true;
                earliest_sync = earliest_sync.min(par);
                let serial_budget = quantum - par;
                let (ser, ser_syncs) = c.advance(s, serial_budget, false);
                serial_sum +=
                    ser * INSTRUMENTATION_FACTOR + (par_syncs + ser_syncs) as f64 * SERIAL_SYNC_NS;
            }
        }
        total += parallel_max + serial_sum + round_overhead;
        // Feedback: quantum chases the synchronization-free run length.
        quantum = if any_sync {
            (earliest_sync * 1.5).clamp(MIN_QUANTUM, MAX_QUANTUM)
        } else {
            (quantum * 2.0).clamp(MIN_QUANTUM, MAX_QUANTUM)
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(p: usize, n_gaps: u64, gap_ns: f64) -> Vec<ThreadStream> {
        vec![
            ThreadStream {
                n_gaps,
                gap_ns,
                tail_ns: 0.0,
            };
            p
        ]
    }

    #[test]
    fn native_is_max_thread_time() {
        let mut streams = uniform(4, 10, 1000.0);
        streams[2].tail_ns = 50_000.0;
        let m = native_makespan_ns(&streams);
        assert_eq!(m, 10.0 * 1000.0 + 50_000.0 + 10.0 * NATIVE_SYNC_NS);
    }

    #[test]
    fn sync_free_code_scales_under_coredet() {
        // One big tail, no syncs: CoreDet pays only instrumentation+rounds.
        let streams: Vec<ThreadStream> = vec![
            ThreadStream {
                n_gaps: 0,
                gap_ns: 0.0,
                tail_ns: 1e7,
            };
            8
        ];
        let native = native_makespan_ns(&streams);
        let coredet = coredet_makespan_ns(&streams, 50_000.0);
        let slowdown = coredet / native;
        assert!(slowdown < 2.0, "slowdown {slowdown}");
    }

    #[test]
    fn sync_dense_code_serializes_under_coredet() {
        // 100ns between syncs: almost all time is serial mode.
        let p = 8;
        let streams = uniform(p, 10_000, 100.0);
        let native = native_makespan_ns(&streams);
        let coredet = coredet_makespan_ns(&streams, 50_000.0);
        let slowdown = coredet / native;
        assert!(
            slowdown > 0.5 * p as f64,
            "sync-dense slowdown {slowdown} should approach p={p}"
        );
    }

    #[test]
    fn slowdown_grows_with_threads() {
        let s = |p: usize| {
            let streams = uniform(p, 5_000, 200.0);
            coredet_makespan_ns(&streams, 50_000.0) / native_makespan_ns(&streams)
        };
        assert!(s(2) < s(8));
        assert!(s(8) < s(32));
    }

    #[test]
    fn simulation_is_deterministic() {
        let streams = uniform(7, 1234, 321.0);
        assert_eq!(
            coredet_makespan_ns(&streams, 50_000.0),
            coredet_makespan_ns(&streams, 50_000.0)
        );
    }

    #[test]
    fn quantum_affects_cost() {
        // The paper (§6) notes 160-250% overhead swings with quantum size.
        let streams = uniform(4, 2_000, 500.0);
        let small = coredet_makespan_ns(&streams, 5_000.0);
        let large = coredet_makespan_ns(&streams, 500_000.0);
        assert_ne!(small, large);
    }

    #[test]
    fn adaptive_quantum_tracks_or_beats_badly_fixed_quanta() {
        // Sync every ~100µs with a 1ms fixed quantum: after the first sync
        // the remaining ~900µs of each quantum runs serially even though it
        // could have been parallel. The adaptive quantum shrinks toward the
        // sync-free run length and recovers the parallelism. (At very fine
        // gaps serialization is inherent and no quantum choice helps — the
        // paper's point that the *parameter* matters is exactly this.)
        let streams = uniform(8, 40, 100_000.0);
        let fixed_bad = coredet_makespan_ns(&streams, 1_000_000.0);
        let adaptive = coredet_adaptive_makespan_ns(&streams, 1_000_000.0);
        assert!(
            adaptive < 0.8 * fixed_bad,
            "adaptive {adaptive:.0} should beat badly-sized fixed {fixed_bad:.0}"
        );
        // And sync-free code still scales.
        let free = vec![
            ThreadStream {
                n_gaps: 0,
                gap_ns: 0.0,
                tail_ns: 1e7,
            };
            8
        ];
        let a = coredet_adaptive_makespan_ns(&free, 50_000.0);
        let n = native_makespan_ns(&free);
        assert!(a / n < 2.5);
    }

    #[test]
    fn adaptive_quantum_is_deterministic() {
        let streams = uniform(5, 3_000, 700.0);
        assert_eq!(
            coredet_adaptive_makespan_ns(&streams, 50_000.0),
            coredet_adaptive_makespan_ns(&streams, 50_000.0)
        );
    }

    #[test]
    fn empty_streams_are_instant() {
        let streams = uniform(4, 0, 0.0);
        assert_eq!(coredet_makespan_ns(&streams, 50_000.0), 0.0);
        assert_eq!(native_makespan_ns(&streams), 0.0);
    }
}
