//! Instruction-stream generators for the Figure 6 benchmarks.
//!
//! Each generator splits a benchmark's total work across `p` threads and
//! returns per-thread [`ThreadStream`]s whose work-per-synchronization
//! ratios follow the paper's characterization (§5.1, Figure 5):
//!
//! - The PARSEC programs synchronize orders of magnitude less than the
//!   irregular programs (blackscholes ≈ 1 atomic/µs *total* at 40 threads).
//! - The irregular PBBS programs synchronize every few hundred nanoseconds
//!   per thread (mis g-n ≈ 100 atomics/µs total).
//!
//! bodytrack and freqmine are synthetic stand-ins with matching granularity
//! (DESIGN.md, substitution 3); blackscholes is modelled after the real
//! kernel (a closed-form per-option computation).

use crate::model::ThreadStream;

/// A named Figure 6 benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// PARSEC blackscholes (simlarge: 64k options, coarse chunks).
    Blackscholes,
    /// bodytrack-like: frame loop with per-frame barriers.
    Bodytrack,
    /// freqmine-like: thread-private counting with occasional merges.
    Freqmine,
    /// PBBS non-deterministic BFS: one CAS per relaxed edge.
    Bfs,
    /// PBBS non-deterministic Delaunay mesh refinement.
    Dmr,
    /// PBBS non-deterministic Delaunay triangulation.
    Dt,
    /// PBBS (data-parallel) maximal independent set.
    Mis,
}

impl Kernel {
    /// All Figure 6 benchmarks, in the paper's order.
    pub const ALL: [Kernel; 7] = [
        Kernel::Blackscholes,
        Kernel::Bodytrack,
        Kernel::Freqmine,
        Kernel::Bfs,
        Kernel::Dmr,
        Kernel::Dt,
        Kernel::Mis,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Blackscholes => "blackscholes",
            Kernel::Bodytrack => "bodytrack",
            Kernel::Freqmine => "freqmine",
            Kernel::Bfs => "bfs",
            Kernel::Dmr => "dmr",
            Kernel::Dt => "dt",
            Kernel::Mis => "mis",
        }
    }

    /// Whether this is one of the coarse-grain PARSEC benchmarks.
    pub fn is_parsec(&self) -> bool {
        matches!(
            self,
            Kernel::Blackscholes | Kernel::Bodytrack | Kernel::Freqmine
        )
    }

    /// Generates per-thread streams for `p` threads at workload `scale`
    /// (1.0 ≈ a tens-of-milliseconds run; scale multiplies task counts).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `scale <= 0`.
    pub fn streams(&self, p: usize, scale: f64) -> Vec<ThreadStream> {
        assert!(p > 0 && scale > 0.0);
        // (tasks, work per task ns, syncs per task)
        let (tasks, task_ns, syncs_per_task) = match self {
            // 64k options × ~500ns; one atomic per 4096-option chunk.
            Kernel::Blackscholes => (65_536.0, 500.0, 1.0 / 4096.0),
            // Particle-weight tiles of ~29µs; a barrier/reduction op every
            // ~7 tiles (per-frame synchronization amortized over tiles).
            Kernel::Bodytrack => (3_970.0, 29_300.0, 1.0 / 13.0),
            // Mining chunks of ~450µs with a merge atomic per chunk.
            Kernel::Freqmine => (213.0, 452_000.0, 1.0),
            // One CAS per relaxed edge, ~80ns of work per edge.
            Kernel::Bfs => (500_000.0, 80.0, 1.0),
            // ~3.8µs tasks (Fig. 4) with ~12 lock operations each.
            Kernel::Dmr => (20_000.0, 3_800.0, 12.0),
            // ~3µs tasks with ~10 lock operations each.
            Kernel::Dt => (25_000.0, 3_000.0, 10.0),
            // The data-parallel PBBS code: per-node flag updates are plain
            // stores; synchronization is only the barrier at each of the
            // few dozen bulk-synchronous rounds. This is why mis is the one
            // irregular benchmark that survives CoreDet (§5.2).
            Kernel::Mis => (400_000.0, 100.0, 1.0 / 4096.0),
        };
        let tasks = tasks * scale;
        let per_thread_tasks = tasks / p as f64;
        let work_per_thread = per_thread_tasks * task_ns;
        let syncs_per_thread = (per_thread_tasks * syncs_per_task).round().max(0.0) as u64;
        if syncs_per_thread == 0 {
            return vec![
                ThreadStream {
                    n_gaps: 0,
                    gap_ns: 0.0,
                    tail_ns: work_per_thread,
                };
                p
            ];
        }
        let gap_ns = work_per_thread / syncs_per_thread as f64;
        vec![
            ThreadStream {
                n_gaps: syncs_per_thread,
                gap_ns,
                tail_ns: 0.0,
            };
            p
        ]
    }

    /// Total atomic updates per microsecond of aggregate work — the Figure 5
    /// characterization metric, computed analytically from the stream shape.
    pub fn atomic_rate_per_us(&self, p: usize) -> f64 {
        let streams = self.streams(p, 1.0);
        let total_work_us: f64 = streams.iter().map(|s| s.work_ns()).sum::<f64>() / 1e3;
        let total_syncs: u64 = streams.iter().map(|s| s.syncs()).sum();
        // Rate against ideal parallel wall-clock (work/p).
        total_syncs as f64 / (total_work_us / p as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{coredet_makespan_ns, native_makespan_ns};

    #[test]
    fn parsec_kernels_sync_orders_of_magnitude_less() {
        // Figure 5: blackscholes ~1/µs vs the fine-grain irregular kernels.
        let bs = Kernel::Blackscholes.atomic_rate_per_us(40);
        let bfs = Kernel::Bfs.atomic_rate_per_us(40);
        assert!(
            bfs / bs > 1000.0,
            "bfs {bfs:.2}/µs should dwarf blackscholes {bs:.4}/µs"
        );
    }

    #[test]
    fn mis_data_parallel_survives_coredet() {
        let slowdown = |k: Kernel, p: usize| {
            let s = k.streams(p, 0.2);
            coredet_makespan_ns(&s, 50_000.0) / native_makespan_ns(&s)
        };
        assert!(slowdown(Kernel::Mis, 8) < slowdown(Kernel::Bfs, 8) / 2.0);
    }

    #[test]
    fn figure6_shape_blackscholes_ok_bfs_collapses() {
        let slowdown = |k: Kernel, p: usize| {
            let s = k.streams(p, 0.2);
            coredet_makespan_ns(&s, 50_000.0) / native_makespan_ns(&s)
        };
        let bs = slowdown(Kernel::Blackscholes, 8);
        let bfs = slowdown(Kernel::Bfs, 8);
        let dmr = slowdown(Kernel::Dmr, 8);
        assert!(bs < 2.5, "blackscholes slowdown {bs:.2}");
        assert!(bfs > 4.0, "bfs slowdown {bfs:.2}");
        assert!(dmr > 3.0, "dmr slowdown {dmr:.2}");
        assert!(bfs > bs && dmr > bs);
    }

    #[test]
    fn streams_are_balanced_and_scaled() {
        for k in Kernel::ALL {
            let s = k.streams(4, 1.0);
            assert_eq!(s.len(), 4);
            assert!(s.iter().all(|x| x == &s[0]), "balanced threads");
            let s2 = k.streams(4, 2.0);
            let w1: f64 = s.iter().map(|x| x.work_ns()).sum();
            let w2: f64 = s2.iter().map(|x| x.work_ns()).sum();
            assert!((w2 / w1 - 2.0).abs() < 0.01, "{}: {w1} -> {w2}", k.name());
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
