//! A real-thread deterministic runtime (DMP-O at the API level).
//!
//! Threads account computation with [`Worker::work`] and perform every
//! synchronizing access through the runtime. In [`Mode::Native`] these
//! compile to plain atomics. In [`Mode::CoreDet`] a synchronizing access
//! must wait for the round's serial token, which visits threads in id
//! order; a thread whose quantum expires waits for the next round. The
//! interleaving of synchronizing accesses is therefore a pure function of
//! the program, making racy programs deterministic — at the cost the paper
//! measures.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};

/// Scheduling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Pass-through: synchronization executes immediately (non-deterministic).
    Native,
    /// DMP-O-style deterministic serialization of synchronization.
    CoreDet {
        /// Work units a thread may consume per round before blocking.
        quantum: u64,
    },
}

struct TokenState {
    /// Round-robin position: which thread may currently synchronize.
    turn: usize,
    /// Number of threads finished with the current serial phase.
    done: usize,
    /// Round counter (diagnostics).
    round: u64,
}

/// The shared deterministic scheduler.
pub struct DetRuntime {
    mode: Mode,
    threads: usize,
    state: Mutex<TokenState>,
    cv: Condvar,
    sync_ops: AtomicU64,
    rounds: AtomicU64,
}

impl std::fmt::Debug for DetRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetRuntime")
            .field("mode", &self.mode)
            .field("threads", &self.threads)
            .finish()
    }
}

impl DetRuntime {
    /// Runs `body(worker)` on `threads` threads under `mode`.
    ///
    /// In [`Mode::CoreDet`] the serial token visits threads in strict
    /// round-robin order, so **every thread must perform the same number of
    /// synchronizing operations** (as barrier-balanced pthreads programs
    /// do); unbalanced programs deadlock, exactly like a missing barrier
    /// arrival would. All kernels in this crate are balanced.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run<F>(threads: usize, mode: Mode, body: F) -> RunStats
    where
        F: Fn(&Worker<'_>) + Sync,
    {
        assert!(threads > 0);
        let rt = DetRuntime {
            mode,
            threads,
            state: Mutex::new(TokenState {
                turn: 0,
                done: 0,
                round: 0,
            }),
            cv: Condvar::new(),
            sync_ops: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
        };
        let start = std::time::Instant::now();
        galois_runtime::pool::run_on_threads(threads, |tid| {
            let worker = Worker {
                rt: &rt,
                tid,
                consumed: std::cell::Cell::new(0),
            };
            body(&worker);
        });
        RunStats {
            elapsed: start.elapsed(),
            sync_ops: rt.sync_ops.load(Ordering::Relaxed),
            rounds: rt.rounds.load(Ordering::Relaxed),
        }
    }

    /// Blocks `tid` until it holds the serial token, runs `f`, and passes
    /// the token on.
    fn serialized<R>(&self, tid: usize, quantum_exceeded: bool, f: impl FnOnce() -> R) -> R {
        let mut st = self.state.lock();
        while st.turn != tid {
            self.cv.wait(&mut st);
        }
        // Hold the token while performing the access: accesses execute in
        // strict (round, tid) order.
        let r = f();
        if quantum_exceeded {
            st.done += 1;
            if st.done == self.threads {
                st.done = 0;
                st.round += 1;
                self.rounds.fetch_add(1, Ordering::Relaxed);
            }
        }
        st.turn = (st.turn + 1) % self.threads;
        self.cv.notify_all();
        r
    }
}

/// Statistics of one deterministic-runtime execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Wall-clock time of the run.
    pub elapsed: std::time::Duration,
    /// Synchronizing operations executed.
    pub sync_ops: u64,
    /// Scheduler rounds completed (CoreDet mode).
    pub rounds: u64,
}

/// Per-thread handle into the runtime.
pub struct Worker<'a> {
    rt: &'a DetRuntime,
    tid: usize,
    consumed: std::cell::Cell<u64>,
}

impl std::fmt::Debug for Worker<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").field("tid", &self.tid).finish()
    }
}

impl Worker<'_> {
    /// This worker's thread id.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Accounts `units` of local computation (the instruction-count proxy
    /// that CoreDet's compiler pass inserts).
    pub fn work(&self, units: u64) {
        self.consumed.set(self.consumed.get() + units);
        // Simulate the computation so wall-clock comparisons mean something:
        // one unit ≈ a few ns of arithmetic.
        std::hint::black_box({
            let mut x = 0u64;
            for i in 0..units {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            x
        });
    }

    /// A synchronizing fetch-add. In CoreDet mode this waits for the serial
    /// token; the observed previous value is therefore deterministic.
    pub fn fetch_add(&self, cell: &AtomicU64, v: u64) -> u64 {
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        match self.rt.mode {
            Mode::Native => cell.fetch_add(v, Ordering::AcqRel),
            Mode::CoreDet { quantum } => {
                let exceeded = self.consumed.get() >= quantum;
                if exceeded {
                    self.consumed.set(0);
                }
                self.rt
                    .serialized(self.tid, exceeded, || cell.fetch_add(v, Ordering::AcqRel))
            }
        }
    }

    /// A synchronizing compare-and-swap (same serialization rules).
    pub fn cas(&self, cell: &AtomicU64, expect: u64, v: u64) -> bool {
        self.rt.sync_ops.fetch_add(1, Ordering::Relaxed);
        match self.rt.mode {
            Mode::Native => cell
                .compare_exchange(expect, v, Ordering::AcqRel, Ordering::Acquire)
                .is_ok(),
            Mode::CoreDet { quantum } => {
                let exceeded = self.consumed.get() >= quantum;
                if exceeded {
                    self.consumed.set(0);
                }
                self.rt.serialized(self.tid, exceeded, || {
                    cell.compare_exchange(expect, v, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A racy accumulation: each thread observes the shared counter and
    /// records the values it saw. Non-deterministic natively, deterministic
    /// under CoreDet.
    fn racy_observations(threads: usize, mode: Mode) -> Vec<Vec<u64>> {
        let counter = AtomicU64::new(0);
        let seen: Vec<Mutex<Vec<u64>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
        DetRuntime::run(threads, mode, |w| {
            for _ in 0..50 {
                w.work(100);
                let prev = w.fetch_add(&counter, 1);
                seen[w.tid()].lock().push(prev);
            }
        });
        seen.into_iter().map(|m| m.into_inner()).collect()
    }

    #[test]
    fn coredet_mode_is_deterministic() {
        let a = racy_observations(4, Mode::CoreDet { quantum: 400 });
        let b = racy_observations(4, Mode::CoreDet { quantum: 400 });
        assert_eq!(a, b, "same program, same observed interleaving");
    }

    #[test]
    fn coredet_interleaving_is_round_robin() {
        // With quantum larger than per-iteration work, each round serializes
        // one op per thread in tid order: thread t sees t, t+n, t+2n, ...
        let obs = racy_observations(3, Mode::CoreDet { quantum: u64::MAX });
        for (tid, seen) in obs.iter().enumerate() {
            for (k, &v) in seen.iter().enumerate() {
                assert_eq!(v, (tid + 3 * k) as u64);
            }
        }
    }

    #[test]
    fn native_mode_counts_correctly() {
        let counter = AtomicU64::new(0);
        let stats = DetRuntime::run(4, Mode::Native, |w| {
            for _ in 0..100 {
                w.fetch_add(&counter, 1);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 400);
        assert_eq!(stats.sync_ops, 400);
    }

    #[test]
    fn cas_is_serialized_deterministically() {
        let run = || {
            let cell = AtomicU64::new(0);
            let wins: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
            DetRuntime::run(3, Mode::CoreDet { quantum: 10 }, |w| {
                for k in 0..20 {
                    if w.cas(&cell, k, k + 1) {
                        wins[w.tid()].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            wins.iter()
                .map(|x| x.load(Ordering::Relaxed))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn quantum_expiry_counts_rounds() {
        let counter = AtomicU64::new(0);
        let stats = DetRuntime::run(2, Mode::CoreDet { quantum: 50 }, |w| {
            for _ in 0..10 {
                w.work(100); // always exceeds the quantum
                w.fetch_add(&counter, 1);
            }
        });
        assert!(stats.rounds >= 9, "rounds = {}", stats.rounds);
    }
}
