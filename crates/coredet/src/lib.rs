//! CoreDet-style deterministic thread scheduling (the §5.2 comparison
//! system).
//!
//! CoreDet [Bergan et al., ASPLOS 2010] makes arbitrary pthreads programs
//! deterministic with **DMP-O**: execution proceeds in rounds; each thread
//! runs a fixed *quantum* of instructions in parallel mode, but any
//! synchronizing operation (atomic, lock, barrier) blocks until the round's
//! serial mode, where a token visits threads in id order. The paper shows
//! this collapses on irregular programs whose tasks synchronize every few
//! microseconds (Figure 6).
//!
//! The original is an LLVM compiler pass; this reproduction works at the API
//! level (DESIGN.md, substitution 2):
//!
//! - [`runtime`]: a real-thread deterministic runtime. Programs call
//!   [`runtime::Worker::work`] to account computation and perform all
//!   synchronization through the runtime; in deterministic mode every
//!   synchronizing operation executes in (round, thread-id) order, so racy
//!   programs produce identical results on every run.
//! - [`model`]: a virtual-time simulator of the same DMP-O algorithm over
//!   per-thread instruction streams, used to produce scaling curves on a
//!   single-core host.
//! - [`kernels`]: instruction-stream generators for the seven Figure 6
//!   benchmarks (blackscholes, bodytrack-like, freqmine-like, and
//!   pthread-style bfs / dmr / dt / mis), with work/synchronization ratios
//!   matching the paper's characterization (Figure 5).

#![warn(missing_docs)]

pub mod blackscholes;
pub mod kernels;
pub mod model;
pub mod runtime;

pub use model::{coredet_makespan_ns, native_makespan_ns, Event, ThreadStream};
pub use runtime::{DetRuntime, Mode, Worker};
