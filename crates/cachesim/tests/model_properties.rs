//! Property-based tests of the cache model.

use cache_sim::{Cache, CacheConfig, Hierarchy, HierarchyConfig};
use proptest::prelude::*;

fn tiny_config() -> CacheConfig {
    CacheConfig {
        sets: 4,
        ways: 2,
        line_bytes: 64,
    }
}

proptest! {
    /// Hits + misses always equals accesses; replay is deterministic.
    #[test]
    fn conservation_and_determinism(addrs in proptest::collection::vec(0u64..4096, 1..300)) {
        let run = || {
            let mut c = Cache::new(tiny_config());
            for &a in &addrs {
                c.access(a * 8);
            }
            (c.hits(), c.misses())
        };
        let (h, m) = run();
        prop_assert_eq!(h + m, addrs.len() as u64);
        prop_assert_eq!(run(), (h, m));
    }

    /// LRU inclusion-ish monotonicity: a strictly larger (same-geometry-
    /// family) cache never has more misses on the same trace.
    #[test]
    fn bigger_cache_never_misses_more(addrs in proptest::collection::vec(0u64..8192, 1..400)) {
        let misses = |ways: usize| {
            let mut c = Cache::new(CacheConfig { sets: 4, ways, line_bytes: 64 });
            for &a in &addrs {
                c.access(a * 4);
            }
            c.misses()
        };
        // With LRU and identical set indexing, adding ways is inclusion-
        // preserving, so misses are monotone non-increasing.
        prop_assert!(misses(4) <= misses(2));
        prop_assert!(misses(8) <= misses(4));
    }

    /// An immediately repeated access always hits.
    #[test]
    fn repeat_access_hits(addrs in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut c = Cache::new(tiny_config());
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.access(a), "second touch of {a} must hit");
        }
    }

    /// Hierarchy counters are conserved across levels.
    #[test]
    fn hierarchy_conservation(
        streams in proptest::collection::vec(
            proptest::collection::vec(0u32..512, 0..150),
            1..4,
        ),
    ) {
        let mut h = Hierarchy::new(streams.len(), HierarchyConfig {
            l1: tiny_config(),
            l2: CacheConfig { sets: 8, ways: 2, line_bytes: 64 },
            l3: CacheConfig { sets: 16, ways: 4, line_bytes: 64 },
        });
        let stats = h.replay(&streams);
        let total: usize = streams.iter().map(|s| s.len()).sum();
        prop_assert_eq!(stats.accesses, total as u64);
        prop_assert_eq!(
            stats.l1_hits + stats.l2_hits + stats.l3_hits + stats.dram,
            stats.accesses
        );
    }
}

#[test]
fn dram_rate_bounds() {
    let mut h = Hierarchy::new(1, HierarchyConfig::default());
    let s = h.replay(&[vec![1, 2, 3, 1, 2, 3]]);
    let r = s.dram_rate();
    assert!((0.0..=1.0).contains(&r));
}
