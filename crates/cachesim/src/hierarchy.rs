//! Per-thread cache hierarchies with a shared last-level cache.

use crate::cache::{Cache, CacheConfig};

/// Geometry of the modelled memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private L1 per thread.
    pub l1: CacheConfig,
    /// Private L2 per thread.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
}

impl Default for HierarchyConfig {
    /// A Westmere-EX-like geometry (the paper's Xeon E7 machines): 32 KiB
    /// L1, 256 KiB L2 private; shared L3 scaled down in proportion to the
    /// scaled-down inputs (1 MiB instead of 24–30 MiB).
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
            },
            l2: CacheConfig {
                sets: 512,
                ways: 8,
                line_bytes: 64,
            },
            l3: CacheConfig {
                sets: 2048,
                ways: 8,
                line_bytes: 64,
            },
        }
    }
}

/// Counters from one replay.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Total accesses replayed.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that hit L2).
    pub l2_hits: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// Requests satisfied from DRAM — the Figure 11 metric.
    pub dram: u64,
}

impl MemStats {
    /// Fraction of accesses that reached DRAM.
    pub fn dram_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.dram as f64 / self.accesses as f64
        }
    }
}

/// `threads` private L1/L2 pairs over one shared L3.
#[derive(Debug)]
pub struct Hierarchy {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    stats: MemStats,
}

impl Hierarchy {
    /// Builds a hierarchy for `threads` threads.
    pub fn new(threads: usize, config: HierarchyConfig) -> Self {
        Hierarchy {
            l1: (0..threads).map(|_| Cache::new(config.l1)).collect(),
            l2: (0..threads).map(|_| Cache::new(config.l2)).collect(),
            l3: Cache::new(config.l3),
            stats: MemStats::default(),
        }
    }

    /// Number of private hierarchies.
    pub fn threads(&self) -> usize {
        self.l1.len()
    }

    /// One access by `tid` to byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn access(&mut self, tid: usize, addr: u64) {
        self.stats.accesses += 1;
        if self.l1[tid].access(addr) {
            self.stats.l1_hits += 1;
        } else if self.l2[tid].access(addr) {
            self.stats.l2_hits += 1;
        } else if self.l3.access(addr) {
            self.stats.l3_hits += 1;
        } else {
            self.stats.dram += 1;
        }
    }

    /// Replays per-thread streams of abstract-location ids, interleaving
    /// round-robin (one access per thread per step), each location mapped to
    /// its own cache line. Returns the counters.
    ///
    /// Round-robin interleaving is a neutral model of concurrent execution:
    /// the exact interleaving of *different* threads' accesses barely moves
    /// the private-cache counts, and the shared L3 sees a fair mix.
    pub fn replay(&mut self, streams: &[Vec<u32>]) -> MemStats {
        assert_eq!(streams.len(), self.threads());
        let mut idx = vec![0usize; streams.len()];
        loop {
            let mut progressed = false;
            for tid in 0..streams.len() {
                if idx[tid] < streams[tid].len() {
                    let loc = streams[tid][idx[tid]];
                    idx[tid] += 1;
                    self.access(tid, loc as u64 * 64);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        self.stats
    }

    /// Counters so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(
            2,
            HierarchyConfig {
                l1: CacheConfig {
                    sets: 4,
                    ways: 2,
                    line_bytes: 64,
                },
                l2: CacheConfig {
                    sets: 8,
                    ways: 2,
                    line_bytes: 64,
                },
                l3: CacheConfig {
                    sets: 16,
                    ways: 4,
                    line_bytes: 64,
                },
            },
        )
    }

    #[test]
    fn inclusion_path_l1_l2_l3_dram() {
        let mut h = small();
        h.access(0, 0); // cold: DRAM
        h.access(0, 0); // L1 hit
        let s = h.stats();
        assert_eq!(s.dram, 1);
        assert_eq!(s.l1_hits, 1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut h = small();
        // L1 of thread 0: 4 sets × 2 ways = 8 lines. Touch 9 distinct lines
        // in the same L1 set, then re-touch the first: L1 misses, L2 hits.
        let stride = 4 * 64; // same L1 set
        for i in 0..3 {
            h.access(0, i * stride);
        }
        h.access(0, 0);
        let s = h.stats();
        assert!(s.l2_hits >= 1, "{s:?}");
    }

    #[test]
    fn private_caches_do_not_share() {
        let mut h = small();
        h.access(0, 0);
        h.access(1, 0); // other thread's L1/L2 are cold; hits shared L3
        let s = h.stats();
        assert_eq!(s.l1_hits, 0);
        assert_eq!(s.l3_hits, 1);
    }

    #[test]
    fn replay_good_locality_beats_bad_locality() {
        // Same multiset of locations; one stream revisits immediately, the
        // other separates reuse by a large window — the Figure 11 effect.
        let near: Vec<u32> = (0..1000u32).flat_map(|i| [i % 50, i % 50]).collect();
        let far: Vec<u32> = (0..1000u32)
            .map(|i| i % 50)
            .chain((0..1000u32).map(|i| i % 50))
            .collect();
        let mut h1 = Hierarchy::new(
            1,
            HierarchyConfig {
                l1: CacheConfig {
                    sets: 4,
                    ways: 2,
                    line_bytes: 64,
                },
                l2: CacheConfig {
                    sets: 4,
                    ways: 2,
                    line_bytes: 64,
                },
                l3: CacheConfig {
                    sets: 4,
                    ways: 2,
                    line_bytes: 64,
                },
            },
        );
        let near_stats = h1.replay(&[near]);
        let mut h2 = Hierarchy::new(
            1,
            HierarchyConfig {
                l1: CacheConfig {
                    sets: 4,
                    ways: 2,
                    line_bytes: 64,
                },
                l2: CacheConfig {
                    sets: 4,
                    ways: 2,
                    line_bytes: 64,
                },
                l3: CacheConfig {
                    sets: 4,
                    ways: 2,
                    line_bytes: 64,
                },
            },
        );
        let far_stats = h2.replay(&[far]);
        assert!(
            near_stats.dram < far_stats.dram,
            "near {near_stats:?} vs far {far_stats:?}"
        );
    }

    #[test]
    fn replay_consumes_unequal_streams() {
        let mut h = small();
        let s = h.replay(&[vec![1, 2, 3], vec![9]]);
        assert_eq!(s.accesses, 4);
    }
}
