//! A single set-associative LRU cache.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// # Example
///
/// ```
/// use cache_sim::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { sets: 2, ways: 2, line_bytes: 64 });
/// assert!(!c.access(0));      // cold miss
/// assert!(c.access(0));       // hit
/// assert!(!c.access(128));    // same set, second way
/// assert!(!c.access(256));    // evicts line 0 (LRU)
/// assert!(!c.access(0));      // miss again
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set * ways + way]`; `u64::MAX` = empty.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless sets and line size are nonzero powers of two and
    /// `ways > 0`.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0);
        Cache {
            config,
            tags: vec![u64::MAX; config.sets * config.ways],
            stamps: vec![0; config.sets * config.ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses `addr`; returns whether it hit. Misses install the line.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.config.sets as u64) as usize;
        let tag = line / self.config.sets as u64;
        let base = set * self.config.ways;
        let ways = &mut self.tags[base..base + self.config.ways];
        if let Some(w) = ways.iter().position(|&t| t == tag) {
            self.stamps[base + w] = self.clock;
            self.hits += 1;
            return true;
        }
        // Miss: replace LRU (or an empty way).
        let victim = (0..self.config.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways > 0");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        self.misses += 1;
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Empties the cache and counters.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn hits_within_line() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(1), "same line");
        assert!(c.access(63), "same line");
        assert!(!c.access(64), "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 receives lines 0, 4, 8 (stride = sets * line).
        let stride = 4 * 64;
        c.access(0);
        c.access(stride);
        c.access(0); // refresh line 0
        c.access(2 * stride); // evicts `stride` (LRU), not 0
        assert!(c.access(0), "line 0 retained");
        assert!(!c.access(stride), "line `stride` evicted");
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig {
            sets: 64,
            ways: 8,
            line_bytes: 64,
        });
        let lines = 64 * 8;
        for pass in 0..3 {
            for i in 0..lines as u64 {
                let hit = c.access(i * 64);
                if pass > 0 {
                    assert!(hit, "pass {pass}, line {i}");
                }
            }
        }
    }

    #[test]
    fn streaming_larger_than_capacity_always_misses() {
        let mut c = tiny(); // 512 B
        let lines = 100u64;
        for pass in 0..2 {
            for i in 0..lines {
                // Round-robin far apart: reuse distance exceeds capacity.
                assert!(!c.access(i * 64 * 8), "pass {pass} line {i}");
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0), "cold after reset");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 64,
        });
    }
}
