//! Set-associative LRU cache hierarchy simulator.
//!
//! The paper's locality study (§5.4, Figures 11–12) samples hardware
//! performance counters for requests satisfied from DRAM. This reproduction
//! substitutes a cache model (DESIGN.md, substitution 4): executors record
//! their abstract-location access streams, and [`Hierarchy::replay`] runs
//! them through private L1/L2 caches and a shared L3, counting misses to
//! memory. The phenomenon under study — DIG scheduling separates a task's
//! inspect and execute phases by a window of other tasks, destroying reuse —
//! is a *reuse-distance* property, which LRU caches measure directly.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod hierarchy;
pub mod regression;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{Hierarchy, HierarchyConfig, MemStats};
