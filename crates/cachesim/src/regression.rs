//! Simple linear regression, for the Figure 12 model fit.
//!
//! The paper fits `eff_var = B0 + B1 · (PC_ref / PC_var) · eff_ref` and
//! reports how well the observed efficiencies match a linear function of the
//! performance-counter ratio. [`fit`] returns the least-squares coefficients
//! and R².

/// Result of a least-squares line fit `y ≈ b0 + b1·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Intercept.
    pub b0: f64,
    /// Slope.
    pub b1: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fits `y ≈ b0 + b1·x` by ordinary least squares.
///
/// Returns `None` when fewer than two points are given or `x` has no
/// variance.
pub fn fit(xs: &[f64], ys: &[f64]) -> Option<Fit> {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let b1 = sxy / sxx;
    let b0 = my - b1 * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (b0 + b1 * x);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(Fit { b0, b1, r2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_has_r2_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let f = fit(&xs, &ys).unwrap();
        assert!((f.b0 - 3.0).abs() < 1e-12);
        assert!((f.b1 - 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_reduces_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let f = fit(&xs, &ys).unwrap();
        assert!(f.r2 < 1.0);
        assert!(f.r2 > 0.8, "still broadly linear: {}", f.r2);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fit(&[], &[]).is_none());
        assert!(fit(&[1.0], &[2.0]).is_none());
        assert!(fit(&[2.0, 2.0], &[1.0, 3.0]).is_none(), "no x variance");
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn mismatched_lengths_panic() {
        let _ = fit(&[1.0], &[1.0, 2.0]);
    }
}
