//! Portability-sweep helpers shared by every test crate.
//!
//! Portability sweeps follow one shape — run the app at every thread count,
//! reduce the run to a signature, assert all signatures are equal — so the
//! sweep loop and the executor construction live here (promoted from the
//! workspace-level `tests/common` module) instead of being copied into
//! every test crate that asserts the paper's thread-count invariance.

use galois_core::{DetOptions, Executor, Schedule};
use std::fmt::Debug;

/// Thread counts every portability sweep covers. The host running the
/// tests may have a single core: 8 and 16 deliberately oversubscribe it,
/// because determinism that only holds when every thread gets its own core
/// is not the paper's determinism.
pub const THREAD_COUNTS: [usize; 5] = [1, 2, 5, 8, 16];

/// Thread budgets a *served* request sweep covers: the server-facing
/// subset of [`THREAD_COUNTS`] used by the `galois-serve` end-to-end
/// battery, where each budget is one full executor pool per request.
pub const SERVE_THREAD_BUDGETS: [usize; 4] = [1, 2, 4, 8];

/// The default deterministic executor at `threads`.
pub fn det_executor(threads: usize) -> Executor {
    Executor::new()
        .threads(threads)
        .schedule(Schedule::deterministic())
}

/// A deterministic executor with a non-default locality spread (the §3.3
/// id-assignment optimization used by the mesh apps).
pub fn det_executor_spread(threads: usize, locality_spread: usize) -> Executor {
    Executor::new()
        .threads(threads)
        .schedule(Schedule::Deterministic(DetOptions {
            locality_spread,
            ..Default::default()
        }))
}

/// Runs `run` at every thread count in [`THREAD_COUNTS`] and asserts the
/// returned signature never changes. The signature should hold everything
/// the test claims is portable: outputs, schedule counters, round counts.
/// Returns the per-count signatures (all equal) for further assertions.
pub fn assert_portable<S, F>(label: &str, run: F) -> Vec<S>
where
    S: PartialEq + Debug,
    F: FnMut(usize) -> S,
{
    assert_portable_over(label, &THREAD_COUNTS, run)
}

/// [`assert_portable`] over an explicit thread-count list, for sweeps that
/// need a different budget set (e.g. the serve battery's request budgets).
pub fn assert_portable_over<S, F>(label: &str, thread_counts: &[usize], mut run: F) -> Vec<S>
where
    S: PartialEq + Debug,
    F: FnMut(usize) -> S,
{
    let mut sigs: Vec<S> = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let sig = run(threads);
        if let Some(p) = sigs.first() {
            assert_eq!(&sig, p, "{label} changed at {threads} threads");
        }
        sigs.push(sig);
    }
    sigs
}
