//! Resident inputs: the request→run plumbing behind `galois-serve`.
//!
//! A one-shot CLI run builds its input, runs, and exits; a resident server
//! answering the same request family over and over should pay the input
//! build once. This module splits the harness's `run_cell` into its two
//! halves — *materialize the input* ([`load_input`] / [`InputStore::get`])
//! and *run an executor over an already-materialized input*
//! ([`run_resident`]) — so a server can keep inputs warm in memory across
//! requests while every run still goes through the exact validation and
//! fingerprint reduction the differential harness uses.
//!
//! Not every input can stay resident: runs mutate some of them.
//!
//! - **bfs / mis / mm** — the CSR graph is read-only during a run; it is
//!   shared freely (`Arc`) between concurrent requests.
//! - **dt** — the point set is read-only (the run builds a fresh mesh);
//!   shared freely.
//! - **pfp** — the flow network stores flow state in atomics. It stays
//!   resident behind a mutex: each run takes the lock, [`reset`]s the
//!   residual state, and runs exclusively. Concurrent pfp requests on the
//!   same input key serialize; requests on different keys do not.
//! - **dmr** — refinement consumes the mesh; the input is rebuilt per
//!   request ([`Residency::Uncacheable`]).
//!
//! [`reset`]: FlowNetwork::reset

use crate::{input_key, reduce_run, App, InputConfig, RunOutcome};
use galois_core::manifest::ManifestRecorder;
use galois_core::{ExecError, Executor, RoundLog, RoundRecord};
use galois_graph::cache::{self, CacheOutcome};
use galois_graph::{gen, CsrGraph, FlowNetwork};
use galois_mesh::check;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An input materialized for (potentially repeated) execution.
#[derive(Clone)]
pub enum ResidentInput {
    /// CSR graph (bfs directed, mis/mm undirected) — immutable, shared.
    Graph(Arc<CsrGraph>),
    /// Point set for Delaunay triangulation, plus the BRIO seed.
    Points {
        /// The points themselves.
        pts: Arc<Vec<galois_geometry::point::Point>>,
        /// Seed for the biased randomized insertion order.
        seed: u64,
    },
    /// A mesh *recipe* for dmr: refinement consumes the mesh, so only the
    /// generator parameters stay resident and the mesh is rebuilt per run.
    MeshSpec {
        /// Input point count.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Flow network for pfp — resident but exclusive: runs lock it and
    /// reset the residual state before executing.
    Flow(Arc<Mutex<FlowNetwork>>),
}

/// Where a request's input came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Served from the in-memory resident store.
    Warm,
    /// Materialized now (generated, or loaded from the on-disk input
    /// cache) and made resident for subsequent requests.
    Cold,
    /// Rebuilt for this request because the run consumes its input (dmr).
    Uncacheable,
}

impl Residency {
    /// Lowercase label used in HTTP headers and stats.
    pub fn name(self) -> &'static str {
        match self {
            Residency::Warm => "warm",
            Residency::Cold => "cold",
            Residency::Uncacheable => "uncacheable",
        }
    }
}

/// Materializes the input described by `input` for `app`, honoring the
/// on-disk input cache in `input.cache_dir`. One-shot: no in-memory
/// residency (that is [`InputStore`]'s job).
pub fn load_input(app: App, input: &InputConfig) -> (ResidentInput, CacheOutcome) {
    let seed = input.seed;
    let bt = input.build_threads;
    let dir = input.cache_dir.as_deref();
    let n = input.size_for(app);
    let key = input_key(app, input);
    match app {
        App::Bfs => {
            let (g, cached) = cache::load_or_build_graph(dir, &key, || {
                gen::uniform_random_parallel(n, 5, seed, bt)
            });
            (ResidentInput::Graph(Arc::new(g)), cached)
        }
        App::Mis | App::Mm => {
            let (g, cached) = cache::load_or_build_graph(dir, &key, || {
                gen::uniform_random_undirected_parallel(n, 4, seed, bt)
            });
            (ResidentInput::Graph(Arc::new(g)), cached)
        }
        App::Dt => {
            let pts = galois_geometry::point::random_points(n, seed);
            (
                ResidentInput::Points {
                    pts: Arc::new(pts),
                    seed,
                },
                CacheOutcome::Disabled,
            )
        }
        App::Dmr => (ResidentInput::MeshSpec { n, seed }, CacheOutcome::Disabled),
        App::Pfp => {
            let (net, cached) = cache::load_or_build_flow(dir, &key, || {
                FlowNetwork::random_parallel(n, 4, 100, seed, bt)
            });
            (ResidentInput::Flow(Arc::new(Mutex::new(net))), cached)
        }
    }
}

/// What [`run_resident`] reduces a completed run to: the harness's
/// cross-run [`RunOutcome`] plus the canonical round records (renumbered
/// into one monotone sequence across multi-bout runs), so a server can
/// stream the round log without re-running.
#[derive(Debug, Clone)]
pub struct ResidentRun {
    /// The fingerprint reduction every harness comparison uses.
    pub outcome: RunOutcome,
    /// Canonical round records; byte-identical at any thread count for
    /// deterministic runs.
    pub records: Vec<RoundRecord>,
}

fn reduce(
    output_hash: u64,
    logs: Vec<RoundLog>,
    stats: &galois_runtime::stats::ExecStats,
) -> ResidentRun {
    let (outcome, records) = reduce_run(output_hash, logs, stats);
    ResidentRun { outcome, records }
}

fn take_logs(report: &mut galois_core::RunReport) -> Vec<RoundLog> {
    report.take_round_log().into_iter().collect()
}

/// Runs `exec` over an already-materialized input, validating the output
/// and reducing the run exactly as the differential harness does. The
/// layering mirrors `run_cell`: outer `Err` = validation failure (or an
/// app/input mismatch), inner `Err` = a contained executor fault, inner
/// `Ok` = a validated [`ResidentRun`]. A [`ManifestRecorder`] in `rec`
/// rides the run, capturing (or replay-verifying) the canonical chain.
pub fn run_resident(
    app: App,
    exec: &Executor,
    input: &ResidentInput,
    mut rec: Option<&mut ManifestRecorder>,
) -> Result<Result<ResidentRun, ExecError>, String> {
    use crate::apps;
    match (app, input) {
        (App::Bfs, ResidentInput::Graph(g)) => {
            let result = match rec.as_deref_mut() {
                Some(r) => apps::bfs::try_galois_recorded(g, 0, exec, r),
                None => apps::bfs::try_galois(g, 0, exec),
            };
            let (dist, mut r) = match result {
                Ok(v) => v,
                Err(e) => return Ok(Err(e)),
            };
            apps::bfs::verify(g, 0, &dist).map_err(|e| format!("bfs: {e}"))?;
            let h = galois_runtime::fingerprint::hash_u32s(&dist);
            Ok(Ok(reduce(h, take_logs(&mut r), &r.stats)))
        }
        (App::Mis, ResidentInput::Graph(g)) => {
            let result = match rec.as_deref_mut() {
                Some(r) => apps::mis::try_galois_recorded(g, exec, r),
                None => apps::mis::try_galois(g, exec),
            };
            let (flags, mut r) = match result {
                Ok(v) => v,
                Err(e) => return Ok(Err(e)),
            };
            apps::mis::verify(g, &flags).map_err(|e| format!("mis: {e}"))?;
            let h = galois_runtime::fingerprint::hash_u32s(&flags);
            Ok(Ok(reduce(h, take_logs(&mut r), &r.stats)))
        }
        (App::Mm, ResidentInput::Graph(g)) => {
            let result = match rec.as_deref_mut() {
                Some(r) => apps::mm::try_galois_recorded(g, exec, r),
                None => apps::mm::try_galois(g, exec),
            };
            let (mate, mut r) = match result {
                Ok(v) => v,
                Err(e) => return Ok(Err(e)),
            };
            apps::mm::verify(g, &mate).map_err(|e| format!("mm: {e}"))?;
            let h = galois_runtime::fingerprint::hash_u32s(&mate);
            Ok(Ok(reduce(h, take_logs(&mut r), &r.stats)))
        }
        (App::Dt, ResidentInput::Points { pts, seed }) => {
            let result = match rec.as_deref_mut() {
                Some(r) => apps::dt::try_galois_recorded(pts, *seed, exec, r),
                None => apps::dt::try_galois(pts, *seed, exec),
            };
            let (mesh, mut r) = match result {
                Ok(v) => v,
                Err(e) => return Ok(Err(e)),
            };
            check::validate(&mesh).map_err(|e| format!("dt structure: {e}"))?;
            check::check_delaunay(&mesh).map_err(|e| format!("dt delaunay: {e}"))?;
            Ok(Ok(reduce(
                crate::hash_mesh(&mesh),
                take_logs(&mut r),
                &r.stats,
            )))
        }
        (App::Dmr, ResidentInput::MeshSpec { n, seed }) => {
            let mesh = apps::dmr::make_input(*n, *seed);
            let result = match rec.as_deref_mut() {
                Some(r) => apps::dmr::try_galois_recorded(&mesh, exec, r),
                None => apps::dmr::try_galois(&mesh, exec),
            };
            let mut r = match result {
                Ok(v) => v,
                Err(e) => return Ok(Err(e)),
            };
            check::validate(&mesh).map_err(|e| format!("dmr structure: {e}"))?;
            check::check_delaunay(&mesh).map_err(|e| format!("dmr delaunay: {e}"))?;
            let bad = check::quality(&mesh).bad;
            if bad != 0 {
                return Err(format!("dmr: {bad} bad triangles survive refinement"));
            }
            Ok(Ok(reduce(
                crate::hash_mesh(&mesh),
                take_logs(&mut r),
                &r.stats,
            )))
        }
        (App::Pfp, ResidentInput::Flow(net)) => {
            // Exclusive: pfp writes flow state into the network's atomics,
            // so a resident network serves one run at a time, from a clean
            // residual state.
            let net = net.lock().unwrap();
            net.reset();
            let result = match rec {
                Some(r) => apps::pfp::try_galois_recorded(&net, exec, r),
                None => apps::pfp::try_galois(&net, exec),
            };
            let (flow, mut r) = match result {
                Ok(v) => v,
                Err(e) => return Ok(Err(e)),
            };
            let checked = net.verify_flow().map_err(|e| format!("pfp: {e}"))?;
            if checked != flow {
                return Err(format!("pfp: reported flow {flow} != recomputed {checked}"));
            }
            let logs: Vec<RoundLog> = r
                .reports
                .iter_mut()
                .filter_map(|b| b.take_round_log())
                .collect();
            let mut h = crate::Fnv64::new();
            h.write_i64(flow);
            Ok(Ok(reduce(h.finish(), logs, &r.stats)))
        }
        _ => Err(format!(
            "resident input does not match app {app} — store keys crossed"
        )),
    }
}

/// One coherent reading of the store's counters, taken under a single
/// lock acquisition — a concurrent observer never sees a torn set (e.g. a
/// warm hit counted but the resident entry not yet visible).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Requests served from memory.
    pub warm_hits: u64,
    /// Requests that materialized (and retained) a new input.
    pub cold_loads: u64,
    /// Requests whose input had to be rebuilt (uncacheable apps).
    pub rebuilds: u64,
    /// Distinct inputs currently resident.
    pub resident_inputs: usize,
}

struct StoreInner {
    map: HashMap<String, ResidentInput>,
    warm: u64,
    cold: u64,
    rebuilt: u64,
}

/// Thread-safe resident input store: one materialized input per input key,
/// kept warm across requests. mis and mm share an entry (their input key
/// is identical by construction). Residency map and counters live under
/// *one* mutex so every counter update is atomic with the map change that
/// justifies it, and [`snapshot`](Self::snapshot) reads a coherent set.
pub struct InputStore {
    cache_dir: Option<PathBuf>,
    inner: Mutex<StoreInner>,
}

impl InputStore {
    /// An empty store; `cache_dir` optionally backs cold loads with the
    /// on-disk input cache.
    pub fn new(cache_dir: Option<PathBuf>) -> Self {
        InputStore {
            cache_dir,
            inner: Mutex::new(StoreInner {
                map: HashMap::new(),
                warm: 0,
                cold: 0,
                rebuilt: 0,
            }),
        }
    }

    /// The on-disk cache directory backing this store, if any.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Materializes (or returns the resident copy of) the input for
    /// `(app, input)`. The store's own `cache_dir` overrides the one in
    /// `input`. Builds happen under the store lock, so concurrent requests
    /// for the same missing key build it exactly once. (dmr inputs are
    /// consumed per run; only their counter takes the lock, the rebuild
    /// itself runs unlocked so concurrent dmr requests don't serialize.)
    pub fn get(&self, app: App, input: &InputConfig) -> (ResidentInput, Residency) {
        let mut input = input.clone();
        input.cache_dir = self.cache_dir.clone();
        if matches!(app, App::Dmr) {
            self.inner.lock().unwrap().rebuilt += 1;
            let (built, _) = load_input(app, &input);
            return (built, Residency::Uncacheable);
        }
        let key = input_key(app, &input);
        let mut inner = self.inner.lock().unwrap();
        if let Some(found) = inner.map.get(&key).cloned() {
            inner.warm += 1;
            return (found, Residency::Warm);
        }
        let (built, _) = load_input(app, &input);
        inner.map.insert(key, built.clone());
        inner.cold += 1;
        (built, Residency::Cold)
    }

    /// All counters, read coherently under one lock acquisition.
    pub fn snapshot(&self) -> StoreSnapshot {
        let inner = self.inner.lock().unwrap();
        StoreSnapshot {
            warm_hits: inner.warm,
            cold_loads: inner.cold,
            rebuilds: inner.rebuilt,
            resident_inputs: inner.map.len(),
        }
    }

    /// Requests served from memory.
    pub fn warm_hits(&self) -> u64 {
        self.snapshot().warm_hits
    }

    /// Requests that materialized (and retained) a new input.
    pub fn cold_loads(&self) -> u64 {
        self.snapshot().cold_loads
    }

    /// Requests whose input had to be rebuilt (uncacheable apps).
    pub fn rebuilds(&self) -> u64 {
        self.snapshot().rebuilds
    }

    /// Distinct inputs currently resident.
    pub fn resident_inputs(&self) -> usize {
        self.snapshot().resident_inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{executor_for, Variant};

    #[test]
    fn store_serves_warm_after_first_load() {
        let store = InputStore::new(None);
        let input = InputConfig::from_seed(42);
        let (_, r1) = store.get(App::Mis, &input);
        assert_eq!(r1, Residency::Cold);
        let (_, r2) = store.get(App::Mis, &input);
        assert_eq!(r2, Residency::Warm);
        // mm shares mis's undirected entry.
        let (_, r3) = store.get(App::Mm, &input);
        assert_eq!(r3, Residency::Warm);
        assert_eq!(store.warm_hits(), 2);
        assert_eq!(store.cold_loads(), 1);
        assert_eq!(store.resident_inputs(), 1);
    }

    #[test]
    fn dmr_is_rebuilt_per_request() {
        let store = InputStore::new(None);
        let input = InputConfig::from_seed(42);
        let (_, r1) = store.get(App::Dmr, &input);
        let (_, r2) = store.get(App::Dmr, &input);
        assert_eq!(r1, Residency::Uncacheable);
        assert_eq!(r2, Residency::Uncacheable);
        assert_eq!(store.rebuilds(), 2);
        assert_eq!(store.resident_inputs(), 0);
    }

    #[test]
    fn resident_run_matches_oneshot_fingerprint() {
        // A run over a store-resident input must fingerprint identically to
        // the one-shot run_app path — residency is invisible to results.
        let input = InputConfig::from_seed(42);
        let (oneshot, _) = crate::run_app(
            App::Mis,
            Variant::Deterministic,
            2,
            None,
            &input,
            &crate::unperturbed,
        )
        .unwrap();
        let store = InputStore::new(None);
        let (res, _) = store.get(App::Mis, &input);
        let exec = executor_for(App::Mis, Variant::Deterministic, 2, None);
        let run = run_resident(App::Mis, &exec, &res, None).unwrap().unwrap();
        assert_eq!(run.outcome.fingerprint, oneshot.fingerprint);
        // Repeated pfp runs on one resident network: the reset makes each
        // run start clean, so the fingerprint is stable run over run.
        let (flow_in, _) = store.get(App::Pfp, &input);
        let exec = executor_for(App::Pfp, Variant::Deterministic, 2, None);
        let a = run_resident(App::Pfp, &exec, &flow_in, None)
            .unwrap()
            .unwrap();
        let b = run_resident(App::Pfp, &exec, &flow_in, None)
            .unwrap()
            .unwrap();
        assert_eq!(a.outcome.fingerprint, b.outcome.fingerprint);
    }
}
