//! Real-subprocess orchestration helpers for distributed tests.
//!
//! The distributed lockstep battery proves cross-*process* properties —
//! replica death is a SIGKILL, divergence is a different executable run —
//! so its replicas must be real `galois` child processes, not in-process
//! threads. This module locates (building on demand if necessary) the
//! workspace's `galois` binary and spawns replica children with the
//! standard flag surface, so every test spells process orchestration the
//! same way.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;

/// How a spawned replica should behave — the test-visible knobs of
/// `galois replicate`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaSpec {
    /// Worker threads the replica runs the job with (0 = use the manifest's
    /// recorded budget). Distinct budgets across replicas is the
    /// portability claim under test.
    pub threads: usize,
    /// When non-zero, overrides the job's `locality_spread` — a planted
    /// schedule perturbation that *deterministically* diverges from the
    /// reference chain at a reproducible first round.
    pub perturb_spread: usize,
    /// When non-zero, sleeps this many milliseconds in the round-hash hook
    /// — a slow replica for window-bound tests. Timing is hash-invariant,
    /// so throttling never changes the result, only its arrival.
    pub throttle_ms: u64,
}

/// Locates the workspace's release-or-debug `galois` binary, building it
/// (`cargo build --bin galois`) the first time a test asks and nothing is
/// on disk yet. The result is cached for the process lifetime.
///
/// Integration tests of library crates cannot use `CARGO_BIN_EXE_galois`
/// (the binary belongs to the root package, not the crate under test), so
/// this walks from `current_exe` — `target/<profile>/deps/<test-bin>` — up
/// to the profile directory.
pub fn galois_bin() -> PathBuf {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        let exe = std::env::current_exe().expect("current_exe");
        let profile_dir = profile_dir_of(&exe);
        let candidate = profile_dir.join(format!("galois{}", std::env::consts::EXE_SUFFIX));
        if !candidate.is_file() {
            let release = profile_dir.file_name().is_some_and(|n| n == "release");
            let mut cmd = Command::new(env!("CARGO"));
            cmd.args(["build", "--bin", "galois"]);
            if release {
                cmd.arg("--release");
            }
            let status = cmd
                .status()
                .unwrap_or_else(|e| panic!("cargo build --bin galois: {e}"));
            assert!(status.success(), "cargo build --bin galois failed");
        }
        assert!(
            candidate.is_file(),
            "galois binary not found at {}",
            candidate.display()
        );
        candidate
    })
    .clone()
}

/// `target/<profile>/deps/test-xyz` (or `target/<profile>/galois`) → the
/// profile directory.
fn profile_dir_of(exe: &Path) -> PathBuf {
    let mut dir = exe.parent().expect("exe has a parent").to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    dir
}

/// Spawns one `galois replicate --join addr` child per `spec`. Stdout and
/// stderr are piped (a replica's chatter must not interleave with the test
/// harness's); the caller owns the [`Child`] — `kill()` is the battery's
/// SIGKILL injection point on Unix.
pub fn spawn_replica(bin: &Path, addr: &str, spec: &ReplicaSpec) -> std::io::Result<Child> {
    let mut cmd = Command::new(bin);
    cmd.arg("replicate").args(["--join", addr]);
    if spec.threads != 0 {
        cmd.args(["--threads", &spec.threads.to_string()]);
    }
    if spec.perturb_spread != 0 {
        cmd.args(["--perturb-spread", &spec.perturb_spread.to_string()]);
    }
    if spec.throttle_ms != 0 {
        cmd.args(["--throttle-ms", &spec.throttle_ms.to_string()]);
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd.spawn()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_dir_strips_deps() {
        assert_eq!(
            profile_dir_of(Path::new("/w/target/debug/deps/t-abc")),
            Path::new("/w/target/debug")
        );
        assert_eq!(
            profile_dir_of(Path::new("/w/target/release/galois")),
            Path::new("/w/target/release")
        );
    }
}
