//! `differential` — the cross-executor differential sweep as a CLI.
//!
//! ```text
//! differential [--app all|NAME[,NAME...]] [--threads LIST] [--chaos-seeds LIST|LO..HI]
//!              [--panic-chaos LIST|LO..HI] [--input-seed N] [--build-threads N]
//!              [--cache-dir DIR] [--no-spec] [--out FILE]
//! ```
//!
//! Runs serial vs speculative vs deterministic for each app over the
//! (threads × chaos seeds) matrix. On failure the minimized one-line
//! reproduction command is printed, written to `--out` (default
//! `chaos-repro.txt`, for CI artifact upload), and the exit code is 1.
//! Seed lists accept an inclusive range `LO..HI` or a comma list.
//!
//! `--panic-chaos LIST` switches to the **fault-injection matrix**: every
//! run arms seeded operator-panic injection, and the harness records one
//! fault fingerprint per `(app, panic seed)` — the structured `ExecError`
//! (task id, round, message) of the faulted run, or the clean fingerprint
//! when the drawn fault set misses. Deterministic fingerprints must be
//! identical at every thread count; speculative runs must terminate (no
//! deadlock) and validate when clean. `--chaos-seeds` is ignored in this
//! mode.
//!
//! `--cache-dir DIR` caches generated inputs on disk: the first sweep
//! stores each input, later sweeps load it back (the summary line reports
//! hits/misses, which CI asserts on). `--build-threads N` builds inputs
//! with the parallel generators — byte-identical for every N, so it never
//! changes any fingerprint.
//!
//! `--manifest DIR` captures each app's converged deterministic run as a
//! replayable `<app>.manifest.json` in DIR after a successful sweep — the
//! run the whole matrix agreed on becomes a `galois replay` artifact.

use galois_harness::{
    record_run, run_differential, run_panic_differential, unperturbed, App, DiffConfig,
};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: differential [--app all|NAME[,NAME...]] [--threads LIST] \
         [--chaos-seeds LIST|LO..HI] [--panic-chaos LIST|LO..HI] [--input-seed N] \
         [--build-threads N] [--cache-dir DIR] [--manifest DIR] [--no-spec] [--out FILE]"
    );
    exit(2);
}

fn parse_apps(v: &str) -> Vec<App> {
    if v == "all" {
        return App::ALL.to_vec();
    }
    v.split(',')
        .map(|name| App::from_name(name.trim()).unwrap_or_else(|| usage()))
        .collect()
}

fn parse_usize_list(v: &str) -> Vec<usize> {
    v.split(',')
        .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
        .collect()
}

fn parse_seed_list(v: &str) -> Vec<u64> {
    if let Some((lo, hi)) = v.split_once("..") {
        let lo: u64 = lo.trim().parse().unwrap_or_else(|_| usage());
        let hi: u64 = hi.trim().parse().unwrap_or_else(|_| usage());
        if lo > hi {
            usage();
        }
        return (lo..=hi).collect();
    }
    v.split(',')
        .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
        .collect()
}

fn main() {
    let mut cfg = DiffConfig::default();
    let mut panic_seeds: Option<Vec<u64>> = None;
    let mut out_path = String::from("chaos-repro.txt");
    let mut manifest_dir: Option<std::path::PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |a: &mut dyn FnMut(String)| match it.next() {
            Some(v) => a(v),
            None => usage(),
        };
        match flag.as_str() {
            "--app" => val(&mut |v| cfg.apps = parse_apps(&v)),
            "--threads" => val(&mut |v| cfg.threads = parse_usize_list(&v)),
            "--chaos-seeds" => val(&mut |v| cfg.chaos_seeds = parse_seed_list(&v)),
            "--panic-chaos" => val(&mut |v| panic_seeds = Some(parse_seed_list(&v))),
            "--input-seed" => val(&mut |v| cfg.input_seed = v.parse().unwrap_or_else(|_| usage())),
            "--build-threads" => {
                val(&mut |v| cfg.build_threads = v.parse().unwrap_or_else(|_| usage()))
            }
            "--cache-dir" => val(&mut |v| cfg.cache_dir = Some(v.into())),
            "--manifest" => val(&mut |v| manifest_dir = Some(v.into())),
            "--no-spec" => cfg.check_spec = false,
            "--out" => val(&mut |v| out_path = v),
            _ => usage(),
        }
    }
    if cfg.apps.is_empty() || cfg.threads.is_empty() || cfg.chaos_seeds.is_empty() {
        usage();
    }

    let t0 = std::time::Instant::now();
    if let Some(seeds) = panic_seeds {
        if seeds.is_empty() {
            usage();
        }
        cfg.chaos_seeds = seeds;
        println!(
            "differential (panic-chaos): apps {:?}, threads {:?}, panic seeds {:?}, input seed {}",
            cfg.apps.iter().map(|a| a.name()).collect::<Vec<_>>(),
            cfg.threads,
            cfg.chaos_seeds,
            cfg.input_seed,
        );
        match run_panic_differential(&cfg) {
            Ok(summary) => {
                let faulted = summary
                    .fault_fingerprints
                    .iter()
                    .filter(|(_, _, out)| matches!(out, galois_harness::FaultOutcome::Faulted(_)))
                    .count();
                for (app, seed, out) in &summary.fault_fingerprints {
                    println!("  {app} seed {seed}: {out} at every thread count");
                }
                println!(
                    "ok: {} runs, {} of {} (app, seed) cells faulted, all reports \
                     thread-invariant in {:?}",
                    summary.runs,
                    faulted,
                    summary.fault_fingerprints.len(),
                    t0.elapsed(),
                );
            }
            Err(failure) => {
                eprintln!("FAILURE {failure}");
                if let Err(e) = std::fs::write(&out_path, format!("{}\n", failure.repro)) {
                    eprintln!("cannot write {out_path}: {e}");
                } else {
                    eprintln!("minimized repro written to {out_path}");
                }
                exit(1);
            }
        }
        return;
    }
    println!(
        "differential: apps {:?}, threads {:?}, chaos seeds {:?}, input seed {}",
        cfg.apps.iter().map(|a| a.name()).collect::<Vec<_>>(),
        cfg.threads,
        cfg.chaos_seeds,
        cfg.input_seed,
    );
    match run_differential(&cfg, &unperturbed) {
        Ok(summary) => {
            for (app, fp) in &summary.det_fingerprints {
                println!("  {app}: deterministic fingerprint {fp:016x} across the whole matrix");
            }
            if let Some(dir) = &manifest_dir {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                    exit(1);
                }
                let input = cfg.input();
                for &(app, fp) in &summary.det_fingerprints {
                    let manifest = match record_run(app, cfg.threads[0], None, &input) {
                        Ok(m) => m,
                        Err(e) => {
                            eprintln!("FAILURE recording {app} manifest: {e}");
                            exit(1);
                        }
                    };
                    // No-chaos recording must land on the same fingerprint
                    // the chaos matrix converged on — that is the whole
                    // point of the invariance sweep.
                    if manifest.final_fingerprint != fp {
                        eprintln!(
                            "FAILURE {app}: manifest fingerprint {:016x} != sweep \
                             fingerprint {fp:016x}",
                            manifest.final_fingerprint
                        );
                        exit(1);
                    }
                    let path = dir.join(format!("{app}.manifest.json"));
                    if let Err(e) = manifest.save(&path) {
                        eprintln!("FAILURE {e}");
                        exit(1);
                    }
                    println!(
                        "  {app}: manifest ({} rounds) written to {}",
                        manifest.round_hashes.len(),
                        path.display()
                    );
                }
            }
            if cfg.cache_dir.is_some() {
                println!(
                    "input cache: {} hits, {} misses",
                    summary.cache_hits, summary.cache_misses,
                );
            }
            println!(
                "ok: {} runs, {} apps invariant in {:?}",
                summary.runs,
                summary.det_fingerprints.len(),
                t0.elapsed(),
            );
        }
        Err(failure) => {
            eprintln!("FAILURE {failure}");
            if let Err(e) = std::fs::write(&out_path, format!("{}\n", failure.repro)) {
                eprintln!("cannot write {out_path}: {e}");
            } else {
                eprintln!("minimized repro written to {out_path}");
            }
            exit(1);
        }
    }
}
