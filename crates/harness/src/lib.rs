//! Cross-executor differential harness.
//!
//! The paper's determinism claim is a *portability* claim: a deterministic
//! Galois run is a pure function of the algorithm and its input, not of the
//! thread count or of how the OS happens to interleave threads. The chaos
//! layer ([`galois_runtime::chaos`]) makes "how the OS interleaves threads"
//! an explicit, seeded input; this crate closes the loop by running every
//! benchmark application under three executors and checking what each one
//! owes:
//!
//! - **serial** — the semantic oracle; one thread, no chaos, ever.
//! - **speculative** (`g-n`) — output need only *validate* (per-app
//!   verifier, plus equality with the oracle where the output value is
//!   unique, e.g. BFS distances and the max-flow value).
//! - **deterministic** (`g-d`) — output *and* the canonical round log must
//!   be byte-identical across **every** (thread count, chaos seed) pair.
//!
//! On a deterministic divergence the harness does not just fail: it shrinks
//! the failing matrix to a minimal `(app, threads, seeds)` cell pair and
//! prints a one-line `cargo run` reproduction command, so a scheduler bug
//! found on an 8-thread × 8-seed sweep arrives as a two-run repro.

use galois_core::manifest::{
    ManifestError, ManifestRecorder, ReplayDivergence, RunManifest, ScheduleKind,
};
use galois_core::{
    DetOptions, ExecError, Executor, RoundLog, RoundRecord, Schedule, WorklistPolicy,
};
use galois_graph::cache::CacheOutcome;
use galois_runtime::fingerprint::{run_fingerprint, RoundChain};
use galois_runtime::stats::ExecStats;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

pub mod resident;
pub mod subprocess;
pub mod sweep;

pub use galois_apps as apps;
pub use galois_graph::cache::CacheOutcome as InputCacheOutcome;
pub use resident::{
    load_input, run_resident, InputStore, Residency, ResidentInput, ResidentRun, StoreSnapshot,
};
// The harness used to carry its own private FNV implementation; all hashing
// now goes through the runtime's single authority (see
// `galois_runtime::fingerprint`). The re-export keeps the harness API.
pub use galois_runtime::fingerprint::Fnv64;

/// The benchmark applications the harness covers (§4.1 of the paper, plus
/// maximal matching).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    Bfs,
    Mis,
    Mm,
    Dt,
    Dmr,
    Pfp,
}

impl App {
    pub const ALL: [App; 6] = [App::Bfs, App::Mis, App::Mm, App::Dt, App::Dmr, App::Pfp];

    pub fn name(self) -> &'static str {
        match self {
            App::Bfs => "bfs",
            App::Mis => "mis",
            App::Mm => "mm",
            App::Dt => "dt",
            App::Dmr => "dmr",
            App::Pfp => "pfp",
        }
    }

    pub fn from_name(name: &str) -> Option<App> {
        App::ALL.into_iter().find(|a| a.name() == name)
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which executor a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Serial,
    Speculative,
    Deterministic,
}

impl Variant {
    pub fn name(self) -> &'static str {
        match self {
            Variant::Serial => "serial",
            Variant::Speculative => "speculative",
            Variant::Deterministic => "deterministic",
        }
    }

    /// Parses a variant name, accepting both the harness spellings and the
    /// `galois` CLI's short forms (`seq`, `g-n`, `g-d`).
    pub fn from_name(name: &str) -> Option<Variant> {
        match name {
            "serial" | "seq" => Some(Variant::Serial),
            "speculative" | "g-n" => Some(Variant::Speculative),
            "deterministic" | "g-d" => Some(Variant::Deterministic),
            _ => None,
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What one run is reduced to for cross-run comparison.
///
/// `fingerprint` folds together everything that must be invariant for a
/// deterministic run: the output hash, the canonical round log hash, and
/// the schedule-derived counters. `injected_aborts` is deliberately **not**
/// part of it — it is seed-dependent by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    pub fingerprint: u64,
    pub output_hash: u64,
    pub log_hash: u64,
    pub rounds: u64,
    pub committed: u64,
    pub aborted: u64,
    pub injected_aborts: u64,
}

/// Chains rounds across multi-pass runs (pfp bouts) into one monotone
/// sequence — `RoundChain` renumbers with its own counter, exactly as the
/// CLI's --round-log writer does — and reduces the run to a [`RunOutcome`]
/// plus the renumbered records themselves (so a server can stream the
/// canonical round log without re-running). The chain covers the
/// schedule-derived scalars of each round but NOT the conflict
/// attribution: conflict entries name abstract lock ids, and for the
/// mesh apps those are arena triangle ids whose allocation order is
/// thread-count-dependent even though the schedule (and the geometry,
/// covered by `output_hash`) is not.
pub(crate) fn reduce_run(
    output_hash: u64,
    logs: Vec<RoundLog>,
    stats: &ExecStats,
) -> (RunOutcome, Vec<RoundRecord>) {
    let mut records: Vec<RoundRecord> = Vec::new();
    for log in logs {
        for mut rec in log.into_records() {
            rec.round = records.len() as u64;
            records.push(rec);
        }
    }
    let mut chain = RoundChain::new();
    for rec in &records {
        chain.push(rec);
    }
    let log_hash = chain.log_hash();
    let rounds = chain.rounds();
    let outcome = RunOutcome {
        fingerprint: run_fingerprint(
            output_hash,
            log_hash,
            rounds,
            stats.committed,
            stats.aborted,
        ),
        output_hash,
        log_hash,
        rounds,
        committed: stats.committed,
        aborted: stats.aborted,
        injected_aborts: stats.injected_aborts,
    };
    (outcome, records)
}

#[cfg(test)]
fn outcome(output_hash: u64, logs: Vec<RoundLog>, stats: &ExecStats) -> RunOutcome {
    reduce_run(output_hash, logs, stats).0
}

/// Hook that may replace the executor a run would use — the harness's
/// mutation-testing seam. The identity hook is [`unperturbed`]; the
/// harness's own tests plant scheduler perturbations here and assert the
/// differential sweep catches them.
pub type Mutation<'a> = &'a dyn Fn(App, Variant, usize, Option<u64>, Executor) -> Executor;

/// The identity [`Mutation`].
pub fn unperturbed(_: App, _: Variant, _: usize, _: Option<u64>, exec: Executor) -> Executor {
    exec
}

/// The executor configuration each app runs under, mirroring the `galois`
/// CLI: dt/dmr spread task ids for locality, bfs/pfp use FIFO worklists.
/// Public so the serving layer builds *the same* executors the harness
/// proves deterministic — a served request and a differential-sweep cell
/// are the same computation.
pub fn executor_for(
    app: App,
    variant: Variant,
    threads: usize,
    chaos_seed: Option<u64>,
) -> Executor {
    let (spread, fifo) = match app {
        App::Dt | App::Dmr => (16, false),
        App::Bfs | App::Pfp => (1, true),
        App::Mis | App::Mm => (1, false),
    };
    let schedule = match variant {
        Variant::Serial => Schedule::Serial,
        Variant::Speculative => Schedule::Speculative,
        Variant::Deterministic => Schedule::Deterministic(DetOptions {
            locality_spread: spread,
            ..Default::default()
        }),
    };
    let mut exec = Executor::new()
        .threads(threads)
        .schedule(schedule)
        .worklist(if fifo {
            WorklistPolicy::Fifo
        } else {
            WorklistPolicy::Lifo
        })
        // Only deterministic logs are canonical; speculative epochs reflect
        // real nondeterminism and must stay out of the fingerprint.
        .record_rounds(variant == Variant::Deterministic);
    if let Some(seed) = chaos_seed {
        exec = exec.chaos(seed);
    }
    exec
}

/// How one run's input is produced: the generator seed, the thread count
/// the input *builder* uses (the parallel generators are byte-identical
/// for every value, so this never affects results), and an optional
/// on-disk cache directory for generated inputs.
#[derive(Debug, Clone)]
pub struct InputConfig {
    /// Seed for the input generators.
    pub seed: u64,
    /// Threads used to generate and CSR-build the input.
    pub build_threads: usize,
    /// Directory for the on-disk input cache; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Input size override (nodes / points / triangles per app); `None`
    /// uses each app's default corpus size.
    pub size: Option<usize>,
}

impl Default for InputConfig {
    fn default() -> Self {
        InputConfig {
            seed: 42,
            build_threads: 1,
            cache_dir: None,
            size: None,
        }
    }
}

impl InputConfig {
    /// An uncached, sequentially-built input from `seed` — the historical
    /// `run_app` behaviour.
    pub fn from_seed(seed: u64) -> Self {
        InputConfig {
            seed,
            ..Default::default()
        }
    }

    /// The effective size parameter for `app` (the override, or the app's
    /// default corpus size).
    pub fn size_for(&self, app: App) -> usize {
        self.size.unwrap_or(match app {
            App::Bfs => 2_000,
            App::Mis | App::Mm => 1_500,
            App::Dt => 300,
            App::Dmr => 120,
            App::Pfp => 96,
        })
    }
}

/// The canonical input-identity key for one `(app, size, seed)` — the same
/// string the on-disk input cache files are named by, and the string a
/// [`RunManifest`] pins so a replay provably re-runs the same input family.
pub fn input_key(app: App, input: &InputConfig) -> String {
    let n = input.size_for(app);
    let seed = input.seed;
    match app {
        App::Bfs => format!("uniform-n{n}-d5-s{seed}"),
        App::Mis | App::Mm => format!("uniform-und-n{n}-d4-s{seed}"),
        App::Dt => format!("points-n{n}-s{seed}"),
        App::Dmr => format!("mesh-n{n}-s{seed}"),
        App::Pfp => format!("flowrand-n{n}-d4-c100-s{seed}"),
    }
}

/// Runs one `(app, variant, threads, chaos seed)` cell: builds (or loads
/// from cache) the input described by `input`, runs, validates the output,
/// and reduces the run to a [`RunOutcome`]. Validation failure is an `Err`
/// with the verifier's message.
///
/// Without panic chaos armed an executor fault is a containment-layer bug,
/// so — exactly like the apps' panicking `galois` wrappers — it propagates
/// as a panic. Use [`run_app_panic`] when faults are expected.
///
/// The returned [`CacheOutcome`] says whether the input came from the
/// cache; the point-set apps (dt, dmr) generate inputs too cheap to cache
/// and always report [`CacheOutcome::Disabled`].
pub fn run_app(
    app: App,
    variant: Variant,
    threads: usize,
    chaos_seed: Option<u64>,
    input: &InputConfig,
    mutation: Mutation,
) -> Result<(RunOutcome, CacheOutcome), String> {
    let exec = mutation(
        app,
        variant,
        threads,
        chaos_seed,
        executor_for(app, variant, threads, chaos_seed),
    );
    let (result, cached) = run_cell(app, &exec, input, None)?;
    Ok((result.unwrap_or_else(|e| panic!("{e}")), cached))
}

/// Runs one cell under `exec`, separating the three ways it can end:
/// outer `Err` = the output failed validation, inner `Err` = the executor
/// reported a fault (no output to validate), inner `Ok` = a validated
/// [`RunOutcome`]. A [`ManifestRecorder`] passed in `rec` rides the run via
/// the apps' `try_galois_recorded` paths, capturing (or replay-verifying)
/// the canonical hash chain.
pub fn run_cell(
    app: App,
    exec: &Executor,
    input: &InputConfig,
    rec: Option<&mut ManifestRecorder>,
) -> Result<(Result<RunOutcome, ExecError>, CacheOutcome), String> {
    let (resident, cached) = resident::load_input(app, input);
    let result = resident::run_resident(app, exec, &resident, rec)?;
    Ok((result.map(|run| run.outcome), cached))
}

/// What one panic-injection run reduces to for cross-run comparison.
///
/// Under [`Variant::Deterministic`] the whole value — including the
/// captured panic message inside [`ExecError::OperatorPanic`] — must be
/// identical at every thread count for a fixed panic seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The drawn fault set missed every executed task; the run completed
    /// and validated, reduced to its deterministic fingerprint.
    Clean(u64),
    /// The run faulted with this structured, canonical-in-det-mode error.
    Faulted(ExecError),
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOutcome::Clean(fp) => write!(f, "clean (fingerprint {fp:016x})"),
            FaultOutcome::Faulted(e) => write!(f, "fault [exit {}]: {e}", e.exit_code()),
        }
    }
}

/// Runs one `(app, variant, threads, panic seed)` cell with panic
/// injection armed ([`Executor::chaos_panics`]) and reduces it to a
/// [`FaultOutcome`]. `Err` means a *clean* run failed validation — a
/// faulted run skips validation, since quarantined tasks legitimately
/// leave the output partial.
pub fn run_app_panic(
    app: App,
    variant: Variant,
    threads: usize,
    panic_seed: u64,
    input: &InputConfig,
) -> Result<FaultOutcome, String> {
    let exec = executor_for(app, variant, threads, None).chaos_panics(panic_seed);
    let (result, _cached) = run_cell(app, &exec, input, None)?;
    Ok(match result {
        Ok(out) => FaultOutcome::Clean(out.fingerprint),
        Err(e) => FaultOutcome::Faulted(e),
    })
}

pub(crate) fn hash_mesh(mesh: &galois_mesh::Mesh) -> u64 {
    let mut h = Fnv64::new();
    for tri in galois_mesh::check::canonical_triangles(mesh) {
        for (x, y) in tri {
            h.write_i64(x);
            h.write_i64(y);
        }
    }
    h.finish()
}

/// Why a record, replay or lockstep run failed.
#[derive(Debug)]
pub enum ReplayError {
    /// The manifest file was rejected (corrupt, wrong version, unreadable).
    Manifest(ManifestError),
    /// The manifest does not describe a run this harness can re-execute
    /// (unknown app, non-deterministic schedule, foreign input key).
    Mismatch(String),
    /// The re-executed run's output failed its app-level validator.
    Validation(String),
    /// The re-executed run faulted.
    Exec(ExecError),
    /// The replay ran, validated — and hashed differently. The structured
    /// payload names the exact first divergent round.
    Divergence(ReplayDivergence),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Manifest(e) => write!(f, "{e}"),
            ReplayError::Mismatch(msg) => write!(f, "manifest mismatch: {msg}"),
            ReplayError::Validation(msg) => write!(f, "replayed output failed validation: {msg}"),
            ReplayError::Exec(e) => write!(f, "replayed run faulted: {e}"),
            ReplayError::Divergence(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<ManifestError> for ReplayError {
    fn from(e: ManifestError) -> Self {
        ReplayError::Manifest(e)
    }
}

/// Resolves a manifest back to the `(app, input)` pair it was recorded
/// from, rejecting manifests this harness cannot faithfully re-execute.
fn manifest_app_input(manifest: &RunManifest) -> Result<(App, InputConfig), ReplayError> {
    let app = App::from_name(&manifest.app)
        .ok_or_else(|| ReplayError::Mismatch(format!("unknown app `{}`", manifest.app)))?;
    if manifest.exec.schedule != ScheduleKind::Deterministic {
        return Err(ReplayError::Mismatch(format!(
            "only deterministic runs replay bit-identically (manifest recorded a {:?} run)",
            manifest.exec.schedule
        )));
    }
    let input = InputConfig {
        seed: manifest.input_seed,
        build_threads: 1,
        cache_dir: None,
        size: (manifest.size != 0).then_some(manifest.size as usize),
    };
    let key = input_key(app, &input);
    if key != manifest.input_key {
        return Err(ReplayError::Mismatch(format!(
            "input key `{}` is not this harness's `{key}` for {app} \
             (size {}, seed {}) — different input family or generator version",
            manifest.input_key, manifest.size, manifest.input_seed
        )));
    }
    Ok((app, input))
}

/// Public face of [`manifest_app_input`]: resolves a manifest back to the
/// `(app, input)` pair it identifies, for callers (like the distributed
/// lockstep replica) that re-execute the run themselves instead of going
/// through [`replay_run`].
pub fn manifest_target(manifest: &RunManifest) -> Result<(App, InputConfig), ReplayError> {
    manifest_app_input(manifest)
}

/// Records one deterministic run of `app` into a [`RunManifest`]: input
/// identity, executor configuration, the canonical per-round hash chain,
/// and the final fingerprint. The manifest replays bit-identically at any
/// thread count via [`replay_run`].
pub fn record_run(
    app: App,
    threads: usize,
    chaos_seed: Option<u64>,
    input: &InputConfig,
) -> Result<RunManifest, ReplayError> {
    let exec = executor_for(app, Variant::Deterministic, threads, chaos_seed);
    let mut rec = ManifestRecorder::new();
    let (result, _cached) =
        run_cell(app, &exec, input, Some(&mut rec)).map_err(ReplayError::Validation)?;
    let out = result.map_err(ReplayError::Exec)?;
    let manifest = rec.finish(
        app.name(),
        &input_key(app, input),
        input.seed,
        input.size.map(|s| s as u64).unwrap_or(0),
        out.output_hash,
    );
    // One hashing authority: the recorder's chained fingerprint and the
    // harness's round-log fingerprint are the same bytes through the same
    // FNV, so they cannot disagree.
    debug_assert_eq!(manifest.final_fingerprint, out.fingerprint);
    Ok(manifest)
}

/// Re-executes a recorded run at `threads` workers and verifies it against
/// the manifest: every per-round prefix hash, the round count, and the
/// final fingerprint must match bit for bit. The first divergent round
/// comes back as [`ReplayError::Divergence`].
///
/// `cache_dir` optionally serves the input from (or stores it into) the
/// on-disk input cache; the manifest's input key is the cache key, so a
/// replay and its recording share cache entries.
pub fn replay_run(
    manifest: &RunManifest,
    threads: usize,
    cache_dir: Option<PathBuf>,
) -> Result<RunOutcome, ReplayError> {
    let (app, mut input) = manifest_app_input(manifest)?;
    input.cache_dir = cache_dir;
    // record_rounds keeps the harness's own fingerprint path alive so the
    // returned outcome is directly comparable with fresh runs.
    let exec = manifest.exec.to_executor(threads).record_rounds(true);
    let mut rec = ManifestRecorder::replaying(manifest);
    let (result, _cached) =
        run_cell(app, &exec, &input, Some(&mut rec)).map_err(ReplayError::Validation)?;
    let out = result.map_err(ReplayError::Exec)?;
    rec.verify(manifest, out.output_hash)
        .map_err(ReplayError::Divergence)?;
    Ok(out)
}

/// One replica of a lockstep replication run.
#[derive(Debug, Clone, Copy)]
pub struct LockstepReplica {
    /// Worker threads this replica uses.
    pub threads: usize,
    /// Chaos seed override (`None` keeps the manifest's chaos config).
    pub chaos_seed: Option<u64>,
}

/// The first round where two lockstep replicas hashed differently.
///
/// A hash of `0` means that replica had no such round (the replicas
/// disagreed on round *count* after agreeing on every common round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockstepDivergence {
    /// First divergent round (chain sequence index).
    pub round: u64,
    /// Lower-index replica of the diverging pair.
    pub replica_a: usize,
    /// Higher-index replica of the diverging pair.
    pub replica_b: usize,
    /// Replica `a`'s prefix hash at that round.
    pub hash_a: u64,
    /// Replica `b`'s prefix hash at that round.
    pub hash_b: u64,
}

impl fmt::Display for LockstepDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replicas {} and {} diverged at round {}: {:016x} vs {:016x}",
            self.replica_a, self.replica_b, self.round, self.hash_a, self.hash_b
        )
    }
}

/// What a lockstep replication run observed.
#[derive(Debug)]
pub struct LockstepReport {
    /// Replica count.
    pub replicas: usize,
    /// Rounds the longest replica executed.
    pub rounds: u64,
    /// First round where two replicas disagreed (`None` = full agreement).
    pub divergence: Option<LockstepDivergence>,
    /// Per-replica verdict against the *manifest's* chain (`None` = that
    /// replica reproduced the recording exactly).
    pub manifest_divergences: Vec<Option<ReplayDivergence>>,
}

impl LockstepReport {
    /// Whether every replica agreed with every other *and* with the
    /// recorded manifest.
    pub fn all_agree(&self) -> bool {
        self.divergence.is_none() && self.manifest_divergences.iter().all(Option::is_none)
    }
}

/// Shared round-hash board the replicas cross-check through: each replica's
/// recorder hook publishes `(round, hash)` as its barrier completes, and
/// the publisher compares against every stream that already reached that
/// round — the Aviram & Ford fault-detection pattern, at barrier latency.
struct LockstepMonitor {
    streams: Vec<Vec<u64>>,
    first_mismatch: Option<(u64, usize, usize)>,
}

impl LockstepMonitor {
    fn new(replicas: usize) -> Self {
        LockstepMonitor {
            streams: vec![Vec::new(); replicas],
            first_mismatch: None,
        }
    }

    fn push(&mut self, replica: usize, seq: u64, hash: u64) {
        debug_assert_eq!(self.streams[replica].len() as u64, seq);
        self.streams[replica].push(hash);
        for (other, stream) in self.streams.iter().enumerate() {
            if other == replica {
                continue;
            }
            if let Some(&h) = stream.get(seq as usize) {
                if h != hash && self.first_mismatch.is_none_or(|(r, _, _)| seq < r) {
                    self.first_mismatch = Some((seq, other.min(replica), other.max(replica)));
                }
            }
        }
    }
}

/// Runs N in-process replicas of a recorded run — each with its own thread
/// count and chaos seed over the *same* manifest — cross-checking round
/// hashes at each barrier and reporting the first divergent round.
///
/// Under a healthy deterministic scheduler every replica produces the
/// identical chain regardless of `threads`/`chaos_seed`, so the report is
/// all-agreement; a schedule bug (or a perturbation planted through the
/// [`Mutation`] seam) surfaces as the exact round where the replicas'
/// schedules parted. Replica configuration errors (validation failures,
/// executor faults) are `Err`; divergence is a *successful observation*,
/// reported in the `Ok` value.
pub fn run_lockstep(
    manifest: &RunManifest,
    replicas: &[LockstepReplica],
    mutation: Mutation,
) -> Result<LockstepReport, ReplayError> {
    assert!(replicas.len() >= 2, "lockstep needs at least two replicas");
    let (app, input) = manifest_app_input(manifest)?;
    // The mutation seam is applied here, on the caller's thread, so the
    // seam (a plain `&dyn Fn`) never has to cross threads.
    let execs: Vec<Executor> = replicas
        .iter()
        .map(|r| {
            let mut exec = manifest.exec.to_executor(r.threads);
            if let Some(seed) = r.chaos_seed {
                exec = exec.chaos(seed);
            }
            mutation(app, Variant::Deterministic, r.threads, r.chaos_seed, exec)
        })
        .collect();

    let monitor = Arc::new(Mutex::new(LockstepMonitor::new(replicas.len())));
    let results: Vec<Result<ManifestRecorder, ReplayError>> = std::thread::scope(|s| {
        let handles: Vec<_> = execs
            .into_iter()
            .enumerate()
            .map(|(i, exec)| {
                let board = Arc::clone(&monitor);
                let input = input.clone();
                let mut rec = ManifestRecorder::replaying(manifest)
                    .on_round_hash(move |seq, hash| board.lock().unwrap().push(i, seq, hash));
                s.spawn(move || {
                    let (result, _cached) = run_cell(app, &exec, &input, Some(&mut rec))
                        .map_err(ReplayError::Validation)?;
                    result.map_err(ReplayError::Exec)?;
                    Ok(rec)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("lockstep replica panicked"))
            .collect()
    });

    let mut recorders = Vec::with_capacity(results.len());
    for r in results {
        recorders.push(r?);
    }
    let chains: Vec<&[u64]> = recorders.iter().map(|r| r.round_hashes()).collect();
    let rounds = chains.iter().map(|c| c.len()).max().unwrap_or(0);

    // Authoritative post-hoc scan (deterministic order: smallest round,
    // then smallest replica pair). The monitor's live cross-check must have
    // found the same first round — it saw every hash the scan sees.
    let mut divergence = None;
    'scan: for seq in 0..rounds {
        for a in 0..chains.len() {
            for b in (a + 1)..chains.len() {
                let ha = chains[a].get(seq).copied().unwrap_or(0);
                let hb = chains[b].get(seq).copied().unwrap_or(0);
                if ha != hb {
                    divergence = Some(LockstepDivergence {
                        round: seq as u64,
                        replica_a: a,
                        replica_b: b,
                        hash_a: ha,
                        hash_b: hb,
                    });
                    break 'scan;
                }
            }
        }
    }
    // The live cross-check sees every hash the scan sees, so a live
    // mismatch implies a (no later) post-hoc one; the converse need not
    // hold when replicas disagree only on round *count*.
    if let Some((live_round, _, _)) = monitor.lock().unwrap().first_mismatch {
        debug_assert!(
            divergence.as_ref().is_some_and(|d| d.round <= live_round),
            "live cross-check found a mismatch the post-hoc scan missed"
        );
    }

    let manifest_divergences = chains
        .iter()
        .map(|c| manifest.verify_chain(c).err())
        .collect();
    Ok(LockstepReport {
        replicas: replicas.len(),
        rounds: rounds as u64,
        divergence,
        manifest_divergences,
    })
}

/// One differential sweep's shape.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    pub apps: Vec<App>,
    pub threads: Vec<usize>,
    pub chaos_seeds: Vec<u64>,
    pub input_seed: u64,
    /// Threads the input *builders* use (never affects outputs).
    pub build_threads: usize,
    /// On-disk input cache directory; `None` regenerates every input.
    pub cache_dir: Option<PathBuf>,
    /// Also run the speculative executor over the matrix and validate each
    /// run against the serial oracle. Off for pure det-invariance sweeps.
    pub check_spec: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            apps: App::ALL.to_vec(),
            threads: vec![1, 2, 4, 8],
            chaos_seeds: (1..=8).collect(),
            input_seed: 42,
            build_threads: 1,
            cache_dir: None,
            check_spec: true,
        }
    }
}

impl DiffConfig {
    /// The [`InputConfig`] every cell of this sweep uses.
    pub fn input(&self) -> InputConfig {
        InputConfig {
            seed: self.input_seed,
            build_threads: self.build_threads,
            cache_dir: self.cache_dir.clone(),
            size: None,
        }
    }

    /// The one-line reproduction command for a (sub)matrix of this sweep.
    pub fn repro_line(&self, app: App, threads: &[usize], seeds: &[u64]) -> String {
        let join_usize = |v: &[usize]| {
            v.iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let join_u64 = |v: &[u64]| {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut line = format!(
            "cargo run --release -p galois-harness --bin differential -- \
             --app {app} --threads {} --chaos-seeds {} --input-seed {}",
            join_usize(threads),
            join_u64(seeds),
            self.input_seed,
        );
        if self.build_threads != 1 {
            line.push_str(&format!(" --build-threads {}", self.build_threads));
        }
        line
    }

    /// [`repro_line`](Self::repro_line) for the panic-injection matrix:
    /// the seed list rides on `--panic-chaos` instead of `--chaos-seeds`.
    pub fn repro_line_panic(&self, app: App, threads: &[usize], seeds: &[u64]) -> String {
        let threads = threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let seeds = seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "cargo run --release -p galois-harness --bin differential -- \
             --app {app} --threads {threads} --panic-chaos {seeds} --input-seed {}",
            self.input_seed,
        )
    }
}

/// A differential failure, shrunk to a minimal reproduction.
#[derive(Debug, Clone)]
pub struct DiffFailure {
    pub app: App,
    /// Human-readable account of what diverged or failed validation.
    pub detail: String,
    /// One-line `cargo run` command reproducing the failure.
    pub repro: String,
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}\n  repro: {}", self.app, self.detail, self.repro)
    }
}

/// A successful sweep's summary.
#[derive(Debug, Clone)]
pub struct DiffSummary {
    /// Total individual runs executed.
    pub runs: usize,
    /// The (app, deterministic fingerprint) pairs the sweep converged on.
    pub det_fingerprints: Vec<(App, u64)>,
    /// Input loads served from the on-disk cache.
    pub cache_hits: usize,
    /// Input loads that generated (and stored) a fresh input.
    pub cache_misses: usize,
}

fn diverges(a: &RunOutcome, b: &RunOutcome) -> Option<String> {
    if a.fingerprint == b.fingerprint {
        return None;
    }
    let mut parts = Vec::new();
    if a.output_hash != b.output_hash {
        parts.push(format!(
            "output {:016x} vs {:016x}",
            a.output_hash, b.output_hash
        ));
    }
    if a.log_hash != b.log_hash {
        parts.push(format!(
            "round log {:016x} vs {:016x}",
            a.log_hash, b.log_hash
        ));
    }
    if a.rounds != b.rounds {
        parts.push(format!("rounds {} vs {}", a.rounds, b.rounds));
    }
    if a.committed != b.committed {
        parts.push(format!("committed {} vs {}", a.committed, b.committed));
    }
    if a.aborted != b.aborted {
        parts.push(format!("aborted {} vs {}", a.aborted, b.aborted));
    }
    Some(parts.join(", "))
}

/// Shrinks a deterministic divergence between the reference cell
/// `(t0, s0)` and a failing cell `(tb, sb)` to a minimal axis: a single
/// chaos seed if thread count alone reproduces it, a single thread count
/// if the seed alone does, both axes otherwise.
fn minimize(
    app: App,
    cfg: &DiffConfig,
    mutation: Mutation,
    reference: &RunOutcome,
    (t0, s0): (usize, u64),
    (tb, sb): (usize, u64),
) -> (Vec<usize>, Vec<u64>) {
    let input = cfg.input();
    if sb != s0 && tb != t0 {
        // Both axes moved; probe each alone (two cheap extra runs).
        if let Ok((out, _)) = run_app(app, Variant::Deterministic, t0, Some(sb), &input, mutation) {
            if diverges(reference, &out).is_some() {
                return (vec![t0], vec![s0, sb]);
            }
        }
        if let Ok((out, _)) = run_app(app, Variant::Deterministic, tb, Some(s0), &input, mutation) {
            if diverges(reference, &out).is_some() {
                return (vec![t0, tb], vec![s0]);
            }
        }
        (vec![t0, tb], vec![s0, sb])
    } else if tb != t0 {
        (vec![t0, tb], vec![s0])
    } else {
        (vec![t0], vec![s0, sb])
    }
}

/// Runs the differential sweep: serial oracle, deterministic invariance
/// matrix, and (optionally) speculative validation, for every configured
/// app. The first failure is minimized and returned.
pub fn run_differential(cfg: &DiffConfig, mutation: Mutation) -> Result<DiffSummary, DiffFailure> {
    assert!(!cfg.threads.is_empty() && !cfg.chaos_seeds.is_empty());
    let input = cfg.input();
    let mut runs = 0usize;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut tally = |cached: CacheOutcome| match cached {
        CacheOutcome::Hit => cache_hits += 1,
        CacheOutcome::MissStored => cache_misses += 1,
        CacheOutcome::Disabled => {}
    };
    let mut det_fingerprints = Vec::new();
    for &app in &cfg.apps {
        // Serial oracle: one thread, no chaos, no mutation — ever.
        let (oracle, cached) = run_app(app, Variant::Serial, 1, None, &input, &unperturbed)
            .map_err(|e| DiffFailure {
                app,
                detail: format!("serial oracle failed validation: {e}"),
                repro: cfg.repro_line(app, &cfg.threads[..1], &cfg.chaos_seeds[..1]),
            })?;
        tally(cached);
        runs += 1;

        // Deterministic invariance matrix.
        let mut reference: Option<((usize, u64), RunOutcome)> = None;
        for &t in &cfg.threads {
            for &s in &cfg.chaos_seeds {
                let (out, cached) =
                    run_app(app, Variant::Deterministic, t, Some(s), &input, mutation).map_err(
                        |e| DiffFailure {
                            app,
                            detail: format!(
                                "deterministic run (threads={t}, seed={s}) failed validation: {e}"
                            ),
                            repro: cfg.repro_line(app, &[t], &[s]),
                        },
                    )?;
                tally(cached);
                runs += 1;
                match &reference {
                    None => reference = Some(((t, s), out)),
                    Some((cell0, r)) => {
                        if let Some(diff) = diverges(r, &out) {
                            let (ts, ss) = minimize(app, cfg, mutation, r, *cell0, (t, s));
                            return Err(DiffFailure {
                                app,
                                detail: format!(
                                    "deterministic fingerprint diverged between \
                                     (threads={}, seed={}) and (threads={t}, seed={s}): {diff}",
                                    cell0.0, cell0.1,
                                ),
                                repro: cfg.repro_line(app, &ts, &ss),
                            });
                        }
                    }
                }
            }
        }
        let (_, det_ref) = reference.expect("non-empty matrix");

        // Where the output value is mathematically unique, the deterministic
        // answer must equal the oracle's, not merely validate.
        if matches!(app, App::Bfs | App::Pfp) && det_ref.output_hash != oracle.output_hash {
            return Err(DiffFailure {
                app,
                detail: format!(
                    "deterministic output {:016x} != serial oracle {:016x}",
                    det_ref.output_hash, oracle.output_hash
                ),
                repro: cfg.repro_line(app, &cfg.threads[..1], &cfg.chaos_seeds[..1]),
            });
        }

        // Speculative runs: per-run validation plus oracle equality where
        // the output value is unique. No cross-run invariance is owed.
        if cfg.check_spec {
            for &t in &cfg.threads {
                for &s in &cfg.chaos_seeds {
                    let (out, cached) =
                        run_app(app, Variant::Speculative, t, Some(s), &input, mutation).map_err(
                            |e| DiffFailure {
                                app,
                                detail: format!(
                            "speculative run (threads={t}, seed={s}) failed validation: {e}"
                        ),
                                repro: cfg.repro_line(app, &[t], &[s]),
                            },
                        )?;
                    tally(cached);
                    runs += 1;
                    if matches!(app, App::Bfs | App::Pfp) && out.output_hash != oracle.output_hash {
                        return Err(DiffFailure {
                            app,
                            detail: format!(
                                "speculative output (threads={t}, seed={s}) {:016x} \
                                 != serial oracle {:016x}",
                                out.output_hash, oracle.output_hash
                            ),
                            repro: cfg.repro_line(app, &[t], &[s]),
                        });
                    }
                }
            }
        }
        det_fingerprints.push((app, det_ref.fingerprint));
    }
    Ok(DiffSummary {
        runs,
        det_fingerprints,
        cache_hits,
        cache_misses,
    })
}

/// A successful panic-injection sweep's summary: one fault fingerprint per
/// `(app, panic seed)`, each proven invariant over every thread count.
#[derive(Debug, Clone)]
pub struct PanicDiffSummary {
    /// Total individual runs executed (deterministic + speculative).
    pub runs: usize,
    /// `(app, panic seed, the invariant deterministic outcome)`.
    pub fault_fingerprints: Vec<(App, u64, FaultOutcome)>,
}

/// Runs the panic-injection differential sweep: for every configured app
/// and every seed in `cfg.chaos_seeds` (reinterpreted as *panic* seeds),
/// the deterministic executor's [`FaultOutcome`] must be identical at
/// every thread count — the report of a faulted run is as portable as the
/// output of a clean one. Speculative runs are exercised for termination
/// and (when clean) validity only; their fault reports are non-canonical
/// by design and owe no cross-run invariance.
pub fn run_panic_differential(cfg: &DiffConfig) -> Result<PanicDiffSummary, DiffFailure> {
    assert!(!cfg.threads.is_empty() && !cfg.chaos_seeds.is_empty());
    let input = cfg.input();
    let mut runs = 0usize;
    let mut fault_fingerprints = Vec::new();
    for &app in &cfg.apps {
        for &seed in &cfg.chaos_seeds {
            let mut reference: Option<(usize, FaultOutcome)> = None;
            for &t in &cfg.threads {
                let out =
                    run_app_panic(app, Variant::Deterministic, t, seed, &input).map_err(|e| {
                        DiffFailure {
                            app,
                            detail: format!(
                                "deterministic panic run (threads={t}, panic seed={seed}) \
                             failed validation: {e}"
                            ),
                            repro: cfg.repro_line_panic(app, &[t], &[seed]),
                        }
                    })?;
                runs += 1;
                match &reference {
                    None => reference = Some((t, out)),
                    Some((t0, r)) => {
                        if *r != out {
                            return Err(DiffFailure {
                                app,
                                detail: format!(
                                    "fault report diverged between threads={t0} and \
                                     threads={t} at panic seed {seed}: {r} vs {out}"
                                ),
                                repro: cfg.repro_line_panic(app, &[*t0, t], &[seed]),
                            });
                        }
                    }
                }
            }
            if cfg.check_spec {
                for &t in &cfg.threads {
                    run_app_panic(app, Variant::Speculative, t, seed, &input).map_err(|e| {
                        DiffFailure {
                            app,
                            detail: format!(
                                "speculative panic run (threads={t}, panic seed={seed}) \
                                 failed validation: {e}"
                            ),
                            repro: cfg.repro_line_panic(app, &[t], &[seed]),
                        }
                    })?;
                    runs += 1;
                }
            }
            let (_, out) = reference.expect("non-empty thread list");
            fault_fingerprints.push((app, seed, out));
        }
    }
    Ok(PanicDiffSummary {
        runs,
        fault_fingerprints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = Fnv64::new();
        h.write_bytes(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn app_names_round_trip() {
        for app in App::ALL {
            assert_eq!(App::from_name(app.name()), Some(app));
        }
        assert_eq!(App::from_name("nope"), None);
    }

    #[test]
    fn repro_line_is_a_single_cargo_command() {
        let cfg = DiffConfig::default();
        let line = cfg.repro_line(App::Mis, &[1, 4], &[3]);
        assert!(line.starts_with("cargo run --release -p galois-harness"));
        assert!(line.contains("--app mis"));
        assert!(line.contains("--threads 1,4"));
        assert!(line.contains("--chaos-seeds 3"));
        assert!(line.contains("--input-seed 42"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn outcome_matches_legacy_private_fingerprint() {
        // The harness used to hash round logs with its own private FNV:
        // per record (seq, window, attempted, committed, failed) as u64 LE
        // into one running hash, then fold (output, log hash, rounds,
        // committed, aborted). The runtime-owned `RoundChain` +
        // `run_fingerprint` must reproduce that byte stream exactly on the
        // seed corpus, or every historical fingerprint shifts.
        use galois_core::RoundRecord;
        let corpus: Vec<Vec<RoundRecord>> = (0u64..4)
            .map(|seed| {
                (0..5 + seed)
                    .map(|i| RoundRecord {
                        round: i,
                        window: 16 << (i % 3),
                        attempted: 10 + seed + i,
                        committed: 8 + i,
                        failed: 2 + seed,
                        ..Default::default()
                    })
                    .collect()
            })
            .collect();
        for (seed, records) in corpus.iter().enumerate() {
            // Legacy implementation, inlined verbatim.
            let mut legacy = Fnv64::new();
            let mut rounds = 0u64;
            for rec in records {
                legacy.write_u64(rounds);
                legacy.write_u64(rec.window);
                legacy.write_u64(rec.attempted);
                legacy.write_u64(rec.committed);
                legacy.write_u64(rec.failed);
                rounds += 1;
            }
            let mut legacy_fp = Fnv64::new();
            legacy_fp.write_u64(7);
            legacy_fp.write_u64(legacy.finish());
            legacy_fp.write_u64(rounds);
            legacy_fp.write_u64(100);
            legacy_fp.write_u64(3);

            let mut log = RoundLog::new();
            for rec in records {
                use galois_core::Probe;
                log.on_round(rec.clone());
            }
            let stats = ExecStats {
                committed: 100,
                aborted: 3,
                ..Default::default()
            };
            let out = outcome(7, vec![log], &stats);
            assert_eq!(out.log_hash, legacy.finish(), "log hash, corpus {seed}");
            assert_eq!(
                out.fingerprint,
                legacy_fp.finish(),
                "fingerprint, corpus {seed}"
            );
        }
    }

    #[test]
    fn recorded_manifest_agrees_with_run_app_fingerprint() {
        // The recorder path (ManifestRecorder through LoopSpec::record) and
        // the round-log path (record_rounds + outcome) hash through the one
        // runtime implementation; their fingerprints must coincide on the
        // seed corpus.
        for seed in [42u64, 7] {
            let input = InputConfig::from_seed(seed);
            let manifest = record_run(App::Mis, 2, None, &input).unwrap();
            let (out, _) = run_app(
                App::Mis,
                Variant::Deterministic,
                2,
                None,
                &input,
                &unperturbed,
            )
            .unwrap();
            assert_eq!(manifest.final_fingerprint, out.fingerprint, "seed {seed}");
            assert_eq!(manifest.round_hashes.len() as u64, out.rounds);
        }
    }

    #[test]
    fn input_keys_match_historical_cache_keys() {
        // The default-size keys are the exact strings pre-manifest harness
        // versions used as cache filenames; changing them silently orphans
        // every cached input.
        let input = InputConfig::from_seed(42);
        assert_eq!(input_key(App::Bfs, &input), "uniform-n2000-d5-s42");
        assert_eq!(input_key(App::Mis, &input), "uniform-und-n1500-d4-s42");
        assert_eq!(input_key(App::Mm, &input), "uniform-und-n1500-d4-s42");
        assert_eq!(input_key(App::Pfp, &input), "flowrand-n96-d4-c100-s42");
        assert_eq!(input_key(App::Dt, &input), "points-n300-s42");
        assert_eq!(input_key(App::Dmr, &input), "mesh-n120-s42");
    }

    #[test]
    fn single_cell_runs_validate() {
        // One cheap cell per variant exercises the whole run_app plumbing.
        for variant in [
            Variant::Serial,
            Variant::Speculative,
            Variant::Deterministic,
        ] {
            let threads = if variant == Variant::Serial { 1 } else { 2 };
            let chaos = (variant != Variant::Serial).then_some(7u64);
            let input = InputConfig::from_seed(42);
            let (out, cached) = run_app(App::Mis, variant, threads, chaos, &input, &unperturbed)
                .unwrap_or_else(|e| panic!("{variant}: {e}"));
            assert!(out.committed > 0, "{variant} committed nothing");
            assert_eq!(cached, CacheOutcome::Disabled);
        }
    }
}
