//! Property test for deterministic quarantine: the fault report of a
//! panic-injected deterministic run is a pure function of `(app, input,
//! panic seed)` — never of the thread count.
//!
//! For every drawn panic seed, bfs and mis run under the deterministic
//! executor at the shared sweep thread counts (`sweep::THREAD_COUNTS`,
//! including oversubscribed ones); the reduced [`FaultOutcome`] —
//! which for a faulted run carries the structured
//! `ExecError::OperatorPanic { task_id, message, round }` including the
//! captured panic *message string* — must be byte-identical to the
//! one-thread reference at every count. The speculative executor owes no
//! canonical report, but it must still quarantine-and-drain to
//! termination: a deadlock here would hang the test and be killed by the
//! suite's (and CI's) global timeout.

use galois_harness::sweep::THREAD_COUNTS as THREADS;
use galois_harness::{run_app_panic, App, FaultOutcome, InputConfig, Variant};
use proptest::prelude::*;

/// Runs one `(app, seed)` cell at every thread count and checks the
/// deterministic reports agree; returns the reference outcome.
fn det_invariant(app: App, seed: u64, input: &InputConfig) -> FaultOutcome {
    let reference = run_app_panic(app, Variant::Deterministic, THREADS[0], seed, input)
        .unwrap_or_else(|e| panic!("{app} seed {seed} threads 1: {e}"));
    for &t in &THREADS[1..] {
        let out = run_app_panic(app, Variant::Deterministic, t, seed, input)
            .unwrap_or_else(|e| panic!("{app} seed {seed} threads {t}: {e}"));
        assert_eq!(
            out, reference,
            "{app}: fault report changed between 1 and {t} threads at panic seed {seed}"
        );
    }
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn deterministic_fault_reports_are_thread_invariant(seed in 1u64..10_000) {
        let input = InputConfig::from_seed(42);
        for app in [App::Bfs, App::Mis] {
            let reference = det_invariant(app, seed, &input);
            if let FaultOutcome::Faulted(err) = &reference {
                // The canonical report names the injected fault, not some
                // downstream symptom: lowest-id faulted task of the first
                // faulting round, with the injection's own message.
                let msg = err.to_string();
                prop_assert!(
                    msg.contains(galois_core::INJECTED_PANIC_PREFIX),
                    "{app} seed {seed}: unexpected fault {msg}"
                );
            }
        }
    }

    #[test]
    fn speculative_panic_runs_always_terminate(seed in 1u64..10_000) {
        let input = InputConfig::from_seed(42);
        for app in [App::Bfs, App::Mis] {
            for threads in [2usize, 8] {
                // Termination (this call returning at all) is the property;
                // a clean run additionally validated inside run_app_panic.
                let out = run_app_panic(app, Variant::Speculative, threads, seed, &input)
                    .unwrap_or_else(|e| panic!("{app} seed {seed} threads {threads}: {e}"));
                if let FaultOutcome::Faulted(err) = out {
                    prop_assert!(
                        err.to_string().contains(galois_core::INJECTED_PANIC_PREFIX),
                        "{app} seed {seed}: unexpected fault {err}"
                    );
                }
            }
        }
    }
}
