//! The input pipeline must be invisible to the harness.
//!
//! `run_app` fingerprints cover the output, the canonical round log, and
//! the schedule counters — so if building an input with the parallel
//! generators (any thread count) or loading it back from the on-disk
//! cache changed *anything* about the graph, these fingerprints would
//! move. They must not: input construction is part of the determinism
//! contract, not an implementation detail outside it.

use galois_harness::{run_app, unperturbed, App, InputCacheOutcome, InputConfig, Variant};
use std::path::PathBuf;

fn cell(app: App, input: &InputConfig) -> (u64, InputCacheOutcome) {
    let (out, cached) = run_app(app, Variant::Deterministic, 2, Some(1), input, &unperturbed)
        .unwrap_or_else(|e| panic!("{app}: {e}"));
    (out.fingerprint, cached)
}

#[test]
fn parallel_built_inputs_leave_fingerprints_unchanged() {
    for app in App::ALL {
        let (reference, _) = cell(app, &InputConfig::from_seed(42));
        for build_threads in [2usize, 5, 8, 16] {
            let cfg = InputConfig {
                seed: 42,
                build_threads,
                cache_dir: None,
                size: None,
            };
            let (fp, cached) = cell(app, &cfg);
            assert_eq!(cached, InputCacheOutcome::Disabled);
            assert_eq!(
                fp, reference,
                "{app}: fingerprint moved when input was built with {build_threads} threads"
            );
        }
    }
}

#[test]
fn cached_inputs_leave_fingerprints_unchanged() {
    let dir = std::env::temp_dir().join(format!("galois-harness-inputs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for app in App::ALL {
        let (reference, _) = cell(app, &InputConfig::from_seed(42));
        let cfg = InputConfig {
            seed: 42,
            build_threads: 4,
            cache_dir: Some(PathBuf::from(&dir)),
            size: None,
        };
        let (first_fp, first) = cell(app, &cfg);
        let (second_fp, second) = cell(app, &cfg);
        if matches!(app, App::Dt | App::Dmr) {
            // Point/mesh inputs are not graph-cacheable.
            assert_eq!(first, InputCacheOutcome::Disabled, "{app}");
            assert_eq!(second, InputCacheOutcome::Disabled, "{app}");
        } else if app == App::Mm {
            // mm shares mis's input, which the mis iteration already stored.
            assert_eq!(first, InputCacheOutcome::Hit, "{app}");
            assert_eq!(second, InputCacheOutcome::Hit, "{app}");
        } else {
            assert_eq!(first, InputCacheOutcome::MissStored, "{app}");
            assert_eq!(second, InputCacheOutcome::Hit, "{app}");
        }
        assert_eq!(first_fp, reference, "{app}: cache store changed the input");
        assert_eq!(second_fp, reference, "{app}: cache load changed the input");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mis_and_mm_share_one_cache_entry() {
    // Both draw the same undirected graph; the cache key is the generator
    // call, so the second app must hit what the first stored.
    let dir = std::env::temp_dir().join(format!("galois-harness-sharing-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = InputConfig {
        seed: 77,
        build_threads: 2,
        cache_dir: Some(dir.clone()),
        size: None,
    };
    let (_, mis) = cell(App::Mis, &cfg);
    let (_, mm) = cell(App::Mm, &cfg);
    assert_eq!(mis, InputCacheOutcome::MissStored);
    assert_eq!(mm, InputCacheOutcome::Hit, "mm regenerated mis's graph");
    let _ = std::fs::remove_dir_all(&dir);
}
