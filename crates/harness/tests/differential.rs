//! Acceptance sweep for the differential harness.
//!
//! The issue's bar: deterministic output and the canonical round log are
//! byte-identical across threads {1, 2, 4, 8} × at least 8 chaos seeds for
//! every harness app, while speculative runs merely validate against the
//! serial oracle.

use galois_harness::{run_differential, unperturbed, App, DiffConfig};

#[test]
fn det_invariance_across_threads_and_chaos_seeds() {
    let cfg = DiffConfig {
        apps: App::ALL.to_vec(),
        threads: vec![1, 2, 4, 8],
        chaos_seeds: (1..=8).collect(),
        input_seed: 42,
        check_spec: false,
        ..DiffConfig::default()
    };
    let summary = run_differential(&cfg, &unperturbed).unwrap_or_else(|f| panic!("{f}"));
    // 1 serial oracle + a 4×8 deterministic matrix per app.
    assert_eq!(summary.runs, App::ALL.len() * (1 + 4 * 8));
    assert_eq!(summary.det_fingerprints.len(), App::ALL.len());
}

#[test]
fn spec_validates_against_the_serial_oracle_under_chaos() {
    // Smaller matrix: speculative runs owe validity, not invariance, so a
    // couple of contended configurations per app suffice.
    let cfg = DiffConfig {
        apps: App::ALL.to_vec(),
        threads: vec![2, 4],
        chaos_seeds: vec![1, 2],
        input_seed: 42,
        check_spec: true,
        ..DiffConfig::default()
    };
    let summary = run_differential(&cfg, &unperturbed).unwrap_or_else(|f| panic!("{f}"));
    // Per app: 1 oracle + 4 det + 4 spec.
    assert_eq!(summary.runs, App::ALL.len() * (1 + 4 + 4));
}

#[test]
fn different_input_seeds_give_different_fingerprints() {
    // Sanity check that the fingerprint actually covers the computation:
    // changing the *input* must change it (otherwise the invariance
    // assertions above would pass vacuously).
    let run = |input_seed: u64| {
        let cfg = DiffConfig {
            apps: vec![App::Bfs],
            threads: vec![2],
            chaos_seeds: vec![1],
            input_seed,
            check_spec: false,
            ..DiffConfig::default()
        };
        run_differential(&cfg, &unperturbed)
            .unwrap_or_else(|f| panic!("{f}"))
            .det_fingerprints[0]
            .1
    };
    assert_ne!(run(42), run(43));
}
