//! Mutation test: the harness must *catch* a planted scheduler
//! perturbation, not just pass when nothing is wrong. A detector that
//! cannot detect is worse than none — it launders bugs as green CI.

use galois_core::{DetOptions, Executor, Schedule};
use galois_harness::{run_differential, App, DiffConfig, Variant};

#[test]
fn planted_scheduler_perturbation_is_caught_and_minimized() {
    let cfg = DiffConfig {
        apps: vec![App::Mis],
        threads: vec![1, 2, 4],
        chaos_seeds: vec![1, 2, 3],
        input_seed: 42,
        check_spec: false,
        ..DiffConfig::default()
    };
    // The plant: at 4 threads the deterministic executor silently uses a
    // different locality spread, which changes task-id assignment and
    // therefore the schedule — exactly the class of "works on my thread
    // count" bug the harness exists to catch.
    let planted = |app: App, variant: Variant, threads: usize, _: Option<u64>, exec: Executor| {
        if app == App::Mis && variant == Variant::Deterministic && threads == 4 {
            exec.schedule(Schedule::Deterministic(DetOptions {
                locality_spread: 16,
                ..Default::default()
            }))
        } else {
            exec
        }
    };
    let failure = run_differential(&cfg, &planted).expect_err("planted bug must be caught");
    assert_eq!(failure.app, App::Mis);
    // Minimization: the plant is thread-count-dependent and seed-blind, so
    // the repro must pin a single seed and exactly the two thread counts.
    assert!(
        failure.repro.contains("--app mis"),
        "repro names the app: {}",
        failure.repro
    );
    assert!(
        failure.repro.contains("--threads 1,4"),
        "repro pins the divergent thread pair: {}",
        failure.repro
    );
    assert!(
        failure.repro.contains("--chaos-seeds 1 "),
        "repro shrinks to a single seed: {}",
        failure.repro
    );
    assert!(!failure.repro.contains('\n'), "repro is one line");
}

#[test]
fn seed_dependent_perturbation_shrinks_to_the_seed_axis() {
    let cfg = DiffConfig {
        apps: vec![App::Mis],
        threads: vec![2],
        chaos_seeds: vec![1, 2, 3],
        input_seed: 42,
        check_spec: false,
        ..DiffConfig::default()
    };
    // A perturbation keyed on the chaos seed instead: seed 3 flips the
    // locality spread. The minimized repro must keep one thread count and
    // the two divergent seeds.
    let planted = |_: App, variant: Variant, _: usize, seed: Option<u64>, exec: Executor| {
        if variant == Variant::Deterministic && seed == Some(3) {
            exec.schedule(Schedule::Deterministic(DetOptions {
                locality_spread: 16,
                ..Default::default()
            }))
        } else {
            exec
        }
    };
    let failure = run_differential(&cfg, &planted).expect_err("planted bug must be caught");
    assert!(
        failure.repro.contains("--threads 2 "),
        "repro keeps the single thread count: {}",
        failure.repro
    );
    assert!(
        failure.repro.contains("--chaos-seeds 1,3"),
        "repro pins the divergent seed pair: {}",
        failure.repro
    );
}
