//! Hand-rolled HTTP/1.1 over `std::net::TcpStream`.
//!
//! The tree is registry-free (no tokio/hyper), and the service's needs are
//! narrow: small JSON requests, keep-alive, `Content-Length` bodies. This
//! module implements exactly that — a blocking request reader that
//! cooperates with server shutdown via short read timeouts, and a response
//! writer with explicit framing.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Read timeout installed per connection: short enough that an idle
/// keep-alive connection notices server shutdown promptly.
pub const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// How long a *partial* request (first byte seen, terminator not yet) may
/// dribble before the connection is dropped.
const PARTIAL_DEADLINE: Duration = Duration::from_secs(10);

/// Hard cap on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Raw request target, e.g. `/replay?threads=4`.
    pub target: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The value of query parameter `name`, if present.
    pub fn query(&self, name: &str) -> Option<&str> {
        let query = self.target.split_once('?')?.1;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// The first header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not UTF-8".to_string())
    }
}

/// What one read attempt produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed (or the server is shutting down and the connection
    /// was idle) — hang up without error.
    Closed,
}

/// Reads one request from `stream`, honoring `stop`: an *idle* connection
/// (no bytes of the next request yet) returns [`ReadOutcome::Closed`] as
/// soon as shutdown is flagged, while a request already in flight is read
/// to completion so it can be answered. The caller must have installed
/// [`READ_TIMEOUT`] on the stream.
///
/// `carry` is the connection's pipeline buffer: bytes read past the end of
/// this request's body (the start of a pipelined next request) are left in
/// it, and it is consumed ahead of the socket on the next call. Pass the
/// same (initially empty) buffer for the life of the connection.
pub fn read_request(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    max_body: usize,
    carry: &mut Vec<u8>,
) -> std::io::Result<ReadOutcome> {
    let mut buf: Vec<u8> = std::mem::take(carry);
    let mut chunk = [0u8; 4096];
    let mut first_byte_at: Option<Instant> = if buf.is_empty() {
        None
    } else {
        // Pipelined bytes already in hand count as a request in flight.
        Some(Instant::now())
    };

    // Accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(err_data("request head too large"));
        }
        if let Some(t0) = first_byte_at {
            if t0.elapsed() > PARTIAL_DEADLINE {
                return Err(err_data("request timed out"));
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(ReadOutcome::Closed)
                } else {
                    Err(err_data("connection closed mid-request"))
                };
            }
            Ok(n) => {
                first_byte_at.get_or_insert_with(Instant::now);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if buf.is_empty() && stop.load(Ordering::Relaxed) {
                    return Ok(ReadOutcome::Closed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| err_data("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| err_data("empty request"))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => {
            (m.to_string(), t.to_string(), v.to_string())
        }
        _ => return Err(err_data("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(err_data("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| err_data("malformed header"))?;
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }

    let content_length: usize = match headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v.parse().map_err(|_| err_data("bad content-length"))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(err_data("request body too large"));
    }

    let body_start = head_end + 4;
    let mut body = buf.split_off(body_start.min(buf.len()));
    let deadline = Instant::now() + PARTIAL_DEADLINE;
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(err_data("connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() > deadline {
                    return Err(err_data("request body timed out"));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // Bytes past this body belong to the *next* pipelined request: keep
    // them for the following read_request call instead of dropping them.
    *carry = body.split_off(content_length);

    Ok(ReadOutcome::Request(Request {
        method,
        target,
        headers,
        body,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn err_data(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one `application/json` response with explicit framing.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(String, String)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
