//! Minimal JSON support for the serve front end.
//!
//! The tree is registry-free, so there is no serde; requests are *flat*
//! JSON objects (string / unsigned-integer / boolean values only), parsed
//! by a strict, allocation-light recursive-descent scanner. Responses are
//! built by hand with fixed field order — canonical output needs exact
//! byte control anyway, so a serializer would buy nothing.

/// A value a request object may carry.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    UInt(u64),
    Str(String),
}

impl JsonValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(found) if found == b => {
                self.pos += 1;
                Ok(())
            }
            Some(found) => Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, found as char
            )),
            None => Err(format!("expected `{}`, found end of input", b as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                b if b < 0x20 => return Err("raw control byte in string".into()),
                b => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            0xf0..=0xf7 => 4,
                            _ => return Err("invalid UTF-8 in string".into()),
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        let s = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                if self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| matches!(b, b'.' | b'e' | b'E'))
                {
                    return Err("fractional numbers are not accepted here".into());
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .unwrap()
                    .parse()
                    .map(JsonValue::UInt)
                    .map_err(|_| "integer out of range".into())
            }
            Some(b'{') | Some(b'[') => {
                Err("nested objects/arrays are not accepted in requests".into())
            }
            Some(b'-') => Err("negative numbers are not accepted here".into()),
            Some(b) => Err(format!("unexpected byte `{}`", b as char)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }
}

/// Parses a flat JSON object — `{"key": <string|uint|bool|null>, ...}` —
/// into key/value pairs in document order. Nested containers, floats,
/// duplicate keys, and trailing garbage are all rejected: a request either
/// parses exactly or names the reason it did not.
pub fn parse_flat_object(text: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut sc = Scanner {
        bytes: text.as_bytes(),
        pos: 0,
    };
    sc.expect(b'{')?;
    let mut pairs = Vec::new();
    if sc.peek() == Some(b'}') {
        sc.pos += 1;
    } else {
        loop {
            let key = sc.string()?;
            sc.expect(b':')?;
            let value = sc.value()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            pairs.push((key, value));
            match sc.peek() {
                Some(b',') => sc.pos += 1,
                Some(b'}') => {
                    sc.pos += 1;
                    break;
                }
                _ => return Err("expected `,` or `}` after value".into()),
            }
        }
    }
    if sc.peek().is_some() {
        return Err("trailing bytes after object".into());
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_requests() {
        let pairs =
            parse_flat_object(r#" {"app": "bfs", "threads": 4, "round_log": true, "x": null} "#)
                .unwrap();
        assert_eq!(pairs[0], ("app".into(), JsonValue::Str("bfs".into())));
        assert_eq!(pairs[1], ("threads".into(), JsonValue::UInt(4)));
        assert_eq!(pairs[2], ("round_log".into(), JsonValue::Bool(true)));
        assert_eq!(pairs[3], ("x".into(), JsonValue::Null));
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }

    #[test]
    fn rejects_nesting_floats_and_garbage() {
        assert!(parse_flat_object(r#"{"a": {"b": 1}}"#).is_err());
        assert!(parse_flat_object(r#"{"a": [1]}"#).is_err());
        assert!(parse_flat_object(r#"{"a": 1.5}"#).is_err());
        assert!(parse_flat_object(r#"{"a": -1}"#).is_err());
        assert!(parse_flat_object(r#"{"a": 1} extra"#).is_err());
        assert!(parse_flat_object(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn rejects_duplicate_keys() {
        assert!(parse_flat_object(r#"{"a": 1, "a": 2}"#).is_err());
        assert!(parse_flat_object(r#"{"a": 1, "b": 2, "a": 1}"#).is_err());
        // Distinct keys that merely share a prefix are fine.
        assert!(parse_flat_object(r#"{"a": 1, "aa": 2}"#).is_ok());
    }

    #[test]
    fn string_escapes_round_trip() {
        let pairs = parse_flat_object(r#"{"k": "a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(pairs[0].1.as_str().unwrap(), "a\"b\\c\ndAé");
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
