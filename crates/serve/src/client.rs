//! A small blocking HTTP/1.1 client, used by the integration tests and
//! the load generator. Keep-alive with one transparent reconnect: if the
//! server closed an idle pooled connection, the request is retried once on
//! a fresh socket before the error surfaces.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One received response.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    /// The first header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to one server.
pub struct Client {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            conn: None,
        }
    }

    pub fn get(&mut self, target: &str) -> Result<Response, String> {
        self.request("GET", target, "")
    }

    pub fn post(&mut self, target: &str, body: &str) -> Result<Response, String> {
        self.request("POST", target, body)
    }

    /// Sends one request, reconnecting once if a pooled connection turned
    /// out to be dead.
    pub fn request(&mut self, method: &str, target: &str, body: &str) -> Result<Response, String> {
        let had_conn = self.conn.is_some();
        match self.attempt(method, target, body) {
            Ok(resp) => Ok(resp),
            Err(e) if had_conn => {
                self.conn = None;
                self.attempt(method, target, body).map_err(|e2| {
                    format!("request failed on pooled ({e}) and fresh ({e2}) connections")
                })
            }
            Err(e) => Err(e),
        }
    }

    fn attempt(&mut self, method: &str, target: &str, body: &str) -> Result<Response, String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            stream
                .set_read_timeout(Some(Duration::from_secs(120)))
                .map_err(|e| e.to_string())?;
            self.conn = Some(BufReader::new(stream));
        }
        let conn = self.conn.as_mut().unwrap();
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        );
        let result = (|| {
            let stream = conn.get_mut();
            stream
                .write_all(head.as_bytes())
                .map_err(|e| e.to_string())?;
            stream
                .write_all(body.as_bytes())
                .map_err(|e| e.to_string())?;
            stream.flush().map_err(|e| e.to_string())?;
            read_response(conn)
        })();
        let reusable = result.as_ref().is_ok_and(|r| {
            !r.header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        });
        if !reusable {
            self.conn = None;
        }
        result
    }
}

fn read_response(conn: &mut BufReader<TcpStream>) -> Result<Response, String> {
    let mut status_line = String::new();
    conn.read_line(&mut status_line)
        .map_err(|e| format!("read status line: {e}"))?;
    if status_line.is_empty() {
        return Err("connection closed before response".into());
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        conn.read_line(&mut line)
            .map_err(|e| format!("read header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header {line:?}"))?;
        if k.eq_ignore_ascii_case("content-length") {
            content_length = v.trim().parse().map_err(|_| "bad content-length")?;
        }
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }
    let mut body = vec![0u8; content_length];
    conn.read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "non-UTF-8 response body")?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// One-shot GET against `addr` on a fresh connection.
pub fn get(addr: &str, target: &str) -> Result<Response, String> {
    Client::new(addr).get(target)
}

/// One-shot POST against `addr` on a fresh connection.
pub fn post(addr: &str, target: &str, body: &str) -> Result<Response, String> {
    Client::new(addr).post(target, body)
}
