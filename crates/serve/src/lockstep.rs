//! Distributed lockstep replication: N replica *processes* re-execute one
//! recorded deterministic run, streaming per-round prefix hashes to a
//! coordinator that cross-checks them against the recorded reference
//! chain within a bounded window.
//!
//! This is the wire-level payoff of deterministic execution (Aviram &
//! Ford): because a run is a pure function of `(program, input, executor
//! config)`, replica fault detection collapses to hash comparison — no
//! state transfer, no output shipping, 16 bytes per barrier. The
//! [`Coordinator`] drives the session:
//!
//! 1. **Join**: each replica connects, sends a versioned `HELLO`, and
//!    receives a `JOB` frame carrying the reference [`RunManifest`] (input
//!    key + `ExecConfig`) and its thread budget. Budgets may differ per
//!    replica — portability *is* the redundancy claim.
//! 2. **Stream**: replicas re-execute and send one `ROUND` frame per
//!    barrier. The coordinator settles rounds in order, comparing every
//!    replica's hash against the recorded chain. A replica may run at most
//!    [`LockstepConfig::window`] rounds ahead of the slowest voter before
//!    its reader blocks — coordinator memory is bounded by
//!    `window × replicas` hashes, never by run length.
//! 3. **Vote**: on a mismatch at the frontier round, the recorded manifest
//!    chain is the binding reference. A *strict minority* contradicting it
//!    is evicted (first divergent round pinpointed in the event log) and
//!    the run continues with the survivors. If half or more of the live
//!    replicas contradict the reference, the coordinator refuses the run
//!    ([`EXIT_NO_QUORUM`]) rather than voting a wrong majority.
//! 4. **Degrade**: replica death — socket drop, kill, silence past the
//!    timeout — is a structured event; the run continues while at least a
//!    quorum (majority of the original N) survives.
//! 5. **Settle**: the final fingerprints of all survivors must agree with
//!    the manifest; only then is the result (and the emitted manifest)
//!    released.
//!
//! The whole session is summarized in a versioned, checksummed
//! [`LockstepReport`].

use crate::wire::{self, Frame, WireError, WIRE_VERSION};
use galois_core::manifest::{
    LockstepEvent, LockstepEventKind, LockstepOutcome, LockstepReport, ManifestRecorder,
    LOCKSTEP_REPORT_VERSION,
};
use galois_core::RunManifest;
use galois_harness::{manifest_target, run_cell};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Process exit code for a run that completed from a quorum after evicting
/// divergent replicas (same code the replay CLI uses for divergence).
pub const EXIT_DIVERGENCE: i32 = 13;

/// Process exit code for a refused run: quorum lost, or a majority
/// contradicted the recorded reference chain.
pub const EXIT_NO_QUORUM: i32 = 14;

/// Exit code a replica uses after being evicted by its coordinator.
pub const EXIT_REPLICA_EVICTED: i32 = 3;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct LockstepConfig {
    /// Replicas that must join before the run starts.
    pub replicas: usize,
    /// Round-count comparison window: how far any replica may run ahead of
    /// the slowest live voter before its stream is back-pressured.
    pub window: usize,
    /// Per-replica thread budgets, cycled over replica ids; empty = every
    /// replica runs at the manifest's recorded budget.
    pub threads: Vec<usize>,
    /// Idle budget per replica: silence longer than this is a timeout
    /// death.
    pub timeout: Duration,
    /// How long to wait for all `replicas` to join.
    pub join_timeout: Duration,
}

impl Default for LockstepConfig {
    fn default() -> Self {
        LockstepConfig {
            replicas: 3,
            window: 64,
            threads: Vec::new(),
            timeout: Duration::from_secs(60),
            join_timeout: Duration::from_secs(60),
        }
    }
}

/// What a finished lockstep session reduces to.
#[derive(Debug, Clone)]
pub struct LockstepRunResult {
    /// The structured session account.
    pub report: LockstepReport,
    /// `0` clean, [`EXIT_DIVERGENCE`], or [`EXIT_NO_QUORUM`].
    pub exit_code: i32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ReplicaState {
    Running,
    Finished {
        rounds: u64,
        output_hash: u64,
        fingerprint: u64,
    },
    Dead,
    Evicted,
}

struct Board {
    /// Per-replica queue of received-but-unsettled prefix hashes; the
    /// front is always the hash for round `settled`.
    pending: Vec<VecDeque<u64>>,
    /// Total `ROUND` frames accepted per replica (seq contiguity check).
    arrived: Vec<u64>,
    state: Vec<ReplicaState>,
    /// Rounds settled against the reference chain.
    settled: u64,
    /// High-water mark of any pending queue.
    max_buffered: u64,
    events: Vec<LockstepEvent>,
    /// Set when the settler gives up; readers drain and exit.
    halted: bool,
}

struct Shared {
    board: Mutex<Board>,
    turn: Condvar,
    window: usize,
}

/// A bound coordinator, ready to accept replica joins.
pub struct Coordinator {
    listener: TcpListener,
    addr: SocketAddr,
    manifest: RunManifest,
    config: LockstepConfig,
}

impl Coordinator {
    /// Binds the coordinator's listening socket (use port 0 for an
    /// ephemeral port, then read [`addr`](Self::addr)).
    pub fn bind(
        manifest: RunManifest,
        config: LockstepConfig,
        addr: &str,
    ) -> std::io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Coordinator {
            listener,
            addr,
            manifest,
            config,
        })
    }

    /// The bound address replicas should `--join`.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the session to completion: join, stream, vote, settle.
    /// `Err` is an orchestration failure (bind/join problems), not a
    /// replication verdict — verdicts come back in the result's report.
    pub fn run(self) -> Result<LockstepRunResult, String> {
        let n = self.config.replicas;
        if n == 0 {
            return Err("lockstep needs at least one replica".into());
        }
        let quorum = n / 2 + 1;
        let reference = self.manifest.round_hashes.clone();
        let manifest_json = self.manifest.to_json();

        // ---- Join phase -------------------------------------------------
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking: {e}"))?;
        let mut streams: Vec<TcpStream> = Vec::with_capacity(n);
        let deadline = Instant::now() + self.config.join_timeout;
        while streams.len() < n {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if let Some(stream) = self.admit(stream, streams.len() as u32, &manifest_json) {
                        streams.push(stream);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(format!(
                            "only {} of {n} replicas joined within {:?}",
                            streams.len(),
                            self.config.join_timeout
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(format!("accept: {e}")),
            }
        }

        // ---- Stream phase: one reader thread per replica ----------------
        let shared = Arc::new(Shared {
            board: Mutex::new(Board {
                pending: (0..n).map(|_| VecDeque::new()).collect(),
                arrived: vec![0; n],
                state: vec![ReplicaState::Running; n],
                settled: 0,
                max_buffered: 0,
                events: Vec::new(),
                halted: false,
            }),
            turn: Condvar::new(),
            window: self.config.window.max(1),
        });
        let timeout = self.config.timeout;
        let mut readers = Vec::with_capacity(n);
        for (i, stream) in streams.iter().enumerate() {
            let mut stream = stream
                .try_clone()
                .map_err(|e| format!("clone replica {i} stream: {e}"))?;
            let shared = Arc::clone(&shared);
            readers.push(std::thread::spawn(move || {
                reader_loop(&mut stream, i, &shared, timeout)
            }));
        }

        // ---- Vote/settle phase ------------------------------------------
        let (outcome, survivors, agreed) =
            settle(&shared, &reference, &self.manifest, quorum, &streams);

        // Courtesy frames, then hang up: survivors get an ACK, everyone
        // else is already evicted/dead. Dropping the streams unblocks any
        // replica still mid-stream.
        for &i in &survivors {
            if let Ok(mut s) = streams[i].try_clone() {
                let _ = wire::write_frame(&mut s, &Frame::Ack);
            }
        }
        for stream in &streams {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for reader in readers {
            let _ = reader.join();
        }

        let board = shared.board.lock().unwrap();
        let (output_hash, fingerprint) = agreed.unwrap_or((0, 0));
        let report = LockstepReport {
            version: LOCKSTEP_REPORT_VERSION,
            app: self.manifest.app.clone(),
            input_key: self.manifest.input_key.clone(),
            replicas: n as u64,
            window: shared.window as u64,
            rounds: board.settled,
            outcome,
            survivors: survivors.iter().map(|&i| i as u64).collect(),
            max_buffered: board.max_buffered,
            output_hash,
            final_fingerprint: fingerprint,
            events: board.events.clone(),
        };
        let exit_code = match outcome {
            LockstepOutcome::Agreed => 0,
            LockstepOutcome::Diverged => EXIT_DIVERGENCE,
            LockstepOutcome::NoQuorum => EXIT_NO_QUORUM,
        };
        Ok(LockstepRunResult { report, exit_code })
    }

    /// Handshakes one joining connection; `None` = rejected (does not
    /// consume a replica slot).
    fn admit(&self, mut stream: TcpStream, id: u32, manifest_json: &str) -> Option<TcpStream> {
        stream
            .set_read_timeout(Some(crate::http::READ_TIMEOUT))
            .ok()?;
        match wire::read_frame(&mut stream, self.config.join_timeout) {
            Ok(Frame::Hello { version }) if version == WIRE_VERSION => {
                let job = Frame::Job {
                    replica: id,
                    threads: self
                        .config
                        .threads
                        .get(id as usize % self.config.threads.len().max(1))
                        .copied()
                        .unwrap_or(0) as u32,
                    manifest: manifest_json.to_string(),
                };
                wire::write_frame(&mut stream, &job).ok()?;
                Some(stream)
            }
            Ok(Frame::Hello { version }) => {
                let _ = wire::write_frame(
                    &mut stream,
                    &Frame::Reject {
                        reason: format!("wire version {version} != coordinator's {WIRE_VERSION}"),
                    },
                );
                None
            }
            _ => None,
        }
    }
}

/// One replica's reader: validates frame order, back-pressures at the
/// window bound, and turns connection loss into structured board state.
fn reader_loop(stream: &mut TcpStream, id: usize, shared: &Shared, timeout: Duration) {
    loop {
        let frame = wire::read_frame(stream, timeout);
        let mut board = shared.board.lock().unwrap();
        if board.state[id] != ReplicaState::Running || board.halted {
            // Evicted, or the session settled, while we were blocked
            // reading — nothing left to account for.
            return;
        }
        match frame {
            Ok(Frame::Round { seq, hash }) => {
                if seq != board.arrived[id] {
                    let expected_seq = board.arrived[id];
                    mark_dead(
                        &mut board,
                        id,
                        LockstepEventKind::Death,
                        format!("replica {id} sent round {seq}, expected {expected_seq}"),
                    );
                    shared.turn.notify_all();
                    return;
                }
                // Window bound: never buffer more than `window` unsettled
                // hashes for one replica.
                while board.pending[id].len() >= shared.window
                    && board.state[id] == ReplicaState::Running
                    && !board.halted
                {
                    board = shared.turn.wait(board).unwrap();
                }
                if board.state[id] != ReplicaState::Running || board.halted {
                    return;
                }
                board.arrived[id] += 1;
                board.pending[id].push_back(hash);
                board.max_buffered = board.max_buffered.max(board.pending[id].len() as u64);
                shared.turn.notify_all();
            }
            Ok(Frame::Done {
                rounds,
                output_hash,
                fingerprint,
            }) => {
                board.state[id] = ReplicaState::Finished {
                    rounds,
                    output_hash,
                    fingerprint,
                };
                shared.turn.notify_all();
                return;
            }
            Ok(Frame::Fault { exit_code, message }) => {
                let round = board.arrived[id];
                mark_dead(
                    &mut board,
                    id,
                    LockstepEventKind::Fault,
                    format!("replica {id} faulted (exit {exit_code}): {message}"),
                );
                board.events.last_mut().expect("event just pushed").round = round;
                shared.turn.notify_all();
                return;
            }
            Ok(other) => {
                mark_dead(
                    &mut board,
                    id,
                    LockstepEventKind::Death,
                    format!("replica {id} sent unexpected {other:?}"),
                );
                shared.turn.notify_all();
                return;
            }
            Err(WireError::Timeout) => {
                mark_dead(
                    &mut board,
                    id,
                    LockstepEventKind::Timeout,
                    format!("replica {id} silent past {timeout:?}"),
                );
                shared.turn.notify_all();
                return;
            }
            Err(e) => {
                mark_dead(
                    &mut board,
                    id,
                    LockstepEventKind::Death,
                    format!("replica {id} connection lost: {e}"),
                );
                shared.turn.notify_all();
                return;
            }
        }
    }
}

fn mark_dead(board: &mut Board, id: usize, kind: LockstepEventKind, detail: String) {
    board.state[id] = ReplicaState::Dead;
    board.pending[id].clear();
    board.events.push(LockstepEvent {
        round: board.settled,
        replica: Some(id as u64),
        kind,
        expected: 0,
        actual: 0,
        detail,
    });
}

/// The settle loop: advances the frontier one round at a time, voting
/// every live replica's hash against the recorded reference chain.
/// Returns `(outcome, survivors, agreed (output_hash, fingerprint))`.
fn settle(
    shared: &Shared,
    reference: &[u64],
    manifest: &RunManifest,
    quorum: usize,
    streams: &[TcpStream],
) -> (LockstepOutcome, Vec<usize>, Option<(u64, u64)>) {
    let n = streams.len();
    let mut board = shared.board.lock().unwrap();
    loop {
        let active: Vec<usize> = (0..n)
            .filter(|&i| {
                matches!(
                    board.state[i],
                    ReplicaState::Running | ReplicaState::Finished { .. }
                )
            })
            .collect();
        if active.len() < quorum {
            let settled = board.settled;
            board.events.push(LockstepEvent {
                round: settled,
                replica: None,
                kind: LockstepEventKind::Refusal,
                expected: 0,
                actual: 0,
                detail: format!(
                    "quorum lost: {} of {n} replicas live, need {quorum}",
                    active.len()
                ),
            });
            board.halted = true;
            shared.turn.notify_all();
            return (LockstepOutcome::NoQuorum, Vec::new(), None);
        }

        // A Running replica with an empty queue owes the frontier hash (or
        // its Done/death): wait for it.
        if active
            .iter()
            .any(|&i| board.state[i] == ReplicaState::Running && board.pending[i].is_empty())
        {
            board = shared.turn.wait(board).unwrap();
            continue;
        }

        let r = board.settled;
        let expected = reference.get(r as usize).copied();
        // Each active replica's claim for round r: a hash, or `None` —
        // "my chain ended before this round".
        let votes: Vec<(usize, Option<u64>)> = active
            .iter()
            .map(|&i| (i, board.pending[i].front().copied()))
            .collect();

        match expected {
            None => {
                // Reference chain exhausted: anyone still producing rounds
                // contradicts the recording.
                let extra: Vec<(usize, u64)> = votes
                    .iter()
                    .filter_map(|&(i, v)| v.map(|h| (i, h)))
                    .collect();
                if extra.is_empty() {
                    // Everyone ended exactly at the reference length; the
                    // final fingerprint vote decides below.
                    return finalize(shared, board, manifest, quorum, n, streams);
                }
                if extra.len() * 2 >= active.len() {
                    return refuse(
                        shared,
                        board,
                        r,
                        format!(
                            "{} of {} live replicas ran past the recorded {}-round chain",
                            extra.len(),
                            active.len(),
                            reference.len()
                        ),
                    );
                }
                for (i, hash) in extra {
                    evict(&mut board, i, r, 0, hash, streams);
                }
                shared.turn.notify_all();
            }
            Some(expected) => {
                let mismatch: Vec<(usize, Option<u64>)> = votes
                    .iter()
                    .copied()
                    .filter(|&(_, v)| v != Some(expected))
                    .collect();
                if mismatch.is_empty() {
                    for &i in &active {
                        board.pending[i].pop_front();
                    }
                    board.settled += 1;
                    shared.turn.notify_all();
                    continue;
                }
                if mismatch.len() * 2 >= active.len() {
                    return refuse(
                        shared,
                        board,
                        r,
                        format!(
                            "{} of {} live replicas contradict the reference at round {r} — \
                             refusing to vote a majority against the recording",
                            mismatch.len(),
                            active.len()
                        ),
                    );
                }
                for (i, v) in mismatch {
                    evict(&mut board, i, r, expected, v.unwrap_or(0), streams);
                }
                shared.turn.notify_all();
            }
        }
    }
}

/// Records the divergence + eviction pair for replica `i` at round `r`,
/// removes it from the vote, and hangs up its socket.
fn evict(board: &mut Board, i: usize, r: u64, expected: u64, actual: u64, streams: &[TcpStream]) {
    board.events.push(LockstepEvent {
        round: r,
        replica: Some(i as u64),
        kind: LockstepEventKind::Divergence,
        expected,
        actual,
        detail: format!("replica {i} first diverged from the reference chain at round {r}"),
    });
    board.events.push(LockstepEvent {
        round: r,
        replica: Some(i as u64),
        kind: LockstepEventKind::Eviction,
        expected: 0,
        actual: 0,
        detail: format!("replica {i} evicted; continuing with the survivors"),
    });
    board.state[i] = ReplicaState::Evicted;
    board.pending[i].clear();
    if let Ok(mut s) = streams[i].try_clone() {
        let _ = wire::write_frame(
            &mut s,
            &Frame::Evict {
                round: r,
                reason: "diverged from reference chain".into(),
            },
        );
    }
    let _ = streams[i].shutdown(std::net::Shutdown::Both);
}

fn refuse(
    shared: &Shared,
    mut board: std::sync::MutexGuard<'_, Board>,
    round: u64,
    detail: String,
) -> (LockstepOutcome, Vec<usize>, Option<(u64, u64)>) {
    board.events.push(LockstepEvent {
        round,
        replica: None,
        kind: LockstepEventKind::Refusal,
        expected: 0,
        actual: 0,
        detail,
    });
    board.halted = true;
    shared.turn.notify_all();
    (LockstepOutcome::NoQuorum, Vec::new(), None)
}

/// Every live replica settled the whole reference chain; now their final
/// `DONE` payloads must agree with the manifest's fingerprint. Replicas
/// are waited to `Finished` first (they may still be between their last
/// `ROUND` and their `DONE`).
fn finalize(
    shared: &Shared,
    mut board: std::sync::MutexGuard<'_, Board>,
    manifest: &RunManifest,
    quorum: usize,
    n: usize,
    streams: &[TcpStream],
) -> (LockstepOutcome, Vec<usize>, Option<(u64, u64)>) {
    loop {
        if (0..n).any(|i| board.state[i] == ReplicaState::Running) {
            board = shared.turn.wait(board).unwrap();
            continue;
        }
        let round = board.settled;
        let mut survivors = Vec::new();
        let mut agreed: Option<(u64, u64)> = None;
        for i in 0..n {
            if let ReplicaState::Finished {
                rounds,
                output_hash,
                fingerprint,
            } = board.state[i]
            {
                if rounds != round || fingerprint != manifest.final_fingerprint {
                    evict(
                        &mut board,
                        i,
                        round,
                        manifest.final_fingerprint,
                        fingerprint,
                        streams,
                    );
                    continue;
                }
                match agreed {
                    None => agreed = Some((output_hash, fingerprint)),
                    Some((h, _)) if h != output_hash => {
                        // Same fingerprint, different output hash cannot
                        // happen through honest hashing; treat as
                        // divergence.
                        evict(&mut board, i, round, h, output_hash, streams);
                        continue;
                    }
                    Some(_) => {}
                }
                survivors.push(i);
            }
        }
        if survivors.len() < quorum {
            return refuse(
                shared,
                board,
                round,
                format!(
                    "only {} of {n} replicas reproduced the recorded fingerprint, need {quorum}",
                    survivors.len()
                ),
            );
        }
        let diverged = board
            .events
            .iter()
            .any(|e| e.kind == LockstepEventKind::Divergence);
        let outcome = if diverged {
            LockstepOutcome::Diverged
        } else {
            LockstepOutcome::Agreed
        };
        board.halted = true;
        shared.turn.notify_all();
        return (outcome, survivors, agreed);
    }
}

/// Replica-side knobs (the `galois replicate` flag surface).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaOptions {
    /// Overrides the `JOB` frame's thread budget.
    pub threads: Option<usize>,
    /// Overrides the job's `locality_spread` — a *planted* deterministic
    /// schedule perturbation, used by the battery to manufacture a replica
    /// that diverges at a stable first round.
    pub perturb_spread: Option<usize>,
    /// Sleep this long in the round-hash hook (slow-replica testing;
    /// timing is hash-invariant).
    pub throttle_ms: u64,
}

/// Joins a coordinator at `addr`, re-executes the job it assigns, and
/// streams per-round prefix hashes. Returns the process exit code: `0`
/// settled, [`EXIT_REPLICA_EVICTED`] evicted, the fault's own exit code if
/// the run faulted.
pub fn run_replica(addr: &str, opts: ReplicaOptions) -> Result<i32, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(crate::http::READ_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let mut control = stream.try_clone().map_err(|e| e.to_string())?;
    wire::write_frame(
        &mut control,
        &Frame::Hello {
            version: WIRE_VERSION,
        },
    )
    .map_err(|e| format!("hello: {e}"))?;
    let job = wire::read_frame(&mut control, Duration::from_secs(120))
        .map_err(|e| format!("waiting for job: {e}"))?;
    let (replica_id, job_threads, manifest_json) = match job {
        Frame::Job {
            replica,
            threads,
            manifest,
        } => (replica, threads as usize, manifest),
        Frame::Reject { reason } => return Err(format!("coordinator rejected join: {reason}")),
        other => return Err(format!("expected JOB, got {other:?}")),
    };
    let manifest =
        RunManifest::from_json(&manifest_json).map_err(|e| format!("job manifest: {e}"))?;
    let (app, input) = manifest_target(&manifest).map_err(|e| e.to_string())?;

    let mut cfg = manifest.exec.clone();
    if let Some(spread) = opts.perturb_spread {
        cfg.locality_spread = spread;
    }
    let threads = opts
        .threads
        .or((job_threads != 0).then_some(job_threads))
        .unwrap_or(cfg.threads);
    let exec = cfg.to_executor(threads).record_rounds(true);

    // Stream hashes from inside the barrier hook. The hook must never
    // panic (it runs on an executor thread), so send failures latch a flag
    // and mute further sends — the coordinator hanging up on us (eviction,
    // refusal) is an expected way for a session to end.
    let hook_stream = Arc::new(Mutex::new(stream.try_clone().map_err(|e| e.to_string())?));
    let send_failed = Arc::new(AtomicBool::new(false));
    let throttle = Duration::from_millis(opts.throttle_ms);
    let hook = {
        let hook_stream = Arc::clone(&hook_stream);
        let send_failed = Arc::clone(&send_failed);
        move |seq: u64, hash: u64| {
            if opts.throttle_ms != 0 {
                std::thread::sleep(throttle);
            }
            if send_failed.load(Ordering::Relaxed) {
                return;
            }
            let mut s = hook_stream.lock().unwrap();
            if wire::write_frame(&mut s, &Frame::Round { seq, hash }).is_err() {
                send_failed.store(true, Ordering::Relaxed);
            }
        }
    };
    let mut rec = ManifestRecorder::new().on_round_hash(hook);

    let final_frame = match run_cell(app, &exec, &input, Some(&mut rec)) {
        Ok((Ok(out), _cached)) => Frame::Done {
            rounds: out.rounds,
            output_hash: out.output_hash,
            fingerprint: out.fingerprint,
        },
        Ok((Err(fault), _cached)) => Frame::Fault {
            exit_code: fault.exit_code() as u32,
            message: fault.to_string(),
        },
        Err(validation) => Frame::Fault {
            exit_code: 1,
            message: format!("validation failed: {validation}"),
        },
    };
    let fault_exit = match &final_frame {
        Frame::Fault { exit_code, .. } => Some(*exit_code as i32),
        _ => None,
    };
    {
        let mut s = hook_stream.lock().unwrap();
        if wire::write_frame(&mut s, &final_frame).is_err() {
            send_failed.store(true, Ordering::Relaxed);
        }
    }
    if let Some(code) = fault_exit {
        return Ok(code);
    }

    // Wait for the verdict: ACK (settled), EVICT, or a hang-up.
    match wire::read_frame(&mut control, Duration::from_secs(120)) {
        Ok(Frame::Ack) => Ok(0),
        Ok(Frame::Evict { round, reason }) => {
            eprintln!("replica {replica_id}: evicted at round {round}: {reason}");
            Ok(EXIT_REPLICA_EVICTED)
        }
        _ if send_failed.load(Ordering::Relaxed) => Ok(EXIT_REPLICA_EVICTED),
        Ok(other) => Err(format!("expected verdict, got {other:?}")),
        Err(WireError::Closed) => Ok(0),
        Err(e) => Err(format!("waiting for verdict: {e}")),
    }
}
