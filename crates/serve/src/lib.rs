//! `galois-serve`: a resident deterministic compute service.
//!
//! The paper's executors are pure functions of `(program, input, executor
//! config)` — which makes them *servable*: a resident process can answer
//! "run bfs over input seed 42 deterministically with a 4-thread budget"
//! over and over, keeping the expensive part (input materialization)
//! warm across requests, and every response is a replayable, portable
//! artifact. This crate is that process:
//!
//! - a hand-rolled HTTP/1.1 + JSON front end over `std::net::TcpListener`
//!   (the tree is registry-free — no tokio, no hyper): an accept loop
//!   feeds a blocking worker pool, each worker serving one keep-alive
//!   connection to completion;
//! - requests route through the same [`executor_for`] /
//!   [`run_resident`](galois_harness::run_resident) path the differential
//!   harness proves deterministic, over inputs kept resident in a
//!   [`InputStore`];
//! - a faulting run (operator panic, stall, quarantine overflow) comes
//!   back as a *structured* error response — kind, exit code, canonical
//!   message — and the server stays up: the fault was contained by
//!   `try_run`, and the worker additionally wraps routing in
//!   `catch_unwind` so even a server-side bug downgrades to a 500;
//! - deterministic responses exclude the thread budget, timing, and cache
//!   residency from the body (those ride HTTP headers), so the *bytes* of
//!   a response are a pure function of `(app, input key, seed, executor
//!   config)` — the service-level restatement of the paper's portability
//!   property, and what the e2e battery asserts. (The one exception is an
//!   explicitly requested manifest, which *documents* the budget it was
//!   recorded at; its budget-independence is proven by replay instead.)
//!
//! # Routes
//!
//! | Route | Effect |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `GET /stats` | request / fault / cache counters |
//! | `POST /run` | execute one run (flat JSON request, see [`RunRequest`]) |
//! | `POST /replay` | re-execute a [`RunManifest`] body, verify bit-identity |
//! | `POST /shutdown` | drain and stop the server |

pub mod client;
pub mod http;
pub mod json;
pub mod lockstep;
pub mod wire;

use galois_core::manifest::ManifestRecorder;
use galois_core::{ExecError, RunManifest};
use galois_harness::{
    executor_for, input_key, replay_run, run_resident, App, InputConfig, InputStore, ReplayError,
    Variant,
};
use json::{escape, parse_flat_object, JsonValue};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Most worker threads a request may ask for. The executors are portable
/// at any count, but a served budget beyond this is a client bug, not a
/// measurement.
pub const MAX_THREAD_BUDGET: usize = 64;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is
    /// reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads. Each worker serves one connection to completion,
    /// so this is also the number of concurrently-served clients; excess
    /// connections queue.
    pub workers: usize,
    /// On-disk input cache backing cold loads; `None` generates inputs
    /// from scratch.
    pub cache_dir: Option<PathBuf>,
    /// Largest accepted request body, in bytes.
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            cache_dir: None,
            max_body: 1 << 20,
        }
    }
}

/// One coherent reading of the request counters. Also the *delta* type:
/// each served request accumulates its outcome tallies into a local
/// `StatsSnapshot` and commits them (together with `requests`) in a single
/// critical section, so a concurrent `GET /stats` can never observe a torn
/// set — e.g. a request counted in `requests` but not yet in `ok`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests parsed off the wire (any route).
    pub requests: u64,
    /// `/run` requests that completed and validated.
    pub ok: u64,
    /// `/run` requests whose run faulted (contained; structured response).
    pub faults: u64,
    /// `/run` requests whose clean run failed app-level validation.
    pub invalid: u64,
    /// Requests rejected before execution (parse/field errors).
    pub bad_requests: u64,
    /// Requests for unknown routes.
    pub not_found: u64,
    /// Routing panics downgraded to 500 by the worker's `catch_unwind`.
    pub worker_panics: u64,
    /// `/replay` requests accepted for re-execution.
    pub replays: u64,
    /// `/replay` requests that diverged from their manifest.
    pub divergences: u64,
}

impl StatsSnapshot {
    fn add(&mut self, delta: &StatsSnapshot) {
        self.requests += delta.requests;
        self.ok += delta.ok;
        self.faults += delta.faults;
        self.invalid += delta.invalid;
        self.bad_requests += delta.bad_requests;
        self.not_found += delta.not_found;
        self.worker_panics += delta.worker_panics;
        self.replays += delta.replays;
        self.divergences += delta.divergences;
    }
}

/// Monotone service counters, exposed at `GET /stats`. All counters live
/// under one mutex: writers commit a whole request's tallies atomically
/// and [`snapshot`](Self::snapshot) reads them all in one lock
/// acquisition.
#[derive(Debug, Default)]
pub struct ServeStats {
    inner: Mutex<StatsSnapshot>,
}

impl ServeStats {
    /// Applies `delta` in one critical section.
    pub fn commit(&self, delta: &StatsSnapshot) {
        self.inner.lock().unwrap().add(delta);
    }

    /// All counters, read coherently under one lock acquisition.
    pub fn snapshot(&self) -> StatsSnapshot {
        *self.inner.lock().unwrap()
    }
}

struct Shared {
    stats: ServeStats,
    store: InputStore,
    stop: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    addr: SocketAddr,
    max_body: usize,
}

impl Shared {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Flags shutdown and unblocks everything that may be waiting: the
    /// accept loop (via a self-connect nudge) and idle workers (via the
    /// condvar). Idle keep-alive connections notice on their next read
    /// timeout tick.
    fn signal_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        self.ready.notify_all();
    }
}

/// A running server. Dropping the handle shuts the server down and joins
/// its threads.
pub struct Server;

/// Handle to a started server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts a server; returns once the accept loop is live.
    pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stats: ServeStats::default(),
            store: InputStore::new(config.cache_dir.clone()),
            stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            addr,
            max_body: config.max_body,
        });

        let mut threads = Vec::with_capacity(config.workers + 1);
        for _ in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(listener, &shared)));
        }
        Ok(ServerHandle { shared, threads })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates shutdown and joins every server thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.signal_stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the server stops (e.g. via `POST /shutdown`). Used by
    /// the `galois serve` CLI, which has nothing else to do.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.stopped() {
            break;
        }
        let Ok(stream) = stream else { continue };
        if stream.set_read_timeout(Some(http::READ_TIMEOUT)).is_err() {
            continue;
        }
        let mut queue = shared.queue.lock().unwrap();
        queue.push_back(stream);
        drop(queue);
        shared.ready.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(conn) = queue.pop_front() {
                    break conn;
                }
                if shared.stopped() {
                    return;
                }
                queue = shared.ready.wait(queue).unwrap();
            }
        };
        serve_connection(conn, shared);
    }
}

/// Serves one keep-alive connection to completion.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    // Pipeline buffer: bytes past one request's body are the start of the
    // next pipelined request and must survive between read_request calls.
    let mut carry = Vec::new();
    loop {
        let req = match http::read_request(&mut stream, &shared.stop, shared.max_body, &mut carry) {
            Ok(http::ReadOutcome::Request(req)) => req,
            Ok(http::ReadOutcome::Closed) => return,
            Err(e) => {
                let body = format!(
                    "{{\"status\":\"error\",\"error\":\"{}\"}}",
                    escape(&e.to_string())
                );
                let _ = http::write_response(&mut stream, 400, &[], &body, false);
                return;
            }
        };
        let keep_alive = !req.wants_close() && !shared.stopped();

        // The run itself is already panic-contained by `try_run`; this
        // outer net catches *server* bugs (routing, serialization) so one
        // bad request can never take the process down.
        let t0 = Instant::now();
        let mut delta = StatsSnapshot {
            requests: 1,
            ..StatsSnapshot::default()
        };
        let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            route(&req, shared, &mut delta)
        }));
        let (status, mut headers, body) = routed.unwrap_or_else(|_| {
            delta = StatsSnapshot {
                requests: 1,
                worker_panics: 1,
                ..StatsSnapshot::default()
            };
            (
                500,
                Vec::new(),
                "{\"status\":\"error\",\"error\":\"internal server panic\"}".to_string(),
            )
        });
        // One critical section commits the whole request's tallies: a
        // concurrent /stats reader sees either none of them or all.
        shared.stats.commit(&delta);
        headers.push((
            "X-Galois-Micros".to_string(),
            t0.elapsed().as_micros().to_string(),
        ));
        if http::write_response(&mut stream, status, &headers, &body, keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

type Reply = (u16, Vec<(String, String)>, String);

fn route(req: &http::Request, shared: &Shared, delta: &mut StatsSnapshot) -> Reply {
    match (req.method.as_str(), req.path()) {
        ("GET", "/healthz") => (200, Vec::new(), "{\"status\":\"ok\"}".to_string()),
        ("GET", "/stats") => (200, Vec::new(), stats_body(shared)),
        ("POST", "/run") => handle_run(req, shared, delta),
        ("POST", "/replay") => handle_replay(req, shared, delta),
        ("POST", "/shutdown") => {
            shared.signal_stop();
            (200, Vec::new(), "{\"status\":\"stopping\"}".to_string())
        }
        ("GET" | "POST", _) => {
            delta.not_found += 1;
            (
                404,
                Vec::new(),
                "{\"status\":\"error\",\"error\":\"no such route\"}".to_string(),
            )
        }
        _ => (
            405,
            Vec::new(),
            "{\"status\":\"error\",\"error\":\"method not allowed\"}".to_string(),
        ),
    }
}

fn stats_body(shared: &Shared) -> String {
    // Two lock acquisitions total — one per counter family — each yielding
    // an internally-coherent set (no torn request tallies, no warm hit
    // without its resident entry).
    let s = shared.stats.snapshot();
    let store = shared.store.snapshot();
    format!(
        "{{\"requests\":{},\"ok\":{},\"faults\":{},\"invalid\":{},\"bad_requests\":{},\
         \"not_found\":{},\"worker_panics\":{},\"replays\":{},\"divergences\":{},\
         \"warm_hits\":{},\"cold_loads\":{},\"rebuilds\":{},\"resident_inputs\":{}}}",
        s.requests,
        s.ok,
        s.faults,
        s.invalid,
        s.bad_requests,
        s.not_found,
        s.worker_panics,
        s.replays,
        s.divergences,
        store.warm_hits,
        store.cold_loads,
        store.rebuilds,
        store.resident_inputs,
    )
}

/// One parsed `/run` request.
///
/// The wire form is a flat JSON object; `app` is the only required field:
///
/// ```json
/// {"app": "bfs", "variant": "deterministic", "threads": 4, "seed": 42,
///  "size": 2000, "chaos_seed": 7, "chaos_panics": 3,
///  "round_log": true, "manifest": true}
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRequest {
    pub app: App,
    pub variant: Variant,
    /// Worker-thread budget for this run (1..=[`MAX_THREAD_BUDGET`]).
    pub threads: usize,
    pub seed: u64,
    pub size: Option<usize>,
    /// Chaos scheduling seed (timing perturbation; fingerprint-invariant
    /// for deterministic runs).
    pub chaos_seed: Option<u64>,
    /// Panic-injection seed: arms operator faults, exercising the
    /// quarantine path.
    pub chaos_panics: Option<u64>,
    /// Stream the canonical round log in the response.
    pub round_log: bool,
    /// Record and return a replayable [`RunManifest`].
    pub manifest: bool,
}

impl RunRequest {
    /// Parses the flat JSON wire form, rejecting unknown keys, missing
    /// `app`, and out-of-range budgets — a request either means exactly
    /// one run or names the reason it does not.
    pub fn parse(body: &str) -> Result<RunRequest, String> {
        let mut out = RunRequest {
            app: App::Bfs,
            variant: Variant::Deterministic,
            threads: 2,
            seed: 42,
            size: None,
            chaos_seed: None,
            chaos_panics: None,
            round_log: false,
            manifest: false,
        };
        let mut saw_app = false;
        for (key, value) in parse_flat_object(body)? {
            if value == JsonValue::Null {
                continue;
            }
            match key.as_str() {
                "app" => {
                    let name = value.as_str().ok_or("`app` must be a string")?;
                    out.app =
                        App::from_name(name).ok_or_else(|| format!("unknown app `{name}`"))?;
                    saw_app = true;
                }
                "variant" => {
                    let name = value.as_str().ok_or("`variant` must be a string")?;
                    out.variant = Variant::from_name(name)
                        .ok_or_else(|| format!("unknown variant `{name}`"))?;
                }
                "threads" => {
                    let t = value.as_u64().ok_or("`threads` must be an integer")? as usize;
                    if t == 0 || t > MAX_THREAD_BUDGET {
                        return Err(format!(
                            "`threads` must be in 1..={MAX_THREAD_BUDGET}, got {t}"
                        ));
                    }
                    out.threads = t;
                }
                "seed" => out.seed = value.as_u64().ok_or("`seed` must be an integer")?,
                "size" => {
                    let n = value.as_u64().ok_or("`size` must be an integer")?;
                    if n == 0 {
                        return Err("`size` must be positive".into());
                    }
                    out.size = Some(n as usize);
                }
                "chaos_seed" => {
                    out.chaos_seed = Some(value.as_u64().ok_or("`chaos_seed` must be an integer")?)
                }
                "chaos_panics" => {
                    out.chaos_panics =
                        Some(value.as_u64().ok_or("`chaos_panics` must be an integer")?)
                }
                "round_log" => {
                    out.round_log = value.as_bool().ok_or("`round_log` must be a boolean")?
                }
                "manifest" => {
                    out.manifest = value.as_bool().ok_or("`manifest` must be a boolean")?
                }
                other => return Err(format!("unknown field `{other}`")),
            }
        }
        if !saw_app {
            return Err("missing required field `app`".into());
        }
        if out.manifest && out.variant != Variant::Deterministic {
            return Err("`manifest` requires the deterministic variant".into());
        }
        Ok(out)
    }

    fn input(&self) -> InputConfig {
        InputConfig {
            seed: self.seed,
            size: self.size,
            ..Default::default()
        }
    }
}

fn bad_request(delta: &mut StatsSnapshot, msg: &str) -> Reply {
    delta.bad_requests += 1;
    (
        400,
        Vec::new(),
        format!("{{\"status\":\"error\",\"error\":\"{}\"}}", escape(msg)),
    )
}

fn handle_run(req: &http::Request, shared: &Shared, delta: &mut StatsSnapshot) -> Reply {
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return bad_request(delta, &e),
    };
    let run_req = match RunRequest::parse(body) {
        Ok(r) => r,
        Err(e) => return bad_request(delta, &e),
    };
    let input = run_req.input();
    let key = input_key(run_req.app, &input);
    let (resident, residency) = shared.store.get(run_req.app, &input);

    let mut exec = executor_for(
        run_req.app,
        run_req.variant,
        run_req.threads,
        run_req.chaos_seed,
    );
    if let Some(panic_seed) = run_req.chaos_panics {
        exec = exec.chaos_panics(panic_seed);
    }
    if run_req.round_log {
        exec = exec.record_rounds(true);
    }
    let mut rec = run_req.manifest.then(ManifestRecorder::new);

    let result = run_resident(run_req.app, &exec, &resident, rec.as_mut());

    // Residency and timing ride headers, never the body: response bodies
    // must be byte-identical across thread budgets and cache states.
    let headers = vec![("X-Galois-Cache".to_string(), residency.name().to_string())];

    let prelude = format!(
        "\"app\":\"{}\",\"variant\":\"{}\",\"input_key\":\"{}\",\"seed\":{}",
        run_req.app.name(),
        run_req.variant.name(),
        escape(&key),
        run_req.seed
    );
    match result {
        Err(validation) => {
            delta.invalid += 1;
            (
                500,
                headers,
                format!(
                    "{{\"status\":\"invalid\",{prelude},\"error\":\"{}\"}}",
                    escape(&validation)
                ),
            )
        }
        Ok(Err(fault)) => {
            delta.faults += 1;
            (500, headers, fault_body(&prelude, &fault))
        }
        Ok(Ok(run)) => {
            delta.ok += 1;
            let out = &run.outcome;
            let mut body = format!(
                "{{\"status\":\"ok\",{prelude},\"fingerprint\":\"{:016x}\",\
                 \"output_hash\":\"{:016x}\",\"log_hash\":\"{:016x}\",\
                 \"rounds\":{},\"committed\":{},\"aborted\":{},\"injected_aborts\":{}",
                out.fingerprint,
                out.output_hash,
                out.log_hash,
                out.rounds,
                out.committed,
                out.aborted,
                out.injected_aborts
            );
            if run_req.round_log {
                // Only the chain-hashed scalars are streamed: these five
                // fields are exactly what `RoundChain::push` digests, so a
                // client can recompute `log_hash` from the streamed log —
                // and they are thread-invariant for deterministic runs.
                body.push_str(",\"round_log\":[");
                for (i, r) in run.records.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&format!(
                        "{{\"round\":{},\"window\":{},\"attempted\":{},\"committed\":{},\"failed\":{}}}",
                        r.round, r.window, r.attempted, r.committed, r.failed
                    ));
                }
                body.push(']');
            }
            if let Some(rec) = rec {
                let manifest = rec.finish(
                    run_req.app.name(),
                    &key,
                    run_req.seed,
                    run_req.size.map(|s| s as u64).unwrap_or(0),
                    out.output_hash,
                );
                body.push_str(",\"manifest\":");
                body.push_str(manifest.to_json().trim_end());
            }
            body.push('}');
            (200, headers, body)
        }
    }
}

fn fault_body(prelude: &str, fault: &ExecError) -> String {
    let mut body = format!(
        "{{\"status\":\"fault\",{prelude},\"kind\":\"{}\",\"exit_code\":{},\"error\":\"{}\"",
        fault.kind(),
        fault.exit_code(),
        escape(&fault.to_string())
    );
    if let ExecError::OperatorPanic { task_id, round, .. } = fault {
        body.push_str(&format!(",\"task_id\":{task_id},\"round\":{round}"));
    }
    body.push('}');
    body
}

fn handle_replay(req: &http::Request, shared: &Shared, delta: &mut StatsSnapshot) -> Reply {
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return bad_request(delta, &e),
    };
    let manifest = match RunManifest::from_json(body) {
        Ok(m) => m,
        Err(e) => return bad_request(delta, &format!("manifest rejected: {e}")),
    };
    let threads = match req.query("threads") {
        None => 2,
        Some(t) => match t.parse::<usize>() {
            Ok(t) if (1..=MAX_THREAD_BUDGET).contains(&t) => t,
            _ => return bad_request(delta, "`threads` must be in 1..=64"),
        },
    };
    delta.replays += 1;
    let prelude = format!(
        "\"app\":\"{}\",\"input_key\":\"{}\"",
        escape(&manifest.app),
        escape(&manifest.input_key)
    );
    let cache_dir = shared.store.cache_dir().map(|p| p.to_path_buf());
    match replay_run(&manifest, threads, cache_dir) {
        Ok(out) => (
            200,
            Vec::new(),
            format!(
                "{{\"status\":\"ok\",{prelude},\"fingerprint\":\"{:016x}\",\"rounds\":{}}}",
                out.fingerprint, out.rounds
            ),
        ),
        Err(ReplayError::Divergence(d)) => {
            delta.divergences += 1;
            (
                409,
                Vec::new(),
                format!(
                    "{{\"status\":\"diverged\",{prelude},\"round\":{},\
                     \"expected\":\"{:016x}\",\"actual\":\"{:016x}\"}}",
                    d.round, d.expected, d.actual
                ),
            )
        }
        Err(ReplayError::Exec(fault)) => {
            delta.faults += 1;
            (500, Vec::new(), fault_body(&prelude, &fault))
        }
        Err(e @ (ReplayError::Manifest(_) | ReplayError::Mismatch(_))) => {
            bad_request(delta, &e.to_string())
        }
        Err(e @ ReplayError::Validation(_)) => {
            delta.invalid += 1;
            (
                500,
                Vec::new(),
                format!(
                    "{{\"status\":\"invalid\",{prelude},\"error\":\"{}\"}}",
                    escape(&e.to_string())
                ),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_defaults_and_rejections() {
        let r = RunRequest::parse(r#"{"app":"bfs"}"#).unwrap();
        assert_eq!(r.app, App::Bfs);
        assert_eq!(r.variant, Variant::Deterministic);
        assert_eq!(r.threads, 2);
        assert_eq!(r.seed, 42);
        assert!(!r.round_log && !r.manifest);

        let r = RunRequest::parse(
            r#"{"app":"mis","variant":"g-n","threads":8,"seed":7,"size":500,"round_log":true}"#,
        )
        .unwrap();
        assert_eq!(r.app, App::Mis);
        assert_eq!(r.variant, Variant::Speculative);
        assert_eq!((r.threads, r.seed, r.size), (8, 7, Some(500)));
        assert!(r.round_log);

        assert!(RunRequest::parse(r#"{}"#).is_err());
        assert!(RunRequest::parse(r#"{"app":"nope"}"#).is_err());
        assert!(RunRequest::parse(r#"{"app":"bfs","threads":0}"#).is_err());
        assert!(RunRequest::parse(r#"{"app":"bfs","threads":65}"#).is_err());
        assert!(RunRequest::parse(r#"{"app":"bfs","bogus":1}"#).is_err());
        assert!(RunRequest::parse(r#"{"app":"bfs","variant":"g-n","manifest":true}"#).is_err());
    }

    #[test]
    fn healthz_and_shutdown_round_trip() {
        let mut handle = Server::start(ServeConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let resp = client::get(&addr, "/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"status\":\"ok\"}");
        let resp = client::get(&addr, "/nope").unwrap();
        assert_eq!(resp.status, 404);
        let resp = client::post(&addr, "/shutdown", "").unwrap();
        assert_eq!(resp.status, 200);
        handle.shutdown();
    }
}
