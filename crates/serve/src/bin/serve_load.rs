//! Load generator for `galois-serve`: drives a server with keep-alive
//! clients over a deterministic request rotation and emits
//! `BENCH_serve.json` (throughput, latency percentiles, cache tallies).
//!
//! By default it spawns an in-process server sized to the client count and
//! tears it down afterwards; `--addr` targets an already-running server
//! instead. Exits nonzero if any request fails, so CI can use it as a
//! smoke test.
//!
//! ```text
//! serve_load [--clients N] [--requests N] [--apps bfs,mis,...]
//!            [--threads 1,2,4] [--addr HOST:PORT] [--cache-dir DIR]
//!            [--out BENCH_serve.json]
//! ```

use galois_serve::client::Client;
use galois_serve::{ServeConfig, Server};
use std::collections::BTreeMap;
use std::time::Instant;

struct Args {
    clients: usize,
    requests: usize,
    apps: Vec<String>,
    threads: Vec<usize>,
    addr: Option<String>,
    cache_dir: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 8,
        requests: 64,
        apps: vec!["bfs".into(), "mis".into(), "mm".into(), "pfp".into()],
        threads: vec![1, 2, 4],
        addr: None,
        cache_dir: None,
        out: Some("BENCH_serve.json".into()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--apps" => args.apps = value("--apps")?.split(',').map(str::to_string).collect(),
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| t.parse().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--addr" => args.addr = Some(value("--addr")?),
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--out" => args.out = Some(value("--out")?),
            "--no-out" => args.out = None,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.clients == 0 || args.requests == 0 || args.apps.is_empty() || args.threads.is_empty() {
        return Err("clients, requests, apps and threads must all be nonempty".into());
    }
    Ok(args)
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_load: {e}");
            std::process::exit(2);
        }
    };

    // An in-process server unless --addr points elsewhere. Workers are
    // sized to the client count: each worker serves one connection to
    // completion, so fewer workers than clients measures queueing, not
    // the executors.
    let mut spawned = None;
    let addr = match &args.addr {
        Some(a) => a.clone(),
        None => {
            let handle = Server::start(ServeConfig {
                workers: args.clients,
                cache_dir: args.cache_dir.clone().map(Into::into),
                ..ServeConfig::default()
            })
            .unwrap_or_else(|e| {
                eprintln!("serve_load: failed to start server: {e}");
                std::process::exit(2);
            });
            let addr = handle.addr().to_string();
            spawned = Some(handle);
            addr
        }
    };

    // Warm pass: materialize every (app, default-input) once so the timed
    // pass measures the resident steady state.
    let mut warm = Client::new(addr.clone());
    for app in &args.apps {
        let body = format!("{{\"app\":\"{app}\",\"threads\":1}}");
        match warm.post("/run", &body) {
            Ok(resp) if resp.status == 200 => {}
            Ok(resp) => {
                eprintln!(
                    "serve_load: warmup {app} -> HTTP {}: {}",
                    resp.status, resp.body
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("serve_load: warmup {app}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Timed pass: each client walks the same deterministic rotation,
    // offset by its index, over keep-alive connections.
    let t0 = Instant::now();
    let results: Vec<Result<Vec<(String, u128)>, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let addr = addr.clone();
                let apps = &args.apps;
                let threads = &args.threads;
                let requests = args.requests;
                s.spawn(move || {
                    let mut client = Client::new(addr);
                    let mut timings = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let pick = c + i * 7;
                        let app = &apps[pick % apps.len()];
                        let budget = threads[(pick / apps.len()) % threads.len()];
                        let body = format!("{{\"app\":\"{app}\",\"threads\":{budget}}}");
                        let rt0 = Instant::now();
                        let resp = client
                            .post("/run", &body)
                            .map_err(|e| format!("client {c} request {i} ({app}): {e}"))?;
                        let micros = rt0.elapsed().as_micros();
                        if resp.status != 200 {
                            return Err(format!(
                                "client {c} request {i} ({app}) -> HTTP {}: {}",
                                resp.status, resp.body
                            ));
                        }
                        timings.push((app.clone(), micros));
                    }
                    Ok(timings)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut all: Vec<(String, u128)> = Vec::new();
    for r in results {
        match r {
            Ok(t) => all.extend(t),
            Err(e) => {
                eprintln!("serve_load: {e}");
                std::process::exit(1);
            }
        }
    }

    let stats_body = Client::new(addr.clone())
        .get("/stats")
        .map(|r| r.body)
        .unwrap_or_else(|e| {
            eprintln!("serve_load: stats: {e}");
            std::process::exit(1);
        });

    let total = all.len();
    let secs = elapsed.as_secs_f64();
    let rps = total as f64 / secs.max(1e-9);
    let mut latencies: Vec<u128> = all.iter().map(|(_, us)| *us).collect();
    latencies.sort_unstable();
    let (p50, p90, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
    );
    let max = latencies.last().copied().unwrap_or(0);

    let mut per_app: BTreeMap<&str, Vec<u128>> = BTreeMap::new();
    for (app, us) in &all {
        per_app.entry(app.as_str()).or_default().push(*us);
    }
    let app_fields: Vec<String> = per_app
        .iter_mut()
        .map(|(app, lats)| {
            lats.sort_unstable();
            format!(
                "\"{app}\":{{\"requests\":{},\"p50_micros\":{},\"p99_micros\":{}}}",
                lats.len(),
                percentile(lats, 0.50),
                percentile(lats, 0.99)
            )
        })
        .collect();

    let report = format!(
        "{{\"bench\":\"serve\",\"clients\":{},\"requests_per_client\":{},\"total_requests\":{},\
         \"elapsed_secs\":{:.3},\"requests_per_sec\":{:.1},\
         \"p50_micros\":{p50},\"p90_micros\":{p90},\"p99_micros\":{p99},\"max_micros\":{max},\
         \"per_app\":{{{}}},\"server_stats\":{}}}",
        args.clients,
        args.requests,
        total,
        secs,
        rps,
        app_fields.join(","),
        stats_body,
    );

    println!("{report}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("serve_load: write {path}: {e}");
            std::process::exit(1);
        }
    }

    if let Some(mut handle) = spawned.take() {
        handle.shutdown();
    }
}
