//! Length-prefixed frame protocol for distributed lockstep replication.
//!
//! Deterministic execution makes replica cross-checking cheap: a replica's
//! entire observable schedule compresses to one 8-byte prefix hash per
//! round, so the wire protocol is tiny — a versioned handshake, a job
//! assignment carrying the run's identity ([`RunManifest`] JSON: input key
//! plus `ExecConfig`), then a stream of `(round, hash)` pairs and a final
//! result frame. Frames are a `u32` little-endian length, then 1 kind
//! byte, then the payload, over a plain `std::net::TcpStream`.
//!
//! Reading reuses `serve::http`'s timeout discipline: a short
//! [`READ_TIMEOUT`](crate::http::READ_TIMEOUT) is installed on the socket
//! and [`read_frame`] loops on timeout ticks, accumulating *idle* time
//! against the caller's deadline budget — so a dead peer is detected in
//! bounded time while a merely slow one can keep a connection alive by
//! making progress.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Wire protocol version. A coordinator rejects (with [`Frame::Reject`])
/// any replica whose `HELLO` carries a different version.
pub const WIRE_VERSION: u32 = 1;

/// Magic bytes opening every `HELLO`: "GaLois locKStep".
pub const WIRE_MAGIC: [u8; 4] = *b"GLKS";

/// Hard cap on one frame's payload — a round hash is 16 bytes and a job is
/// one manifest, so anything near this bound is a corrupt peer.
pub const MAX_FRAME: usize = 1 << 20;

const KIND_HELLO: u8 = 0x01;
const KIND_JOB: u8 = 0x02;
const KIND_REJECT: u8 = 0x03;
const KIND_ROUND: u8 = 0x10;
const KIND_DONE: u8 = 0x11;
const KIND_FAULT: u8 = 0x12;
const KIND_EVICT: u8 = 0x20;
const KIND_ACK: u8 = 0x21;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Replica → coordinator, first frame: magic + protocol version.
    Hello {
        /// The replica's [`WIRE_VERSION`].
        version: u32,
    },
    /// Coordinator → replica: the job assignment — replica id, thread
    /// budget to run at (0 = use the manifest's recorded budget), and the
    /// reference [`RunManifest`] JSON (input key + `ExecConfig` + expected
    /// chain).
    Job {
        /// Id the coordinator assigned this replica.
        replica: u32,
        /// Thread budget override (0 = manifest's recorded budget).
        threads: u32,
        /// The reference manifest, in its canonical JSON form.
        manifest: String,
    },
    /// Coordinator → replica: handshake refused (version skew, full house).
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Replica → coordinator, once per barrier: the round's chain prefix
    /// hash.
    Round {
        /// Chain sequence index.
        seq: u64,
        /// Prefix hash after this round.
        hash: u64,
    },
    /// Replica → coordinator: the run finished cleanly.
    Done {
        /// Total rounds in the replica's chain.
        rounds: u64,
        /// Application output hash.
        output_hash: u64,
        /// Final run fingerprint.
        fingerprint: u64,
    },
    /// Replica → coordinator: the run ended in a structured fault (or the
    /// replica could not execute the job at all).
    Fault {
        /// The fault's process exit code.
        exit_code: u32,
        /// Canonical fault message.
        message: String,
    },
    /// Coordinator → replica: you diverged and are out of the vote.
    Evict {
        /// First divergent round.
        round: u64,
        /// Why, for the replica's log.
        reason: String,
    },
    /// Coordinator → replica: run settled, your result was accepted.
    Ack,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The socket failed or the peer hung up mid-frame.
    Io(std::io::Error),
    /// The peer went silent longer than the caller's idle budget.
    Timeout,
    /// The peer closed cleanly between frames.
    Closed,
    /// The bytes are not a well-formed frame.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Timeout => write!(f, "peer timed out"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let span = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or_else(|| WireError::Malformed("frame payload truncated".into()))?;
        self.pos += n;
        Ok(span)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("non-UTF-8 string in frame".into()))
    }

    fn end(&self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes in frame".into()))
        }
    }
}

impl Frame {
    /// Encodes the frame: `u32 LE length` (kind byte + payload), kind,
    /// payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        let kind = match self {
            Frame::Hello { version } => {
                payload.extend_from_slice(&WIRE_MAGIC);
                put_u32(&mut payload, *version);
                KIND_HELLO
            }
            Frame::Job {
                replica,
                threads,
                manifest,
            } => {
                put_u32(&mut payload, *replica);
                put_u32(&mut payload, *threads);
                put_str(&mut payload, manifest);
                KIND_JOB
            }
            Frame::Reject { reason } => {
                put_str(&mut payload, reason);
                KIND_REJECT
            }
            Frame::Round { seq, hash } => {
                put_u64(&mut payload, *seq);
                put_u64(&mut payload, *hash);
                KIND_ROUND
            }
            Frame::Done {
                rounds,
                output_hash,
                fingerprint,
            } => {
                put_u64(&mut payload, *rounds);
                put_u64(&mut payload, *output_hash);
                put_u64(&mut payload, *fingerprint);
                KIND_DONE
            }
            Frame::Fault { exit_code, message } => {
                put_u32(&mut payload, *exit_code);
                put_str(&mut payload, message);
                KIND_FAULT
            }
            Frame::Evict { round, reason } => {
                put_u64(&mut payload, *round);
                put_str(&mut payload, reason);
                KIND_EVICT
            }
            Frame::Ack => KIND_ACK,
        };
        let mut out = Vec::with_capacity(5 + payload.len());
        put_u32(&mut out, 1 + payload.len() as u32);
        out.push(kind);
        out.extend_from_slice(&payload);
        out
    }

    fn decode(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
        let mut c = Cursor {
            bytes: payload,
            pos: 0,
        };
        let frame = match kind {
            KIND_HELLO => {
                let magic = c.take(4)?;
                if magic != WIRE_MAGIC {
                    return Err(WireError::Malformed("bad hello magic".into()));
                }
                Frame::Hello { version: c.u32()? }
            }
            KIND_JOB => Frame::Job {
                replica: c.u32()?,
                threads: c.u32()?,
                manifest: c.string()?,
            },
            KIND_REJECT => Frame::Reject {
                reason: c.string()?,
            },
            KIND_ROUND => Frame::Round {
                seq: c.u64()?,
                hash: c.u64()?,
            },
            KIND_DONE => Frame::Done {
                rounds: c.u64()?,
                output_hash: c.u64()?,
                fingerprint: c.u64()?,
            },
            KIND_FAULT => Frame::Fault {
                exit_code: c.u32()?,
                message: c.string()?,
            },
            KIND_EVICT => Frame::Evict {
                round: c.u64()?,
                reason: c.string()?,
            },
            KIND_ACK => Frame::Ack,
            other => {
                return Err(WireError::Malformed(format!(
                    "unknown frame kind {other:#x}"
                )))
            }
        };
        c.end()?;
        Ok(frame)
    }
}

/// Writes one frame.
pub fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&frame.encode())?;
    stream.flush()
}

/// Reads one frame, tolerating up to `idle_budget` of peer silence.
///
/// The stream must have a short read timeout installed (the
/// [`READ_TIMEOUT`](crate::http::READ_TIMEOUT) discipline): each timeout
/// tick charges elapsed silence against `idle_budget`; any received byte
/// resets the meter. Returns [`WireError::Closed`] only on a clean EOF
/// *between* frames — EOF mid-frame is an I/O error.
pub fn read_frame(stream: &mut TcpStream, idle_budget: Duration) -> Result<Frame, WireError> {
    let mut header = [0u8; 4];
    read_exact_idle(stream, &mut header, idle_budget, true)?;
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(WireError::Malformed("zero-length frame".into()));
    }
    if len > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "frame of {len} bytes exceeds cap"
        )));
    }
    let mut body = vec![0u8; len];
    read_exact_idle(stream, &mut body, idle_budget, false)?;
    Frame::decode(body[0], &body[1..])
}

/// `read_exact` under the timeout-tick discipline. `clean_eof_ok` treats
/// EOF before the first byte as [`WireError::Closed`] (frame boundary).
fn read_exact_idle(
    stream: &mut TcpStream,
    buf: &mut [u8],
    idle_budget: Duration,
    clean_eof_ok: bool,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && clean_eof_ok {
                    Err(WireError::Closed)
                } else {
                    Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    )))
                };
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if last_progress.elapsed() > idle_budget {
                    return Err(WireError::Timeout);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let frames = [
            Frame::Hello {
                version: WIRE_VERSION,
            },
            Frame::Job {
                replica: 2,
                threads: 4,
                manifest: "{\"version\":1}".into(),
            },
            Frame::Reject {
                reason: "version skew".into(),
            },
            Frame::Round {
                seq: 17,
                hash: 0xdead_beef_cafe_f00d,
            },
            Frame::Done {
                rounds: 40,
                output_hash: 1,
                fingerprint: 2,
            },
            Frame::Fault {
                exit_code: 10,
                message: "operator panic".into(),
            },
            Frame::Evict {
                round: 9,
                reason: "minority chain".into(),
            },
            Frame::Ack,
        ];
        for frame in frames {
            let bytes = frame.encode();
            let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
            assert_eq!(len, bytes.len() - 4);
            let back = Frame::decode(bytes[4], &bytes[5..]).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Unknown kind.
        assert!(matches!(
            Frame::decode(0x7f, &[]),
            Err(WireError::Malformed(_))
        ));
        // Truncated payload.
        assert!(matches!(
            Frame::decode(KIND_ROUND, &[1, 2, 3]),
            Err(WireError::Malformed(_))
        ));
        // Trailing bytes.
        let mut bytes = Frame::Ack.encode();
        bytes.push(0);
        assert!(matches!(
            Frame::decode(bytes[4], &bytes[5..]),
            Err(WireError::Malformed(_))
        ));
        // Bad magic.
        let mut hello = Vec::new();
        hello.extend_from_slice(b"NOPE");
        put_u32(&mut hello, WIRE_VERSION);
        assert!(matches!(
            Frame::decode(KIND_HELLO, &hello),
            Err(WireError::Malformed(_))
        ));
        // String length lying past the payload end.
        let mut fault = Vec::new();
        put_u32(&mut fault, 10);
        put_u32(&mut fault, 1000);
        fault.extend_from_slice(b"short");
        assert!(matches!(
            Frame::decode(KIND_FAULT, &fault),
            Err(WireError::Malformed(_))
        ));
    }
}
