//! Property tests for `serve::json`: drawn flat objects round-trip through
//! the scanner, and *no* malformed input — truncations, mutations, bad
//! escapes, deep nesting, oversized numbers, duplicate keys — ever gets
//! anything but a structured `Err`. The scanner guards a network-facing
//! endpoint; panicking on attacker-shaped bytes would take a worker with it.

use galois_serve::json::{escape, parse_flat_object, JsonValue};
use proptest::prelude::*;

/// Renders pairs as the canonical request document.
fn render(pairs: &[(String, JsonValue)]) -> String {
    let fields: Vec<String> = pairs
        .iter()
        .map(|(k, v)| {
            let value = match v {
                JsonValue::Null => "null".to_string(),
                JsonValue::Bool(b) => b.to_string(),
                JsonValue::UInt(n) => n.to_string(),
                JsonValue::Str(s) => format!("\"{}\"", escape(s)),
            };
            format!("\"{}\":{}", escape(k), value)
        })
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// A drawn value: kind selector + payload. Strings exercise the escape
/// table (quotes, backslashes, control bytes, multi-byte UTF-8).
fn value_from(kind: u8, payload: u64) -> JsonValue {
    const CHARS: [char; 12] = [
        'a', 'Z', '9', '_', '"', '\\', '\n', '\t', '\u{1}', 'é', '✓', ' ',
    ];
    match kind % 4 {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(payload.is_multiple_of(2)),
        2 => JsonValue::UInt(payload),
        _ => {
            let mut s = String::new();
            let mut p = payload;
            for _ in 0..(payload % 9) {
                s.push(CHARS[(p % CHARS.len() as u64) as usize]);
                p = p.rotate_right(7).wrapping_add(13);
            }
            JsonValue::Str(s)
        }
    }
}

fn pairs_from(draws: &[(u8, u64)]) -> Vec<(String, JsonValue)> {
    draws
        .iter()
        .enumerate()
        .map(|(i, &(kind, payload))| (format!("k{i}"), value_from(kind, payload)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// parse(render(pairs)) == pairs for any drawn flat object.
    fn drawn_objects_round_trip(draws in proptest::collection::vec((0u8..=255, 0u64..u64::MAX), 0..12)) {
        let pairs = pairs_from(&draws);
        let doc = render(&pairs);
        let parsed = parse_flat_object(&doc);
        prop_assert_eq!(parsed, Ok(pairs));
    }

    /// Whitespace between tokens is insignificant: a space-padded render
    /// parses to the same pairs.
    fn whitespace_is_insignificant(draws in proptest::collection::vec((0u8..=255, 0u64..1000), 1..8)) {
        let pairs = pairs_from(&draws);
        let doc = render(&pairs)
            .replace(":", " : ")
            .replace("{\"", "{ \"")
            .replace("}", " }");
        prop_assert_eq!(parse_flat_object(&doc), Ok(pairs));
    }

    /// Every strict prefix of a valid document is an error, never a panic
    /// and never a silent partial parse.
    fn strict_prefixes_never_parse(
        draws in proptest::collection::vec((0u8..=255, 0u64..1000), 1..8),
    ) {
        let doc = render(&pairs_from(&draws));
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let prefix = &doc[..cut];
            prop_assert!(
                parse_flat_object(prefix).is_err(),
                "prefix {prefix:?} of {doc:?} parsed"
            );
        }
    }

    /// Duplicating any key of a valid document makes it an error.
    fn duplicate_keys_are_rejected(
        draws in proptest::collection::vec((0u8..=255, 0u64..1000), 1..8),
        pick in 0usize..1000,
    ) {
        let mut pairs = pairs_from(&draws);
        let dup = pairs[pick % pairs.len()].clone();
        pairs.push(dup);
        prop_assert!(parse_flat_object(&render(&pairs)).is_err());
    }

    /// Single-byte ASCII mutations of a valid document either parse to
    /// *something* or error — they never panic, and a mutated key/value
    /// byte never round-trips to the original pairs.
    fn single_byte_mutations_never_panic(
        draws in proptest::collection::vec((0u8..=255, 0u64..1000), 1..6),
        pos in 0usize..10_000,
        mutant in 0u8..128,
    ) {
        let pairs = pairs_from(&draws);
        let doc = render(&pairs);
        let mut bytes = doc.clone().into_bytes();
        let at = pos % bytes.len();
        bytes[at] = mutant;
        if let Ok(mutated) = String::from_utf8(bytes) {
            // Must not panic; outcome (Ok or Err) is input-dependent.
            let _ = parse_flat_object(&mutated);
        }
    }

    /// Arbitrary ASCII garbage never panics the scanner.
    fn ascii_garbage_never_panics(bytes in proptest::collection::vec(0u8..128, 0..64)) {
        let text: String = bytes.iter().map(|&b| b as char).collect();
        let _ = parse_flat_object(&text);
    }

    /// Numbers longer than u64 are a structured error, not a wrap or crash.
    fn oversized_numbers_are_rejected(digits in 20usize..60, lead in 1u8..10) {
        let doc = format!("{{\"n\":{}{}}}", lead, "9".repeat(digits));
        let err = parse_flat_object(&doc).unwrap_err();
        prop_assert!(err.contains("out of range"), "{err}");
    }

    /// Deeply nested containers are rejected at the first opener — the
    /// scanner must hold no recursion for an attacker to exhaust.
    fn deep_nesting_is_rejected_flat(depth in 1usize..2_000, open in 0u8..2) {
        let opener = if open == 0 { "[" } else { "{" };
        let doc = format!("{{\"k\":{}}}", opener.repeat(depth));
        prop_assert!(parse_flat_object(&doc).is_err());
    }
}

/// The escape-table edges the property draws may not pin down exactly.
#[test]
fn malformed_escapes_are_structured_errors() {
    for doc in [
        r#"{"k":"\x"}"#,         // unknown escape
        r#"{"k":"\"#,            // escape at end of input
        r#"{"k":"\u12"}"#,       // truncated \u
        r#"{"k":"\ud800"}"#,     // lone surrogate
        "{\"k\":\"raw\u{1}\"}",  // raw control byte
        r#"{"k":"unterminated"#, // unterminated string
        "{\"k\":\"\u{80}",       // truncated after high byte... (lossy)
    ] {
        let result = parse_flat_object(doc);
        assert!(result.is_err(), "{doc:?} parsed: {result:?}");
    }
    // Invalid UTF-8 can't even be a &str, so the scanner never sees it —
    // but a truncated multi-byte sequence mid-string must error cleanly.
    let truncated = "{\"k\":\"é";
    assert!(parse_flat_object(truncated).is_err());
}
