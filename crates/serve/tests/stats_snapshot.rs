//! Regression tests for `GET /stats` coherence: every counter family is
//! snapshotted under ONE lock acquisition, so a reader can never observe a
//! torn tally (e.g. a request counted in `requests` whose outcome hasn't
//! landed in `ok`/`faults` yet, or a cold load without its resident
//! entry). The pre-fix implementation read nine independent atomics one
//! after another — exactly the race these tests hammer.

use galois_harness::{App, InputConfig, InputStore};
use galois_serve::{client, ServeConfig, ServeStats, Server, StatsSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Writers commit paired deltas (`requests` together with exactly one
/// outcome counter, the way `serve_connection` does); every concurrent
/// snapshot must satisfy `requests == ok + faults + bad_requests` exactly.
#[test]
fn concurrent_snapshots_are_never_torn() {
    const WRITERS: usize = 4;
    const COMMITS: u64 = 20_000;
    let stats = Arc::new(ServeStats::default());
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = stats.snapshot();
                assert_eq!(
                    s.requests,
                    s.ok + s.faults + s.bad_requests,
                    "torn stats snapshot: {s:?}"
                );
                observed += 1;
            }
            observed
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                for i in 0..COMMITS {
                    let mut delta = StatsSnapshot {
                        requests: 1,
                        ..StatsSnapshot::default()
                    };
                    match (w + i as usize) % 3 {
                        0 => delta.ok = 1,
                        1 => delta.faults = 1,
                        _ => delta.bad_requests = 1,
                    }
                    stats.commit(&delta);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let observed = reader.join().unwrap();
    assert!(observed > 0, "reader never snapshotted");

    let s = stats.snapshot();
    assert_eq!(s.requests, WRITERS as u64 * COMMITS);
    assert_eq!(s.requests, s.ok + s.faults + s.bad_requests);
}

/// The input store's counters move atomically with its map: at any moment
/// `resident_inputs == cold_loads` (every cold load inserts exactly one
/// entry, and both change under the same lock).
#[test]
fn store_snapshot_counters_move_with_the_map() {
    const THREADS: usize = 4;
    const GETS: usize = 8;
    let store = Arc::new(InputStore::new(None));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let s = store.snapshot();
                assert_eq!(
                    s.resident_inputs as u64, s.cold_loads,
                    "cold load visible without its resident entry: {s:?}"
                );
            }
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..GETS {
                    // Mix repeat keys (warm hits) with fresh ones (cold
                    // loads) across threads.
                    let seed = 42 + ((t + i) % 6) as u64;
                    let input = InputConfig {
                        size: Some(64),
                        ..InputConfig::from_seed(seed)
                    };
                    store.get(App::Bfs, &input);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().unwrap();

    let s = store.snapshot();
    assert_eq!(s.resident_inputs as u64, s.cold_loads);
    assert_eq!(s.cold_loads, 6, "6 distinct seeds were requested");
    assert_eq!(
        s.warm_hits + s.cold_loads,
        (THREADS * GETS) as u64,
        "every get is exactly one warm hit or one cold load"
    );
}

fn field(body: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let at = body
        .find(&key)
        .unwrap_or_else(|| panic!("no {name} in {body}"))
        + key.len();
    body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// End-to-end: `/stats` responses observed *during* a request storm are
/// internally consistent — outcome tallies never exceed `requests`, and
/// the final body accounts for every request the storm sent.
#[test]
fn stats_endpoint_is_coherent_under_load() {
    const CLIENTS: usize = 3;
    const REQUESTS: usize = 6;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.addr().to_string();

    let storm: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for i in 0..REQUESTS {
                    // Alternate valid runs and malformed bodies.
                    let body = if (c + i) % 2 == 0 {
                        r#"{"app":"bfs","size":200}"#.to_string()
                    } else {
                        "{\"app\":".to_string()
                    };
                    client::post(&addr, "/run", &body).expect("post /run");
                }
            })
        })
        .collect();
    // Poll /stats while the storm is in flight.
    let mut polls = 0;
    while storm.iter().any(|t| !t.is_finished()) {
        let resp = client::get(&addr, "/stats").expect("get /stats");
        let ok = field(&resp.body, "ok");
        let bad = field(&resp.body, "bad_requests");
        let requests = field(&resp.body, "requests");
        assert!(
            ok + bad <= requests,
            "outcomes outran requests: {}",
            resp.body
        );
        polls += 1;
    }
    for t in storm {
        t.join().unwrap();
    }
    assert!(polls > 0);

    let resp = client::get(&addr, "/stats").expect("final /stats");
    assert_eq!(field(&resp.body, "ok"), (CLIENTS * REQUESTS / 2) as u64);
    assert_eq!(
        field(&resp.body, "bad_requests"),
        (CLIENTS * REQUESTS / 2) as u64
    );
    assert_eq!(field(&resp.body, "worker_panics"), 0);
    client::post(&addr, "/shutdown", "").ok();
    server.wait();
}
