//! Multi-tenant fault isolation and concurrency soak for `galois-serve`.
//!
//! The serving restatement of PR-5's containment property: one tenant's
//! faulting run is quarantined into a *structured, deterministic* error
//! response while concurrent clean tenants complete normally — the
//! process never dies, and the fault report itself is byte-identical at
//! any thread budget. Plus a soak: 16 simultaneous keep-alive clients
//! over mixed apps, timeout-bounded, with exact warm/cold cache
//! accounting asserted afterwards (the store counters are deterministic
//! even under concurrency, because builds happen under the store lock).

use galois_serve::client::Client;
use galois_serve::{ServeConfig, Server};
use std::sync::mpsc;
use std::time::Duration;

fn json_u64(body: &str, field: &str) -> u64 {
    let pat = format!("\"{field}\":");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("field {field} missing in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("field {field} is not an integer in {body}"))
}

#[test]
fn faulting_tenant_is_quarantined_while_clean_tenants_complete() {
    let mut handle = Server::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // Clean tenants run concurrently with the faulting one below; each
    // reports its outcomes through the channel so a hung request fails
    // the test with a timeout instead of wedging the suite.
    let (tx, rx) = mpsc::channel::<Result<(), String>>();
    let clean_threads: Vec<_> = ["mis", "pfp"]
        .into_iter()
        .map(|app| {
            let addr = addr.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let mut check = || -> Result<(), String> {
                    for _ in 0..2 {
                        let body = format!("{{\"app\":\"{app}\",\"threads\":2}}");
                        let resp = client.post("/run", &body)?;
                        if resp.status != 200 {
                            return Err(format!("{app} -> HTTP {}: {}", resp.status, resp.body));
                        }
                    }
                    Ok(())
                };
                tx.send(check()).unwrap();
            })
        })
        .collect();

    // The faulting tenant: panic injection arms roughly one fault per 64
    // failsafe crossings, so a 2000-task bfs run faults for essentially
    // every seed — scan a handful so the test never depends on one draw.
    let mut chaos = Client::new(addr.clone());
    let mut fault_seed = None;
    for seed in 1u64..=5 {
        let body = format!("{{\"app\":\"bfs\",\"threads\":2,\"chaos_panics\":{seed}}}");
        let resp = chaos.post("/run", &body).unwrap();
        if resp.status == 500 && resp.body.contains("\"status\":\"fault\"") {
            fault_seed = Some((seed, resp.body));
            break;
        }
    }
    let (seed, fault_at_2) = fault_seed.expect("no panic seed in 1..=5 faulted a 2000-task run");

    // Structured error surface: kind, exit code, canonical task id/round.
    assert!(
        fault_at_2.contains("\"kind\":\"operator_panic\""),
        "{fault_at_2}"
    );
    assert_eq!(json_u64(&fault_at_2, "exit_code"), 10);
    assert!(fault_at_2.contains("\"task_id\":"), "{fault_at_2}");
    assert!(fault_at_2.contains("\"round\":"), "{fault_at_2}");

    // The fault report is deterministic: the same request at a different
    // thread budget produces the byte-identical fault body.
    let body = format!("{{\"app\":\"bfs\",\"threads\":4,\"chaos_panics\":{seed}}}");
    let resp = chaos.post("/run", &body).unwrap();
    assert_eq!(resp.status, 500);
    assert_eq!(
        resp.body, fault_at_2,
        "fault body changed between budgets 2 and 4"
    );

    // Clean tenants were unaffected by the quarantined faults.
    for _ in &clean_threads {
        rx.recv_timeout(Duration::from_secs(300))
            .expect("clean tenant timed out")
            .unwrap();
    }
    for t in clean_threads {
        t.join().unwrap();
    }

    // The process survived: liveness holds, the faults were counted as
    // contained run faults, and no worker-level panic ever fired.
    let mut client = Client::new(addr);
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let stats = client.get("/stats").unwrap();
    assert!(json_u64(&stats.body, "faults") >= 2, "{}", stats.body);
    assert_eq!(json_u64(&stats.body, "worker_panics"), 0, "{}", stats.body);
    // 4 clean-tenant runs, plus any scanned panic seeds that drew no fault.
    assert!(json_u64(&stats.body, "ok") >= 4, "{}", stats.body);
    handle.shutdown();
}

#[test]
fn sixteen_concurrent_clients_soak_with_exact_cache_accounting() {
    const CLIENTS: usize = 16;
    const REQUESTS: usize = 3;
    let apps = ["bfs", "mis", "mm", "pfp"];

    let mut handle = Server::start(ServeConfig {
        workers: 8,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // Every client reports (app, body) per response; recv_timeout bounds
    // the whole soak so a stuck worker fails fast instead of hanging CI.
    let (tx, rx) = mpsc::channel::<Result<Vec<(String, String)>, String>>();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let mut run = || -> Result<Vec<(String, String)>, String> {
                    let mut out = Vec::with_capacity(REQUESTS);
                    for i in 0..REQUESTS {
                        let app = apps[(c + i) % apps.len()];
                        let budget = 1 + (c + i) % 2;
                        let body = format!("{{\"app\":\"{app}\",\"threads\":{budget}}}");
                        let resp = client.post("/run", &body)?;
                        if resp.status != 200 {
                            return Err(format!(
                                "client {c} {app} -> HTTP {}: {}",
                                resp.status, resp.body
                            ));
                        }
                        out.push((app.to_string(), resp.body));
                    }
                    Ok(out)
                };
                tx.send(run()).unwrap();
            })
        })
        .collect();

    let mut by_app: Vec<(String, String)> = Vec::new();
    for _ in 0..CLIENTS {
        let batch = rx
            .recv_timeout(Duration::from_secs(300))
            .expect("soak client timed out")
            .unwrap();
        by_app.extend(batch);
    }
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(by_app.len(), CLIENTS * REQUESTS);

    // Bodies exclude the thread budget, so every response for one app —
    // across clients, budgets 1 and 2, warm and cold — is byte-identical.
    for app in apps {
        let bodies: Vec<&str> = by_app
            .iter()
            .filter(|(a, _)| a == app)
            .map(|(_, b)| b.as_str())
            .collect();
        assert!(bodies.len() >= CLIENTS * REQUESTS / apps.len());
        for b in &bodies[1..] {
            assert_eq!(*b, bodies[0], "{app} responses diverged under concurrency");
        }
    }

    // Exact cache accounting: bfs, the shared mis/mm graph, and the pfp
    // network each load cold exactly once (builds serialize under the
    // store lock); every other request is a warm hit.
    let mut client = Client::new(addr);
    let stats = client.get("/stats").unwrap();
    assert_eq!(json_u64(&stats.body, "cold_loads"), 3, "{}", stats.body);
    assert_eq!(
        json_u64(&stats.body, "warm_hits"),
        (CLIENTS * REQUESTS - 3) as u64,
        "{}",
        stats.body
    );
    assert_eq!(
        json_u64(&stats.body, "resident_inputs"),
        3,
        "{}",
        stats.body
    );
    assert_eq!(json_u64(&stats.body, "ok"), (CLIENTS * REQUESTS) as u64);
    assert_eq!(json_u64(&stats.body, "worker_panics"), 0);
    handle.shutdown();
}
