//! Cross-process divergence-and-failover battery for distributed lockstep
//! replication (`galois_serve::lockstep`).
//!
//! Every scenario here runs *real* `galois replicate` subprocesses against
//! a coordinator — either an in-process [`Coordinator`] (so the test can
//! kill children mid-run and inspect the report object directly) or the
//! `galois lockstep --spawn` CLI (so the exit-code contract is proven at
//! the process boundary):
//!
//! - clean N-process agreement is byte-identical to a local run at mixed
//!   thread budgets;
//! - a perturbed replica is caught at an exact first divergent round,
//!   stable across repeats;
//! - a SIGKILL'd replica degrades the session to the remaining quorum,
//!   whose result still matches the serial oracle;
//! - a doctored *majority* makes the coordinator refuse (exit 14) rather
//!   than vote against the recording;
//! - a slow replica cannot balloon coordinator memory past the window.

use galois_core::manifest::{LockstepEventKind, LockstepOutcome, LockstepReport};
use galois_core::RunManifest;
use galois_harness::subprocess::{galois_bin, spawn_replica, ReplicaSpec};
use galois_harness::{record_run, run_app, unperturbed, App, InputConfig, Variant};
use galois_serve::lockstep::{Coordinator, LockstepConfig, EXIT_DIVERGENCE, EXIT_NO_QUORUM};
use std::path::{Path, PathBuf};
use std::process::Child;
use std::time::Duration;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("galois-lockstep-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records the default bfs run (the battery's reference workload) once per
/// call — recording is itself deterministic, so every call agrees.
fn record_bfs() -> RunManifest {
    record_run(App::Bfs, 2, None, &InputConfig::from_seed(42)).expect("record bfs")
}

/// Persists a scenario's report where CI can pick it up as an artifact.
fn persist_report(name: &str, report: &LockstepReport) {
    let Ok(dir) = std::env::var("GALOIS_LOCKSTEP_REPORT_DIR") else {
        return;
    };
    std::fs::create_dir_all(&dir).ok();
    report
        .save(&Path::new(&dir).join(format!("{name}.json")))
        .ok();
}

/// Binds an in-process coordinator, spawns `specs.len()` real replica
/// subprocesses against it, and runs the session to completion. Children
/// are killed/reaped on every path.
fn run_session(
    manifest: RunManifest,
    config: LockstepConfig,
    specs: &[ReplicaSpec],
    kill_after: Option<(usize, Duration)>,
) -> galois_serve::lockstep::LockstepRunResult {
    let coordinator = Coordinator::bind(manifest, config, "127.0.0.1:0").expect("bind");
    let addr = coordinator.addr().to_string();
    let bin = galois_bin();
    let mut children: Vec<Child> = specs
        .iter()
        .map(|spec| spawn_replica(&bin, &addr, spec).expect("spawn replica"))
        .collect();
    let killer = kill_after.map(|(victim, delay)| {
        let mut child = children.remove(victim);
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            child.kill().expect("kill replica");
            child.wait().expect("reap killed replica");
        })
    });
    let result = coordinator.run();
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    if let Some(killer) = killer {
        killer.join().expect("killer thread");
    }
    result.expect("coordinator run")
}

/// Runs the `galois lockstep --spawn` CLI against `manifest_path` and
/// returns `(exit_code, report)`.
fn run_cli(manifest_path: &Path, report_path: &Path, extra: &[&str]) -> (i32, LockstepReport) {
    let out = std::process::Command::new(galois_bin())
        .arg("lockstep")
        .arg(manifest_path)
        .args(["--replicas", "3", "--spawn", "--report"])
        .arg(report_path)
        .args(extra)
        .output()
        .expect("run galois lockstep");
    let code = out.status.code().unwrap_or_else(|| {
        panic!(
            "lockstep CLI killed by signal; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        )
    });
    let report = LockstepReport::load(report_path).unwrap_or_else(|e| {
        panic!(
            "report unreadable ({e}); stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        )
    });
    (code, report)
}

/// Clean agreement: at 2 and 3 replicas, with *different* thread budgets
/// per replica, every process reproduces the recorded chain and the
/// settled result is byte-identical to a local deterministic run.
#[test]
fn clean_agreement_is_byte_identical_to_local_run_at_mixed_budgets() {
    let manifest = record_bfs();
    let input = InputConfig::from_seed(42);
    let (local, _) = run_app(
        App::Bfs,
        Variant::Deterministic,
        4,
        None,
        &input,
        &unperturbed,
    )
    .expect("local");
    assert_eq!(local.fingerprint, manifest.final_fingerprint);

    for replicas in [2usize, 3] {
        let specs: Vec<ReplicaSpec> = (0..replicas)
            .map(|i| ReplicaSpec {
                threads: [1, 4][i % 2],
                ..ReplicaSpec::default()
            })
            .collect();
        let result = run_session(
            manifest.clone(),
            LockstepConfig {
                replicas,
                ..LockstepConfig::default()
            },
            &specs,
            None,
        );
        persist_report(&format!("clean-{replicas}"), &result.report);
        assert_eq!(result.exit_code, 0, "events: {:?}", result.report.events);
        assert_eq!(result.report.outcome, LockstepOutcome::Agreed);
        assert!(
            result.report.events.is_empty(),
            "{:?}",
            result.report.events
        );
        assert_eq!(
            result.report.survivors,
            (0..replicas as u64).collect::<Vec<_>>()
        );
        assert_eq!(result.report.rounds as usize, manifest.round_hashes.len());
        assert_eq!(result.report.final_fingerprint, local.fingerprint);
        assert_eq!(result.report.output_hash, local.output_hash);
    }
}

/// The coordinator's report and the emitted manifest survive the process
/// boundary: the CLI's `--emit-manifest` copy is byte-identical to the
/// recording, and the saved report round-trips through its JSON form.
#[test]
fn cli_clean_run_emits_byte_identical_manifest_and_report() {
    let dir = scratch_dir();
    let manifest_path = dir.join("clean.manifest.json");
    let emitted_path = dir.join("clean.emitted.json");
    let report_path = dir.join("clean.report.json");
    record_bfs().save(&manifest_path).unwrap();

    let (code, report) = run_cli(
        &manifest_path,
        &report_path,
        &["--emit-manifest", emitted_path.to_str().unwrap()],
    );
    persist_report("cli-clean", &report);
    assert_eq!(code, 0, "events: {:?}", report.events);
    assert_eq!(report.outcome, LockstepOutcome::Agreed);
    let recorded = std::fs::read(&manifest_path).unwrap();
    let emitted = std::fs::read(&emitted_path).unwrap();
    assert_eq!(recorded, emitted, "emitted manifest must be byte-identical");
    let reloaded = LockstepReport::load(&report_path).unwrap();
    assert_eq!(reloaded, report);
    std::fs::remove_dir_all(&dir).ok();
}

/// A replica with a planted schedule perturbation is detected at an exact
/// first divergent round — and because detection is itself deterministic,
/// that round is identical across repeated sessions.
#[test]
fn planted_divergence_is_pinned_to_a_stable_first_round() {
    let dir = scratch_dir();
    let manifest_path = dir.join("div.manifest.json");
    let report_path = dir.join("div.report.json");
    record_bfs().save(&manifest_path).unwrap();

    let repeats = if cfg!(debug_assertions) { 3 } else { 10 };
    let mut first_round: Option<u64> = None;
    for rep in 0..repeats {
        let (code, report) = run_cli(&manifest_path, &report_path, &["--perturb", "2:16"]);
        if rep == 0 {
            persist_report("divergence", &report);
        }
        assert_eq!(code, EXIT_DIVERGENCE, "repeat {rep}: {:?}", report.events);
        assert_eq!(report.outcome, LockstepOutcome::Diverged);
        // Coordinator ids follow join order, which races across spawned
        // children — the *count* and the divergent round are what's
        // deterministic, not which id the perturbed child landed on.
        assert_eq!(report.survivors.len(), 2);
        let divergences = report.events_of(LockstepEventKind::Divergence);
        assert_eq!(divergences.len(), 1, "repeat {rep}: {:?}", report.events);
        let evicted = divergences[0].replica.expect("divergence names a replica");
        assert!(!report.survivors.contains(&evicted));
        assert_ne!(divergences[0].expected, divergences[0].actual);
        assert_eq!(report.events_of(LockstepEventKind::Eviction).len(), 1);
        match first_round {
            None => first_round = Some(divergences[0].round),
            Some(r) => assert_eq!(
                divergences[0].round, r,
                "first divergent round drifted on repeat {rep}"
            ),
        }
        // The survivors still reproduced the recording in full.
        assert_eq!(report.rounds as usize, record_bfs().round_hashes.len());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGKILL one of three replicas mid-stream: the session degrades to the
/// remaining quorum with a structured death event, and the survivors'
/// result still matches the serial oracle.
#[test]
fn killed_replica_degrades_to_quorum_matching_serial_oracle() {
    let manifest = record_bfs();
    let input = InputConfig::from_seed(42);
    let (oracle, _) =
        run_app(App::Bfs, Variant::Serial, 1, None, &input, &unperturbed).expect("oracle");

    // Replica 2 is throttled so the kill reliably lands while it is still
    // streaming rounds; 0 and 1 finish at full speed.
    let specs = [
        ReplicaSpec::default(),
        ReplicaSpec::default(),
        ReplicaSpec {
            throttle_ms: 100,
            ..ReplicaSpec::default()
        },
    ];
    let result = run_session(
        manifest.clone(),
        LockstepConfig {
            replicas: 3,
            ..LockstepConfig::default()
        },
        &specs,
        Some((2, Duration::from_millis(1500))),
    );
    persist_report("killed", &result.report);
    assert_eq!(result.exit_code, 0, "events: {:?}", result.report.events);
    assert_eq!(result.report.outcome, LockstepOutcome::Agreed);
    assert_eq!(result.report.survivors.len(), 2);
    let deaths = result.report.events_of(LockstepEventKind::Death);
    assert_eq!(deaths.len(), 1, "{:?}", result.report.events);
    let dead = deaths[0].replica.expect("death names a replica");
    assert!(!result.report.survivors.contains(&dead));
    assert_eq!(result.report.output_hash, oracle.output_hash);
    assert_eq!(result.report.final_fingerprint, manifest.final_fingerprint);
}

/// Two of three replicas doctored the same way: the "majority" agrees with
/// itself but contradicts the recording. The coordinator must refuse with
/// exit 14 — never vote a wrong majority over the reference chain.
#[test]
fn doctored_majority_is_refused_not_voted() {
    let dir = scratch_dir();
    let manifest_path = dir.join("refuse.manifest.json");
    let report_path = dir.join("refuse.report.json");
    record_bfs().save(&manifest_path).unwrap();

    let (code, report) = run_cli(
        &manifest_path,
        &report_path,
        &["--perturb", "0:16", "--perturb", "2:16"],
    );
    persist_report("refused", &report);
    assert_eq!(code, EXIT_NO_QUORUM, "events: {:?}", report.events);
    assert_eq!(report.outcome, LockstepOutcome::NoQuorum);
    assert!(report.survivors.is_empty());
    assert_eq!(report.output_hash, 0);
    assert_eq!(report.final_fingerprint, 0);
    let refusals = report.events_of(LockstepEventKind::Refusal);
    assert_eq!(refusals.len(), 1, "{:?}", report.events);
    assert!(
        refusals[0].detail.contains("2 of 3"),
        "{}",
        refusals[0].detail
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A slow replica back-pressures the fast ones instead of growing the
/// coordinator's buffers: no pending queue ever exceeds the window.
#[test]
fn slow_replica_is_window_bounded() {
    let manifest = record_bfs();
    let specs = [
        ReplicaSpec::default(),
        ReplicaSpec::default(),
        ReplicaSpec {
            throttle_ms: 10,
            ..ReplicaSpec::default()
        },
    ];
    let result = run_session(
        manifest.clone(),
        LockstepConfig {
            replicas: 3,
            window: 4,
            ..LockstepConfig::default()
        },
        &specs,
        None,
    );
    persist_report("windowed", &result.report);
    assert_eq!(result.exit_code, 0, "events: {:?}", result.report.events);
    assert_eq!(result.report.outcome, LockstepOutcome::Agreed);
    assert_eq!(result.report.window, 4);
    assert!(
        result.report.max_buffered <= 4,
        "buffered {} hashes past the window",
        result.report.max_buffered
    );
    // The window slowed settling but lost nothing.
    assert_eq!(result.report.rounds as usize, manifest.round_hashes.len());
}
