//! End-to-end determinism battery for `galois-serve`.
//!
//! The service-level restatement of the paper's portability property: the
//! *bytes* of a `/run` response are a pure function of `(app, input key,
//! seed, executor config)` — never of the server's thread budget or cache
//! state. Asserted over live HTTP against a real server:
//!
//! - the same deterministic request at thread budgets
//!   [`sweep::SERVE_THREAD_BUDGETS`] returns byte-identical bodies (only
//!   headers carry budget-dependent facts like residency and timing);
//! - the served fingerprint equals a local [`run_app`] of the same cell —
//!   serving adds nothing and removes nothing from the computation;
//! - the streamed round log re-hashes (via the runtime's own
//!   [`RoundChain`]) to the body's `log_hash`, so a client can audit the
//!   canonical schedule without trusting the server;
//! - the manifest embedded in a response replays bit-identically through
//!   `POST /replay` at a different thread budget, and a tampered manifest
//!   is rejected as diverged (409).

use galois_harness::sweep::{assert_portable_over, SERVE_THREAD_BUDGETS};
use galois_harness::{run_app, unperturbed, App, InputConfig, Variant};
use galois_runtime::fingerprint::RoundChain;
use galois_runtime::probe::RoundRecord;
use galois_serve::client::Client;
use galois_serve::{ServeConfig, Server};

/// Pulls `"field":<digits>` out of a response body.
fn json_u64(body: &str, field: &str) -> u64 {
    let pat = format!("\"{field}\":");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("field {field} missing in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("field {field} is not an integer in {body}"))
}

/// Pulls `"field":"<16 hex>"` out of a response body.
fn json_hex(body: &str, field: &str) -> u64 {
    let pat = format!("\"{field}\":\"");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("field {field} missing in {body}"));
    u64::from_str_radix(&body[at + pat.len()..at + pat.len() + 16], 16)
        .unwrap_or_else(|_| panic!("field {field} is not a hex hash in {body}"))
}

/// Extracts the round-log array and re-derives each record's chain scalars.
fn parse_round_log(body: &str) -> Vec<RoundRecord> {
    let at = body.find("\"round_log\":[").expect("round_log missing");
    let tail = &body[at + "\"round_log\":[".len()..];
    let end = tail.find(']').expect("unterminated round_log");
    let mut records = Vec::new();
    for obj in tail[..end].split("},{") {
        let obj = obj.trim_matches(|c| c == '{' || c == '}');
        if obj.is_empty() {
            continue;
        }
        let field = |name: &str| -> u64 {
            let pat = format!("\"{name}\":");
            let s = obj.find(&pat).unwrap_or_else(|| panic!("{name} in {obj}"));
            obj[s + pat.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap()
        };
        records.push(RoundRecord {
            round: field("round"),
            window: field("window"),
            attempted: field("attempted"),
            committed: field("committed"),
            failed: field("failed"),
            ..RoundRecord::default()
        });
    }
    records
}

/// Extracts the embedded manifest object (it is the last field before the
/// response's closing brace).
fn extract_manifest(body: &str) -> &str {
    let at = body.find("\"manifest\":").expect("manifest missing");
    let obj = &body[at + "\"manifest\":".len()..];
    obj.strip_suffix('}').expect("malformed response tail")
}

#[test]
fn served_bodies_are_byte_identical_across_thread_budgets() {
    let mut handle = Server::start(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut client = Client::new(addr);

    for app in [App::Bfs, App::Mis] {
        // assert_portable_over drives the identical request at every serve
        // budget and asserts all results equal — here the "result" is the
        // entire response body. (`manifest` is deliberately not requested:
        // a manifest *documents* the budget it was recorded at, so it is
        // the one response field that legitimately names the thread count;
        // its budget-independence is proven by replay, below.)
        let bodies =
            assert_portable_over(&format!("served {app}"), &SERVE_THREAD_BUDGETS, |threads| {
                let req = format!("{{\"app\":\"{app}\",\"threads\":{threads},\"round_log\":true}}");
                let resp = client.post("/run", &req).unwrap();
                assert_eq!(
                    resp.status, 200,
                    "{app} at {threads} threads: {}",
                    resp.body
                );
                // Budget-dependent facts ride headers, not the body.
                assert!(resp.header("X-Galois-Cache").is_some());
                assert!(resp.header("X-Galois-Micros").is_some());
                resp.body
            });
        let body = &bodies[0];

        // The served fingerprint is the harness's own: a served request
        // and a local differential-sweep cell are the same computation.
        let input = InputConfig::from_seed(42);
        let (local, _) =
            run_app(app, Variant::Deterministic, 2, None, &input, &unperturbed).unwrap();
        assert_eq!(json_hex(body, "fingerprint"), local.fingerprint, "{app}");
        assert_eq!(json_hex(body, "output_hash"), local.output_hash, "{app}");
        assert_eq!(json_u64(body, "rounds"), local.rounds, "{app}");
        assert_eq!(json_u64(body, "committed"), local.committed, "{app}");

        // The streamed round log carries exactly the chain-hashed scalars:
        // re-folding it through the runtime's RoundChain reproduces the
        // body's log_hash, so clients can audit the canonical schedule.
        let records = parse_round_log(body);
        assert_eq!(records.len() as u64, local.rounds, "{app}");
        let mut chain = RoundChain::new();
        for rec in &records {
            chain.push(rec);
        }
        assert_eq!(chain.log_hash(), json_hex(body, "log_hash"), "{app}");
    }
    handle.shutdown();
}

#[test]
fn first_request_is_cold_then_warm() {
    let mut handle = Server::start(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut client = Client::new(addr);

    let req = r#"{"app":"mis","threads":2}"#;
    let first = client.post("/run", req).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("X-Galois-Cache"), Some("cold"));
    let second = client.post("/run", req).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Galois-Cache"), Some("warm"));
    // Residency is invisible to results: cold and warm bodies are equal.
    assert_eq!(first.body, second.body);
    // mm shares mis's undirected input — warm on its very first request.
    let mm = client.post("/run", r#"{"app":"mm","threads":2}"#).unwrap();
    assert_eq!(mm.status, 200);
    assert_eq!(mm.header("X-Galois-Cache"), Some("warm"));
    handle.shutdown();
}

#[test]
fn served_manifest_replays_bit_identically() {
    let mut handle = Server::start(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut client = Client::new(addr);

    let resp = client
        .post("/run", r#"{"app":"bfs","threads":2,"manifest":true}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let manifest = extract_manifest(&resp.body).to_string();
    let fingerprint = json_hex(&resp.body, "fingerprint");

    // Replay at a *different* thread budget: bit-identity is the point.
    let replay = client.post("/replay?threads=4", &manifest).unwrap();
    assert_eq!(replay.status, 200, "{}", replay.body);
    assert_eq!(json_hex(&replay.body, "fingerprint"), fingerprint);

    // A tampered manifest must be rejected, not silently accepted: flip
    // the recorded fingerprint (to_json re-stamps the checksum, so the
    // parse layer accepts it and the divergence check is what fires).
    let mut doctored = galois_core::RunManifest::from_json(&manifest).unwrap();
    doctored.final_fingerprint ^= 1;
    let replay = client
        .post("/replay?threads=2", &doctored.to_json())
        .unwrap();
    assert_eq!(replay.status, 409, "{}", replay.body);
    assert!(replay.body.contains("\"status\":\"diverged\""));

    // Corrupt bytes (bad checksum) are a 400, before any execution.
    let broken = manifest.replace("\"app\":\"bfs\"", "\"app\":\"mis\"");
    let replay = client.post("/replay", &broken).unwrap();
    assert_eq!(replay.status, 400, "{}", replay.body);
    handle.shutdown();
}

#[test]
fn malformed_run_requests_are_structured_400s() {
    let mut handle = Server::start(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut client = Client::new(addr);

    for (body, why) in [
        ("{", "truncated JSON"),
        ("{}", "missing app"),
        (r#"{"app":"nope"}"#, "unknown app"),
        (r#"{"app":"bfs","threads":0}"#, "zero budget"),
        (r#"{"app":"bfs","frobnicate":1}"#, "unknown field"),
        (r#"{"app":"bfs","size":{"n":1}}"#, "nested value"),
    ] {
        let resp = client.post("/run", body).unwrap();
        assert_eq!(resp.status, 400, "{why}: {}", resp.body);
        assert!(resp.body.contains("\"status\":\"error\""), "{why}");
    }
    // The rejections were counted, and nothing executed.
    let stats = client.get("/stats").unwrap();
    assert_eq!(json_u64(&stats.body, "bad_requests"), 6);
    assert_eq!(json_u64(&stats.body, "ok"), 0);
    handle.shutdown();
}
