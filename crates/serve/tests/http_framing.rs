//! Wire-level framing tests for `serve::http`, written against raw
//! `TcpStream`s on purpose: `serve::client` frames requests correctly, so
//! it can never produce the torn writes, lying Content-Lengths, and
//! pipelined byte streams a real network (or a hostile peer) will.

use galois_serve::{ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_server() -> (ServerHandle, String) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = server.addr().to_string();
    (server, addr)
}

/// Reads HTTP responses (head + Content-Length body) off a raw stream.
/// Responses to pipelined requests share TCP segments, so the reader keeps
/// its own carry of bytes read past each response boundary.
struct ResponseReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ResponseReader {
    fn new(stream: TcpStream) -> Self {
        ResponseReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// One full response; `None` if the peer closed before a head arrived.
    fn read_response(&mut self) -> Option<(u16, String)> {
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read response head: {e}"),
            }
        };
        let head = std::str::from_utf8(&self.buf[..head_end]).expect("UTF-8 head");
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no status in {head:?}"));
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                l.strip_prefix("content-length:")
                    .or(l.strip_prefix("Content-Length:"))
            })
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("no content-length in {head:?}"));
        let mut rest = self.buf.split_off(head_end + 4);
        self.buf.clear();
        while rest.len() < content_length {
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("peer closed mid-body"),
                Ok(n) => rest.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read response body: {e}"),
            }
        }
        // Bytes past this body are the start of the next response.
        self.buf = rest.split_off(content_length);
        Some((status, String::from_utf8(rest).expect("UTF-8 body")))
    }
}

fn post_run(body: &str, content_length: usize) -> String {
    format!("POST /run HTTP/1.1\r\nHost: t\r\nContent-Length: {content_length}\r\n\r\n{body}")
}

/// A request head and body trickling in across five separate writes (with
/// real delays between them) is reassembled into one request.
#[test]
fn split_head_and_body_reassembles() {
    let (mut server, addr) = start_server();
    let mut stream = TcpStream::connect(&addr).unwrap();
    let body = r#"{"app":"bfs","size":200}"#;
    let request = post_run(body, body.len());
    // Split mid-request-line, mid-header, mid-separator, and mid-body.
    let cuts = [6, 20, request.len() - body.len() - 2, request.len() - 10];
    let mut last = 0;
    for cut in cuts {
        stream.write_all(&request.as_bytes()[last..cut]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        last = cut;
    }
    stream.write_all(&request.as_bytes()[last..]).unwrap();
    let (status, body) = ResponseReader::new(stream)
        .read_response()
        .expect("response");
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

/// Content-Length one short of the body: the server parses the truncated
/// JSON (a 400), and the stray final byte then corrupts the *next*
/// request on the connection — it must never be silently spliced into
/// either request.
#[test]
fn content_length_short_by_one_truncates_and_poisons_pipeline() {
    let (mut server, addr) = start_server();
    let mut stream = TcpStream::connect(&addr).unwrap();
    let body = r#"{"app":"bfs","size":200}"#;
    stream
        .write_all(post_run(body, body.len() - 1).as_bytes())
        .unwrap();
    let mut reader = ResponseReader::new(stream.try_clone().unwrap());
    let (status, resp) = reader.read_response().expect("truncated-JSON response");
    assert_eq!(status, 400, "truncated body must not run: {resp}");

    // The orphaned `}` is now the first byte of the next "request": the
    // server sees method `}GET` — an error (405/400), never a served
    // healthz spliced together from two requests' bytes.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    if let Some((status, body)) = reader.read_response() {
        assert_ne!(
            status, 200,
            "stray byte must poison the request line: {body}"
        );
    } // the server may instead just drop the poisoned connection
    server.shutdown();
}

/// Content-Length one *past* the body, then a half-close: the server must
/// answer "closed mid-body", not hang and not process the short body.
#[test]
fn content_length_long_by_one_is_closed_mid_body() {
    let (mut server, addr) = start_server();
    let mut stream = TcpStream::connect(&addr).unwrap();
    let body = r#"{"app":"bfs","size":200}"#;
    stream
        .write_all(post_run(body, body.len() + 1).as_bytes())
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let (status, resp) = ResponseReader::new(stream)
        .read_response()
        .expect("mid-body response");
    assert_eq!(status, 400, "{resp}");
    assert!(resp.contains("mid-body"), "{resp}");
    server.shutdown();
}

/// Two GETs in one TCP segment: both must be answered, in order, on the
/// same connection (the carry buffer keeps the second request's bytes).
#[test]
fn pipelined_gets_are_both_answered() {
    let (mut server, addr) = start_server();
    let mut stream = TcpStream::connect(&addr).unwrap();
    let get = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    stream.write_all(format!("{get}{get}").as_bytes()).unwrap();
    let mut reader = ResponseReader::new(stream);
    for i in 0..2 {
        let (status, body) = reader.read_response().unwrap_or_else(|| {
            panic!("pipelined response {i} missing (second request's bytes dropped?)")
        });
        assert_eq!(status, 200, "response {i}: {body}");
    }
    server.shutdown();
}

/// Two POST /run requests in one write: both bodies must be framed off the
/// shared byte stream and both runs answered — and determinism makes the
/// two answers identical.
#[test]
fn pipelined_runs_are_both_answered_identically() {
    let (mut server, addr) = start_server();
    let mut stream = TcpStream::connect(&addr).unwrap();
    let body = r#"{"app":"bfs","size":200}"#;
    let request = post_run(body, body.len());
    stream
        .write_all(format!("{request}{request}").as_bytes())
        .unwrap();
    let mut reader = ResponseReader::new(stream);
    let first = reader.read_response().expect("first pipelined run");
    let second = reader.read_response().expect("second pipelined run");
    assert_eq!(first.0, 200, "{}", first.1);
    assert_eq!(first, second, "same deterministic run, same bytes");
    server.shutdown();
}
