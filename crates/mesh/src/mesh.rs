//! The triangle/vertex arena.

use galois_geometry::Point;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicUsize, Ordering};

/// Sentinel for "no triangle" / "no neighbor" (hull edges).
pub const INVALID: u32 = u32::MAX;

/// A snapshot of one triangle.
///
/// `v` lists the vertices in counter-clockwise order; edge `i` runs
/// `v[i] → v[(i+1) % 3]`, and `n[i]` is the triangle across edge `i`
/// ([`INVALID`] on the mesh boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriData {
    /// Vertex ids (CCW).
    pub v: [u32; 3],
    /// Neighbor triangle ids, `n[i]` across edge `i`.
    pub n: [u32; 3],
}

struct TriSlot {
    v: [AtomicU32; 3],
    n: [AtomicU32; 3],
    alive: AtomicU32,
}

impl TriSlot {
    fn empty() -> Self {
        TriSlot {
            v: [const { AtomicU32::new(INVALID) }; 3],
            n: [const { AtomicU32::new(INVALID) }; 3],
            alive: AtomicU32::new(0),
        }
    }
}

struct VertSlot {
    x: AtomicI64,
    y: AtomicI64,
}

/// An append-only concurrent triangle mesh. See the [crate docs](crate).
pub struct Mesh {
    verts: Box<[VertSlot]>,
    vert_len: AtomicUsize,
    tris: Box<[TriSlot]>,
    tri_len: AtomicUsize,
}

impl std::fmt::Debug for Mesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mesh")
            .field("verts", &self.num_verts())
            .field("tris_allocated", &self.num_tris_allocated())
            .finish()
    }
}

impl Mesh {
    /// Creates a mesh with fixed slot capacities.
    ///
    /// Capacities are hard limits: the arena never reallocates (concurrent
    /// readers hold indices, and slot identity doubles as the abstract lock
    /// id). Allocation past capacity panics with a sizing hint.
    pub fn with_capacity(verts: usize, tris: usize) -> Self {
        Mesh {
            verts: (0..verts)
                .map(|_| VertSlot {
                    x: AtomicI64::new(0),
                    y: AtomicI64::new(0),
                })
                .collect(),
            vert_len: AtomicUsize::new(0),
            tris: (0..tris).map(|_| TriSlot::empty()).collect(),
            tri_len: AtomicUsize::new(0),
        }
    }

    /// Number of vertices added so far.
    pub fn num_verts(&self) -> usize {
        self.vert_len.load(Ordering::Acquire)
    }

    /// Total vertex slots (fixed at construction).
    pub fn vert_capacity(&self) -> usize {
        self.verts.len()
    }

    /// Total triangle slots (fixed at construction) — also the abstract-lock
    /// space for triangle-locked applications.
    pub fn tri_capacity(&self) -> usize {
        self.tris.len()
    }

    /// Number of triangle slots ever allocated (alive + dead).
    pub fn num_tris_allocated(&self) -> usize {
        self.tri_len.load(Ordering::Acquire)
    }

    /// Number of currently alive triangles (O(allocated) scan).
    pub fn num_tris_alive(&self) -> usize {
        self.alive_tris().count()
    }

    /// Appends a vertex, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the vertex capacity is exhausted.
    pub fn add_vertex(&self, p: Point) -> u32 {
        let id = self.vert_len.fetch_add(1, Ordering::AcqRel);
        assert!(
            id < self.verts.len(),
            "vertex capacity {} exhausted; size the mesh larger",
            self.verts.len()
        );
        let (gx, gy) = p.to_grid();
        self.verts[id].x.store(gx, Ordering::Relaxed);
        self.verts[id].y.store(gy, Ordering::Relaxed);
        id as u32
    }

    /// The position of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was never allocated.
    pub fn vertex(&self, v: u32) -> Point {
        assert!((v as usize) < self.num_verts(), "vertex {v} not allocated");
        Point::from_grid(
            self.verts[v as usize].x.load(Ordering::Relaxed),
            self.verts[v as usize].y.load(Ordering::Relaxed),
        )
    }

    /// Allocates a new alive triangle with vertices `v` (CCW) and no
    /// neighbors.
    ///
    /// # Panics
    ///
    /// Panics if the triangle capacity is exhausted.
    pub fn create_tri(&self, v: [u32; 3]) -> u32 {
        let id = self.tri_len.fetch_add(1, Ordering::AcqRel);
        assert!(
            id < self.tris.len(),
            "triangle capacity {} exhausted; size the mesh larger",
            self.tris.len()
        );
        let slot = &self.tris[id];
        for (k, &vk) in v.iter().enumerate() {
            slot.v[k].store(vk, Ordering::Relaxed);
            slot.n[k].store(INVALID, Ordering::Relaxed);
        }
        slot.alive.store(1, Ordering::Release);
        id as u32
    }

    /// Snapshot of triangle `t`'s vertices and neighbors.
    pub fn tri(&self, t: u32) -> TriData {
        let slot = &self.tris[t as usize];
        TriData {
            v: [
                slot.v[0].load(Ordering::Relaxed),
                slot.v[1].load(Ordering::Relaxed),
                slot.v[2].load(Ordering::Relaxed),
            ],
            n: [
                slot.n[0].load(Ordering::Relaxed),
                slot.n[1].load(Ordering::Relaxed),
                slot.n[2].load(Ordering::Relaxed),
            ],
        }
    }

    /// The three corner points of triangle `t`.
    pub fn tri_points(&self, t: u32) -> [Point; 3] {
        let d = self.tri(t);
        [
            self.vertex(d.v[0]),
            self.vertex(d.v[1]),
            self.vertex(d.v[2]),
        ]
    }

    /// Whether triangle `t` is alive.
    pub fn alive(&self, t: u32) -> bool {
        t != INVALID
            && (t as usize) < self.num_tris_allocated()
            && self.tris[t as usize].alive.load(Ordering::Acquire) == 1
    }

    /// Marks triangle `t` dead (its slot is never reused).
    pub fn kill(&self, t: u32) {
        self.tris[t as usize].alive.store(0, Ordering::Release);
    }

    /// Sets the neighbor of `t` across edge `edge`.
    pub fn set_neighbor(&self, t: u32, edge: usize, neighbor: u32) {
        self.tris[t as usize].n[edge].store(neighbor, Ordering::Relaxed);
    }

    /// The edge index of `t` whose endpoints are `{a, b}` (either
    /// direction), if any.
    pub fn edge_index(&self, t: u32, a: u32, b: u32) -> Option<usize> {
        let d = self.tri(t);
        (0..3).find(|&i| {
            let (x, y) = (d.v[i], d.v[(i + 1) % 3]);
            (x == a && y == b) || (x == b && y == a)
        })
    }

    /// The edge index of `t` that points to neighbor `other`, if any.
    pub fn neighbor_index(&self, t: u32, other: u32) -> Option<usize> {
        let d = self.tri(t);
        (0..3).find(|&i| d.n[i] == other)
    }

    /// Iterates over the ids of alive triangles, in slot order.
    pub fn alive_tris(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.num_tris_allocated() as u32).filter(move |&t| self.alive(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_roundtrip() {
        let m = Mesh::with_capacity(4, 4);
        let p = Point::from_grid(10, 20);
        let v = m.add_vertex(p);
        assert_eq!(v, 0);
        assert_eq!(m.vertex(v), p);
        assert_eq!(m.num_verts(), 1);
    }

    #[test]
    fn triangle_lifecycle() {
        let m = Mesh::with_capacity(4, 4);
        for _ in 0..3 {
            m.add_vertex(Point::from_grid(0, 0));
        }
        let t = m.create_tri([0, 1, 2]);
        assert!(m.alive(t));
        assert_eq!(m.tri(t).v, [0, 1, 2]);
        assert_eq!(m.tri(t).n, [INVALID; 3]);
        m.set_neighbor(t, 1, 7);
        assert_eq!(m.tri(t).n[1], 7);
        m.kill(t);
        assert!(!m.alive(t));
        assert_eq!(m.num_tris_allocated(), 1, "slot not reused");
    }

    #[test]
    fn edge_and_neighbor_lookup() {
        let m = Mesh::with_capacity(8, 8);
        for _ in 0..4 {
            m.add_vertex(Point::from_grid(0, 0));
        }
        let t = m.create_tri([0, 1, 2]);
        assert_eq!(m.edge_index(t, 1, 0), Some(0));
        assert_eq!(m.edge_index(t, 2, 1), Some(1));
        assert_eq!(m.edge_index(t, 0, 2), Some(2));
        assert_eq!(m.edge_index(t, 0, 3), None);
        m.set_neighbor(t, 2, 5);
        assert_eq!(m.neighbor_index(t, 5), Some(2));
        assert_eq!(m.neighbor_index(t, 6), None);
    }

    #[test]
    fn invalid_is_never_alive() {
        let m = Mesh::with_capacity(1, 1);
        assert!(!m.alive(INVALID));
        assert!(!m.alive(0), "unallocated slot");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn vertex_overflow_panics() {
        let m = Mesh::with_capacity(1, 1);
        m.add_vertex(Point::from_grid(0, 0));
        m.add_vertex(Point::from_grid(1, 1));
    }

    #[test]
    fn concurrent_allocation_is_disjoint() {
        let m = Mesh::with_capacity(1000, 1000);
        galois_runtime_shim::run(4, |_| {
            for _ in 0..100 {
                m.add_vertex(Point::from_grid(1, 2));
                m.create_tri([0, 0, 0]);
            }
        });
        assert_eq!(m.num_verts(), 400);
        assert_eq!(m.num_tris_allocated(), 400);
    }

    /// Minimal scoped-thread helper to avoid a dev-dependency on the runtime
    /// crate (the mesh crate is runtime-agnostic by design).
    mod galois_runtime_shim {
        pub fn run(threads: usize, f: impl Fn(usize) + Sync) {
            std::thread::scope(|s| {
                for t in 0..threads {
                    let f = &f;
                    s.spawn(move || f(t));
                }
            });
        }
    }
}
