//! Triangle-mesh substrate for Delaunay triangulation and refinement.
//!
//! A [`Mesh`] is an arena of triangles plus an arena of vertices, both
//! append-only (slots are never reused; deleted triangles keep their slot
//! with a cleared `alive` bit). All fields are relaxed atomics, so
//! concurrent access is *sound* by construction; *correct* interleaving is
//! the job of the caller's synchronization protocol — in this suite, the
//! Galois abstract locks (one `galois_core::LockId` per triangle slot) or
//! the bulk-synchronous phases of the PBBS-style variants.
//!
//! Module map:
//! - [`mesh`]: the arena and triangle accessors.
//! - [`cavity`]: point-location walk, Bowyer–Watson cavity growth, and
//!   star retriangulation — shared by the sequential builder and every
//!   parallel variant (the *visit* hook is where operators acquire locks).
//! - [`build`]: sequential incremental Delaunay construction.
//! - [`check`]: structural, Delaunay, and quality checkers plus canonical
//!   output forms for cross-variant comparison.

#![warn(missing_docs)]

pub mod build;
pub mod cavity;
pub mod check;
pub mod export;
pub mod locator;
pub mod mesh;

pub use cavity::{Cavity, LocateOutcome};
pub use locator::GridLocator;
pub use mesh::{Mesh, TriData, INVALID};
