//! Spatial walk-hint grid for point location.
//!
//! A jump-and-walk locate from a fixed start triangle costs O(√n) steps;
//! over n insertions that is O(n√n) — the dominant cost for parallel dt
//! variants that cannot keep the sequential builder's last-insertion hint.
//! [`GridLocator`] maps the unit square onto a coarse grid; committed
//! insertions record a nearby triangle per cell, and later walks start from
//! the closest recorded triangle.
//!
//! Hints are *best-effort*: they may be stale (dead triangles are skipped)
//! and their racy update order is non-deterministic. That only perturbs
//! walk paths, i.e. scheduling; for dt the output (the unique Delaunay
//! triangulation) is unaffected, which is why the deterministic variant may
//! use it too (see DESIGN.md on determinism up to arena renaming).

use crate::mesh::{Mesh, INVALID};
use galois_geometry::point::GRID_BITS;
use galois_geometry::Point;
use std::sync::atomic::{AtomicU32, Ordering};

/// A `res × res` grid of triangle hints over the unit square.
pub struct GridLocator {
    cells: Vec<AtomicU32>,
    res: usize,
    shift: u32,
}

impl std::fmt::Debug for GridLocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridLocator")
            .field("res", &self.res)
            .finish()
    }
}

impl GridLocator {
    /// Creates an empty locator with `res × res` cells.
    ///
    /// # Panics
    ///
    /// Panics unless `res` is a power of two no larger than `2^GRID_BITS`.
    pub fn new(res: usize) -> Self {
        assert!(res.is_power_of_two() && res <= (1 << GRID_BITS));
        GridLocator {
            cells: (0..res * res).map(|_| AtomicU32::new(INVALID)).collect(),
            res,
            shift: GRID_BITS - res.trailing_zeros(),
        }
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let (gx, gy) = p.to_grid();
        let cx = (gx.clamp(0, (1 << GRID_BITS) - 1) >> self.shift) as usize;
        let cy = (gy.clamp(0, (1 << GRID_BITS) - 1) >> self.shift) as usize;
        (cx.min(self.res - 1), cy.min(self.res - 1))
    }

    /// Records `tri` as a hint near `p` (typically a freshly committed
    /// triangle).
    pub fn update(&self, p: Point, tri: u32) {
        let (cx, cy) = self.cell_of(p);
        self.cells[cy * self.res + cx].store(tri, Ordering::Relaxed);
    }

    /// An *alive* triangle near `p`, searching outward up to two rings of
    /// cells; `None` if no live hint is nearby.
    pub fn hint(&self, mesh: &Mesh, p: Point) -> Option<u32> {
        let (cx, cy) = self.cell_of(p);
        for ring in 0..3i64 {
            for dy in -ring..=ring {
                for dx in -ring..=ring {
                    if dx.abs() != ring && dy.abs() != ring {
                        continue; // interior of the ring already checked
                    }
                    let x = cx as i64 + dx;
                    let y = cy as i64 + dy;
                    if x < 0 || y < 0 || x >= self.res as i64 || y >= self.res as i64 {
                        continue;
                    }
                    let t = self.cells[y as usize * self.res + x as usize].load(Ordering::Relaxed);
                    if t != INVALID && mesh.alive(t) {
                        return Some(t);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::triangulate;
    use galois_geometry::point::random_points;

    #[test]
    fn hint_returns_alive_nearby_triangle() {
        let pts = random_points(200, 4);
        let mesh = triangulate(&pts);
        let loc = GridLocator::new(16);
        // Record a hint for every alive triangle at its first vertex.
        for t in mesh.alive_tris() {
            loc.update(mesh.tri_points(t)[0], t);
        }
        for &p in pts.iter().take(50) {
            let h = loc.hint(&mesh, p).expect("dense mesh: hint nearby");
            assert!(mesh.alive(h));
        }
    }

    #[test]
    fn dead_hints_are_skipped() {
        let pts = random_points(50, 5);
        let mesh = triangulate(&pts);
        let loc = GridLocator::new(8);
        let t = mesh.alive_tris().next().unwrap();
        let p = mesh.tri_points(t)[0];
        loc.update(p, t);
        mesh.kill(t);
        // Either finds some other recorded (none) or returns None.
        assert_eq!(loc.hint(&mesh, p), None);
    }

    #[test]
    fn empty_locator_returns_none() {
        let mesh = triangulate(&random_points(10, 1));
        let loc = GridLocator::new(4);
        assert_eq!(loc.hint(&mesh, Point::from_grid(5, 5)), None);
    }
}
