//! Point location, cavity growth, and retriangulation (Bowyer–Watson).
//!
//! These routines are shared verbatim by the sequential builder and the
//! parallel variants; the `visit` hook is called on every triangle *before*
//! it is read, which is where parallel operators acquire abstract locks
//! (making the walk path and cavity part of the task's neighborhood, as in
//! the original Galois dt/dmr — §3.2 "the only way to get the neighborhood
//! of a task is to execute the task"). The sequential builder passes an
//! infallible no-op.
//!
//! All iteration is in **connectivity order** (edge index order, FIFO
//! discovery), never in slot-id order; this keeps the geometric evolution of
//! the mesh identical across runs even though slot ids are allocated
//! concurrently (see DESIGN.md on determinism up to arena renaming).

use crate::mesh::{Mesh, INVALID};
use galois_geometry::predicates::{incircle, orient2d_sign};
use galois_geometry::Point;

/// Where a point-location walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocateOutcome {
    /// `p` lies inside (or on the boundary of) this alive triangle.
    Found(u32),
    /// `p` coincides exactly with an existing vertex.
    OnVertex {
        /// The triangle that contains the vertex.
        tri: u32,
        /// The coincident vertex id.
        vertex: u32,
    },
    /// The walk crossed hull edge `edge` of triangle `tri`; `p` lies outside
    /// the mesh.
    OutsideBoundary {
        /// Boundary triangle.
        tri: u32,
        /// Its hull edge index.
        edge: usize,
    },
}

/// Walks from `start` toward `p`.
///
/// `visit` is called on every triangle before its data is read, including
/// `start`. Under speculative execution `start` may have died between the
/// caller's liveness check and this call; the visit hook is where such
/// staleness is detected (lock, then check liveness, and return a conflict)
/// — with an infallible hook the caller must guarantee `start` is alive.
/// With exact predicates on a Delaunay mesh the straight visibility walk
/// terminates; a step cap guards against protocol misuse.
///
/// # Errors
///
/// Propagates the first `visit` error (a lock conflict in speculative
/// executions).
///
/// # Panics
///
/// Panics if the step cap is exceeded (broken mesh or dead `start` with an
/// infallible visit hook).
pub fn locate<E>(
    mesh: &Mesh,
    p: Point,
    start: u32,
    visit: &mut impl FnMut(u32) -> Result<(), E>,
) -> Result<LocateOutcome, E> {
    let mut cur = start;
    let cap = 4 * mesh.num_tris_allocated() + 16;
    let mut steps = 0;
    'walk: loop {
        steps += 1;
        assert!(steps < cap, "locate walk exceeded step cap (broken mesh?)");
        visit(cur)?;
        let d = mesh.tri(cur);
        let pts = [
            mesh.vertex(d.v[0]),
            mesh.vertex(d.v[1]),
            mesh.vertex(d.v[2]),
        ];
        for (k, &pk) in pts.iter().enumerate() {
            if pk == p {
                return Ok(LocateOutcome::OnVertex {
                    tri: cur,
                    vertex: d.v[k],
                });
            }
        }
        for i in 0..3 {
            // Edge i runs pts[i] → pts[(i+1)%3]; p strictly right of it
            // means the walk leaves through this edge.
            if orient2d_sign(pts[i], pts[(i + 1) % 3], p) < 0 {
                let nb = d.n[i];
                if nb == INVALID {
                    return Ok(LocateOutcome::OutsideBoundary { tri: cur, edge: i });
                }
                cur = nb;
                continue 'walk;
            }
        }
        return Ok(LocateOutcome::Found(cur));
    }
}

/// One edge of a cavity boundary: the directed edge `a → b` (cavity on the
/// left) and the surviving triangle on the other side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryEdge {
    /// Edge start vertex.
    pub a: u32,
    /// Edge end vertex.
    pub b: u32,
    /// Triangle across the edge ([`INVALID`] on the hull).
    pub outer: u32,
    /// The edge index in `outer` that points back into the cavity.
    pub outer_edge: usize,
}

/// A Bowyer–Watson cavity: the triangles whose circumcircle strictly
/// contains the new point, plus the directed boundary cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cavity {
    /// Doomed triangles, in FIFO discovery order from the seed.
    pub tris: Vec<u32>,
    /// Boundary edges, in discovery order (a subsequence of a directed
    /// cycle around the cavity).
    pub boundary: Vec<BoundaryEdge>,
}

/// Grows the cavity of `p` from `seed` (the triangle containing `p`, which
/// the caller has already visited/locked).
///
/// # Errors
///
/// Propagates the first `visit` error.
pub fn grow<E>(
    mesh: &Mesh,
    p: Point,
    seed: u32,
    visit: &mut impl FnMut(u32) -> Result<(), E>,
) -> Result<Cavity, E> {
    let mut tris = vec![seed];
    let mut boundary = Vec::new();
    let mut qi = 0;
    while qi < tris.len() {
        let t = tris[qi];
        qi += 1;
        let d = mesh.tri(t);
        for i in 0..3 {
            let (a, b) = (d.v[i], d.v[(i + 1) % 3]);
            let nb = d.n[i];
            if nb == INVALID {
                boundary.push(BoundaryEdge {
                    a,
                    b,
                    outer: INVALID,
                    outer_edge: 0,
                });
                continue;
            }
            if tris.contains(&nb) {
                continue;
            }
            visit(nb)?;
            let nd = mesh.tri(nb);
            let npts = [
                mesh.vertex(nd.v[0]),
                mesh.vertex(nd.v[1]),
                mesh.vertex(nd.v[2]),
            ];
            if incircle(npts[0], npts[1], npts[2], p) > 0 {
                tris.push(nb);
            } else {
                let outer_edge = mesh
                    .neighbor_index(nb, t)
                    .expect("neighbor pointers must be symmetric");
                boundary.push(BoundaryEdge {
                    a,
                    b,
                    outer: nb,
                    outer_edge,
                });
            }
        }
    }
    Ok(Cavity { tris, boundary })
}

/// Replaces the cavity with the star of `new_vertex`: kills the doomed
/// triangles, creates one triangle per (non-degenerate) boundary edge, and
/// stitches all neighbor pointers — including those of the locked outer
/// triangles.
///
/// Returns the created triangle ids in boundary-discovery order (the
/// deterministic order used for `(parent, rank)` task creation in dmr).
///
/// Degenerate boundary edges — where `new_vertex` lies exactly on the edge,
/// which happens when splitting a hull edge — are skipped; the two adjacent
/// fan triangles then expose hull edges through the split point.
pub fn retriangulate(mesh: &Mesh, cavity: &Cavity, new_vertex: u32) -> Vec<u32> {
    let p = mesh.vertex(new_vertex);
    for &t in &cavity.tris {
        mesh.kill(t);
    }
    // Create the fan.
    let mut created: Vec<(u32, u32, u32)> = Vec::with_capacity(cavity.boundary.len());
    for be in &cavity.boundary {
        let pa = mesh.vertex(be.a);
        let pb = mesh.vertex(be.b);
        let orient = orient2d_sign(pa, pb, p);
        debug_assert!(
            orient >= 0,
            "cavity boundary must see the point on its left"
        );
        if orient <= 0 {
            // p lies on this boundary edge: the edge splits in two; the
            // adjacent fan triangles carry the halves as hull edges. Detach
            // the outer triangle so it sees the hull.
            if be.outer != INVALID {
                mesh.set_neighbor(be.outer, be.outer_edge, INVALID);
            }
            continue;
        }
        let t = mesh.create_tri([be.a, be.b, new_vertex]);
        mesh.set_neighbor(t, 0, be.outer);
        if be.outer != INVALID {
            mesh.set_neighbor(be.outer, be.outer_edge, t);
        }
        created.push((t, be.a, be.b));
    }
    // Stitch fan-internal edges: triangle (a,b,p) has edge 1 = (b,p) and
    // edge 2 = (p,a). Edge 1 of the triangle starting at `a` matches edge 2
    // of the triangle whose start vertex is `b`.
    let by_start: std::collections::HashMap<u32, u32> =
        created.iter().map(|&(t, a, _)| (a, t)).collect();
    for &(t, _a, b) in &created {
        if let Some(&u) = by_start.get(&b) {
            mesh.set_neighbor(t, 1, u);
            mesh.set_neighbor(u, 2, t);
        }
    }
    created.into_iter().map(|(t, _, _)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn no_visit() -> impl FnMut(u32) -> Result<(), Infallible> {
        |_| Ok(())
    }

    /// Two triangles sharing an edge: (0,1,2) and (1,3,2).
    fn two_tri_mesh() -> Mesh {
        let m = Mesh::with_capacity(8, 16);
        m.add_vertex(Point::from_grid(0, 0)); // 0
        m.add_vertex(Point::from_grid(100, 0)); // 1
        m.add_vertex(Point::from_grid(0, 100)); // 2
        m.add_vertex(Point::from_grid(100, 100)); // 3
        let t0 = m.create_tri([0, 1, 2]);
        let t1 = m.create_tri([1, 3, 2]);
        m.set_neighbor(t0, 1, t1); // edge (1,2)
        m.set_neighbor(t1, 2, t0); // edge (2,1)
        m
    }

    #[test]
    fn locate_finds_containing_triangle() {
        let m = two_tri_mesh();
        let r = locate(&m, Point::from_grid(10, 10), 0, &mut no_visit()).unwrap();
        assert_eq!(r, LocateOutcome::Found(0));
        let r = locate(&m, Point::from_grid(90, 90), 0, &mut no_visit()).unwrap();
        assert_eq!(r, LocateOutcome::Found(1));
    }

    #[test]
    fn locate_reports_vertices_and_outside() {
        let m = two_tri_mesh();
        let r = locate(&m, Point::from_grid(100, 0), 1, &mut no_visit()).unwrap();
        assert!(matches!(r, LocateOutcome::OnVertex { vertex: 1, .. }));
        let r = locate(&m, Point::from_grid(-50, 10), 1, &mut no_visit()).unwrap();
        assert!(matches!(r, LocateOutcome::OutsideBoundary { .. }));
    }

    #[test]
    fn locate_propagates_visit_error() {
        let m = two_tri_mesh();
        let mut visits = 0;
        let r = locate(&m, Point::from_grid(90, 90), 0, &mut |_t: u32| {
            visits += 1;
            if visits > 1 {
                Err("conflict")
            } else {
                Ok(())
            }
        });
        assert_eq!(r, Err("conflict"));
    }

    /// Mesh where t1 = (100,0),(300,300),(0,100): circumcenter (170,170),
    /// r^2 = 33800, so (5,5) is outside it but (50,50) is inside.
    fn wide_mesh() -> Mesh {
        let m = Mesh::with_capacity(8, 16);
        m.add_vertex(Point::from_grid(0, 0));
        m.add_vertex(Point::from_grid(100, 0));
        m.add_vertex(Point::from_grid(0, 100));
        m.add_vertex(Point::from_grid(300, 300));
        let t0 = m.create_tri([0, 1, 2]);
        let t1 = m.create_tri([1, 3, 2]);
        m.set_neighbor(t0, 1, t1);
        m.set_neighbor(t1, 2, t0);
        m
    }

    #[test]
    fn grow_and_retriangulate_single_triangle_cavity() {
        let m = wide_mesh();
        let p = Point::from_grid(5, 5); // outside t1's circumcircle
        let cavity = grow(&m, p, 0, &mut no_visit()).unwrap();
        assert_eq!(cavity.tris, vec![0]);
        assert_eq!(cavity.boundary.len(), 3);
        let v = m.add_vertex(p);
        let created = retriangulate(&m, &cavity, v);
        assert_eq!(created.len(), 3);
        assert!(!m.alive(0));
        assert!(m.alive(1));
        // Every created triangle is CCW and wired symmetrically.
        for &t in &created {
            let pts = m.tri_points(t);
            assert_eq!(orient2d_sign(pts[0], pts[1], pts[2]), 1);
            let d = m.tri(t);
            for e in 0..3 {
                if d.n[e] != INVALID && m.alive(d.n[e]) {
                    assert!(m.neighbor_index(d.n[e], t).is_some(), "asymmetric link");
                }
            }
        }
    }

    #[test]
    fn grow_absorbs_neighbor_inside_circumcircle() {
        let m = wide_mesh();
        let p = Point::from_grid(50, 50); // inside both circumcircles
        let cavity = grow(&m, p, 0, &mut no_visit()).unwrap();
        assert_eq!(cavity.tris, vec![0, 1], "neighbor absorbed");
        assert_eq!(cavity.boundary.len(), 4);
        let v = m.add_vertex(p);
        let created = retriangulate(&m, &cavity, v);
        assert_eq!(created.len(), 4);
        crate::check::validate(&m).unwrap();
        crate::check::check_delaunay(&m).unwrap();
    }
}
