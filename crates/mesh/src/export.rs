//! Mesh export for visualization and interchange.
//!
//! Writes the alive triangles of a [`crate::Mesh`] as Wavefront OBJ or
//! Geomview OFF — enough to drop a triangulated / refined mesh into any
//! standard viewer when debugging geometry.

use crate::mesh::Mesh;
use std::io::Write;

/// Collects alive triangles with a dense vertex remapping (dead vertices
/// and slots are skipped).
fn collect(mesh: &Mesh) -> (Vec<(f64, f64)>, Vec<[usize; 3]>) {
    let mut vert_map = vec![usize::MAX; mesh.num_verts()];
    let mut verts: Vec<(f64, f64)> = Vec::new();
    let mut tris: Vec<[usize; 3]> = Vec::new();
    for t in mesh.alive_tris() {
        let d = mesh.tri(t);
        let mut idx = [0usize; 3];
        for (k, &v) in d.v.iter().enumerate() {
            if vert_map[v as usize] == usize::MAX {
                vert_map[v as usize] = verts.len();
                let p = mesh.vertex(v);
                verts.push((p.x(), p.y()));
            }
            idx[k] = vert_map[v as usize];
        }
        tris.push(idx);
    }
    (verts, tris)
}

/// Writes the mesh as Wavefront OBJ (1-indexed faces, z = 0).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_obj<W: Write>(mesh: &Mesh, mut w: W) -> std::io::Result<()> {
    let (verts, tris) = collect(mesh);
    writeln!(
        w,
        "# deterministic-galois mesh: {} vertices, {} triangles",
        verts.len(),
        tris.len()
    )?;
    for (x, y) in &verts {
        writeln!(w, "v {x} {y} 0")?;
    }
    for t in &tris {
        writeln!(w, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1)?;
    }
    Ok(())
}

/// Writes the mesh as Geomview OFF.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_off<W: Write>(mesh: &Mesh, mut w: W) -> std::io::Result<()> {
    let (verts, tris) = collect(mesh);
    writeln!(w, "OFF")?;
    writeln!(w, "{} {} 0", verts.len(), tris.len())?;
    for (x, y) in &verts {
        writeln!(w, "{x} {y} 0")?;
    }
    for t in &tris {
        writeln!(w, "3 {} {} {}", t[0], t[1], t[2])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::triangulate;
    use galois_geometry::point::random_points;

    #[test]
    fn obj_has_all_faces_and_valid_indices() {
        let mesh = triangulate(&random_points(60, 4));
        let mut buf = Vec::new();
        write_obj(&mesh, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let nv = text.lines().filter(|l| l.starts_with("v ")).count();
        let nf = text.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(nf, mesh.num_tris_alive());
        for line in text.lines().filter(|l| l.starts_with("f ")) {
            for tok in line.split_whitespace().skip(1) {
                let i: usize = tok.parse().unwrap();
                assert!(i >= 1 && i <= nv, "face index {i} out of range");
            }
        }
    }

    #[test]
    fn off_header_is_consistent() {
        let mesh = triangulate(&random_points(25, 6));
        let mut buf = Vec::new();
        write_off(&mesh, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("OFF"));
        let header: Vec<usize> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), header[0] + header[1]);
        assert_eq!(header[1], mesh.num_tris_alive());
    }

    #[test]
    fn dead_triangles_are_excluded() {
        let mesh = triangulate(&random_points(30, 7));
        let victim = mesh.alive_tris().next().unwrap();
        mesh.kill(victim);
        let mut buf = Vec::new();
        write_obj(&mesh, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let nf = text.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(nf, mesh.num_tris_alive());
    }
}
