//! Mesh validation, Delaunay/quality checks, and canonical output forms.

use crate::mesh::{Mesh, INVALID};
use galois_geometry::predicates::{incircle, orient2d_sign};
use galois_geometry::tri::{is_bad, min_angle_deg_of};

/// Structural validation: CCW orientation, valid vertex ids, symmetric
/// neighbor links, shared-edge consistency.
pub fn validate(mesh: &Mesh) -> Result<(), String> {
    for t in mesh.alive_tris() {
        let d = mesh.tri(t);
        for &v in &d.v {
            if v as usize >= mesh.num_verts() {
                return Err(format!("triangle {t} references unallocated vertex {v}"));
            }
        }
        let pts = mesh.tri_points(t);
        if orient2d_sign(pts[0], pts[1], pts[2]) != 1 {
            return Err(format!("triangle {t} is not CCW: {:?}", d.v));
        }
        for i in 0..3 {
            let nb = d.n[i];
            if nb == INVALID {
                continue;
            }
            if !mesh.alive(nb) {
                return Err(format!("triangle {t} points to dead neighbor {nb}"));
            }
            let back = mesh.neighbor_index(nb, t);
            if back.is_none() {
                return Err(format!("neighbor link {t}→{nb} is not symmetric"));
            }
            // The shared edge must have the same endpoints on both sides.
            let (a, b) = (d.v[i], d.v[(i + 1) % 3]);
            if mesh.edge_index(nb, a, b).is_none() {
                return Err(format!(
                    "triangles {t} and {nb} disagree on their shared edge ({a},{b})"
                ));
            }
        }
    }
    Ok(())
}

/// The Delaunay property: no neighbor's opposite vertex lies strictly
/// inside a triangle's circumcircle.
pub fn check_delaunay(mesh: &Mesh) -> Result<(), String> {
    for t in mesh.alive_tris() {
        let d = mesh.tri(t);
        let pts = mesh.tri_points(t);
        for i in 0..3 {
            let nb = d.n[i];
            if nb == INVALID {
                continue;
            }
            let nd = mesh.tri(nb);
            // The vertex of nb not on the shared edge.
            let (a, b) = (d.v[i], d.v[(i + 1) % 3]);
            let opp = nd.v.iter().copied().find(|&v| v != a && v != b);
            let Some(opp) = opp else {
                return Err(format!("triangles {t},{nb} share all vertices"));
            };
            if incircle(pts[0], pts[1], pts[2], mesh.vertex(opp)) > 0 {
                return Err(format!(
                    "vertex {opp} of neighbor {nb} is inside circumcircle of {t}"
                ));
            }
        }
    }
    Ok(())
}

/// Checks every vertex in `0..expect_verts` appears in some alive triangle.
pub fn check_contains_vertices(mesh: &Mesh, expect_verts: usize) -> Result<(), String> {
    let mut used = vec![false; mesh.num_verts()];
    for t in mesh.alive_tris() {
        for &v in &mesh.tri(t).v {
            used[v as usize] = true;
        }
    }
    for (v, &u) in used.iter().enumerate().take(expect_verts) {
        if !u {
            return Err(format!("vertex {v} is missing from the mesh"));
        }
    }
    Ok(())
}

/// Canonical geometric form: each alive triangle as grid-coordinate triples
/// rotated so the lexicographically smallest vertex comes first, the whole
/// set sorted. Two meshes with equal canonical forms are the same
/// triangulation regardless of slot or vertex numbering.
pub fn canonical_triangles(mesh: &Mesh) -> Vec<[(i64, i64); 3]> {
    let mut out: Vec<[(i64, i64); 3]> = mesh
        .alive_tris()
        .map(|t| {
            let pts = mesh.tri_points(t);
            let c: Vec<(i64, i64)> = pts.iter().map(|p| p.to_grid()).collect();
            // Rotate (preserving CCW orientation) so the smallest is first.
            let k = (0..3).min_by_key(|&i| c[i]).unwrap();
            [c[k], c[(k + 1) % 3], c[(k + 2) % 3]]
        })
        .collect();
    out.sort_unstable();
    out
}

/// Quality summary of a mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityStats {
    /// Alive triangles.
    pub triangles: usize,
    /// Triangles still classified bad (refinable and below 30°).
    pub bad: usize,
    /// Smallest interior angle over the mesh, degrees.
    pub min_angle_deg: f64,
}

/// Scans angle quality (for dmr verification).
pub fn quality(mesh: &Mesh) -> QualityStats {
    let mut stats = QualityStats {
        triangles: 0,
        bad: 0,
        min_angle_deg: 180.0,
    };
    for t in mesh.alive_tris() {
        let [a, b, c] = mesh.tri_points(t);
        stats.triangles += 1;
        if is_bad(a, b, c) {
            stats.bad += 1;
        }
        stats.min_angle_deg = stats.min_angle_deg.min(min_angle_deg_of(a, b, c));
    }
    stats
}

/// Ids of alive triangles classified bad, in slot order (used to seed dmr
/// from a deterministically built input mesh).
pub fn bad_triangles(mesh: &Mesh) -> Vec<u32> {
    mesh.alive_tris()
        .filter(|&t| {
            let [a, b, c] = mesh.tri_points(t);
            is_bad(a, b, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::triangulate;
    use galois_geometry::point::random_points;
    use galois_geometry::Point;

    #[test]
    fn canonical_is_renaming_invariant() {
        // Same geometry, different vertex insertion order.
        let pts = random_points(50, 2);
        let mut rev = pts.clone();
        rev.reverse();
        assert_eq!(
            canonical_triangles(&triangulate(&pts)),
            canonical_triangles(&triangulate(&rev))
        );
    }

    #[test]
    fn validate_catches_broken_links() {
        let m = Mesh::with_capacity(8, 8);
        m.add_vertex(Point::from_grid(0, 0));
        m.add_vertex(Point::from_grid(10, 0));
        m.add_vertex(Point::from_grid(0, 10));
        let t = m.create_tri([0, 1, 2]);
        m.set_neighbor(t, 0, 99); // dangling
        assert!(validate(&m).is_err());
    }

    #[test]
    fn validate_catches_cw_triangles() {
        let m = Mesh::with_capacity(8, 8);
        m.add_vertex(Point::from_grid(0, 0));
        m.add_vertex(Point::from_grid(10, 0));
        m.add_vertex(Point::from_grid(0, 10));
        m.create_tri([0, 2, 1]); // clockwise
        assert!(validate(&m).unwrap_err().contains("CCW"));
    }

    #[test]
    fn quality_counts_bad_triangles() {
        // A long skinny triangle (big enough to exceed the refine floor).
        let m = Mesh::with_capacity(8, 8);
        m.add_vertex(Point::from_grid(0, 0));
        m.add_vertex(Point::from_grid(200_000, 0));
        m.add_vertex(Point::from_grid(100_000, 4_000));
        m.create_tri([0, 1, 2]);
        let q = quality(&m);
        assert_eq!(q.triangles, 1);
        assert_eq!(q.bad, 1);
        assert!(q.min_angle_deg < 5.0);
        assert_eq!(bad_triangles(&m), vec![0]);
    }
}
