//! Sequential incremental Delaunay construction.
//!
//! Triangulation happens inside an explicit **square domain**: the mesh
//! starts as the four unit-square corners and two triangles, and every
//! inserted point must lie inside the square. This avoids the classic
//! super-triangle artifact (near-boundary points whose huge flat
//! circumcircles reach artificial far-away vertices and corrupt the hull)
//! without symbolic infinite-vertex predicates: the domain boundary is part
//! of the input, hull edges are always axis-aligned sub-segments of the
//! square sides, and no post-pass removal is needed. The dt benchmark is
//! therefore the Delaunay triangulation of the random points *plus the four
//! corners* (see DESIGN.md).

use crate::cavity::{grow, locate, retriangulate, LocateOutcome};
use crate::mesh::Mesh;
use galois_geometry::point::GRID_BITS;
use galois_geometry::Point;
use std::convert::Infallible;

/// Number of domain-corner vertices (always ids `0..4`).
pub const CORNER_VERTS: u32 = 4;

/// Creates the square-domain start mesh: corners `(0,0), (g,0), (g,g),
/// (0,g)` as vertices `0..4` and two CCW triangles, with capacity for
/// `max_points` insertions plus the given extra headroom.
pub fn square_mesh(max_points: usize, extra_verts: usize, extra_tris: usize) -> Mesh {
    // Each insertion kills ~k and creates ~k+2 triangle slots, k ≈ 4–6
    // expected; 12 slots per point is comfortably above.
    let mesh = Mesh::with_capacity(
        max_points + CORNER_VERTS as usize + extra_verts,
        12 * max_points + extra_tris + 64,
    );
    let g = 1i64 << GRID_BITS;
    let v0 = mesh.add_vertex(Point::from_grid(0, 0));
    let v1 = mesh.add_vertex(Point::from_grid(g, 0));
    let v2 = mesh.add_vertex(Point::from_grid(g, g));
    let v3 = mesh.add_vertex(Point::from_grid(0, g));
    let t0 = mesh.create_tri([v0, v1, v2]);
    let t1 = mesh.create_tri([v0, v2, v3]);
    mesh.set_neighbor(t0, 2, t1); // edge (v2, v0)
    mesh.set_neighbor(t1, 0, t0); // edge (v0, v2)
    mesh
}

/// Sequential Bowyer–Watson builder over the square domain.
#[derive(Debug)]
pub struct SeqBuilder {
    mesh: Mesh,
    hint: u32,
    inserted: usize,
}

impl SeqBuilder {
    /// Creates a builder able to insert up to `max_points` points.
    pub fn new(max_points: usize) -> Self {
        Self::with_headroom(max_points, 0, 0)
    }

    /// Creates a builder with extra vertex and triangle slots beyond what
    /// triangulating `max_points` needs — headroom for later refinement of
    /// the same mesh (dmr adds Steiner vertices and triangles in place).
    pub fn with_headroom(max_points: usize, extra_verts: usize, extra_tris: usize) -> Self {
        SeqBuilder {
            mesh: square_mesh(max_points, extra_verts, extra_tris),
            hint: 0,
            inserted: 0,
        }
    }

    /// Access to the mesh under construction.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Number of successfully inserted points.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Inserts `p`, returning its vertex id, or `None` if `p` duplicates an
    /// existing vertex (including the corners).
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the square domain.
    pub fn insert(&mut self, p: Point) -> Option<u32> {
        let mut nofail = |_: u32| -> Result<(), Infallible> { Ok(()) };
        let start = if self.mesh.alive(self.hint) {
            self.hint
        } else {
            first_alive(&self.mesh)
        };
        let outcome = match locate(&self.mesh, p, start, &mut nofail) {
            Ok(o) => o,
            Err(never) => match never {},
        };
        match outcome {
            LocateOutcome::OnVertex { .. } => None,
            LocateOutcome::OutsideBoundary { .. } => {
                panic!("point {p} lies outside the square domain")
            }
            LocateOutcome::Found(seed) => {
                let cavity = match grow(&self.mesh, p, seed, &mut nofail) {
                    Ok(c) => c,
                    Err(never) => match never {},
                };
                let v = self.mesh.add_vertex(p);
                let created = retriangulate(&self.mesh, &cavity, v);
                self.hint = created[0];
                self.inserted += 1;
                Some(v)
            }
        }
    }

    /// Finishes construction and returns the mesh.
    pub fn into_mesh(self) -> Mesh {
        self.mesh
    }
}

/// First alive triangle by slot scan (walk-hint fallback).
///
/// # Panics
///
/// Panics if the mesh has no alive triangles.
pub fn first_alive(mesh: &Mesh) -> u32 {
    mesh.alive_tris()
        .next()
        .expect("mesh has no alive triangles")
}

/// Convenience: triangulate `points` (plus the domain corners)
/// sequentially, in the given order.
pub fn triangulate(points: &[Point]) -> Mesh {
    let mut b = SeqBuilder::new(points.len());
    for &p in points {
        b.insert(p);
    }
    b.into_mesh()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use crate::mesh::INVALID;
    use galois_geometry::point::random_points;

    #[test]
    fn empty_input_is_the_two_corner_triangles() {
        let mesh = triangulate(&[]);
        assert_eq!(mesh.num_tris_alive(), 2);
        check::validate(&mesh).unwrap();
        check::check_delaunay(&mesh).unwrap();
    }

    #[test]
    fn duplicate_points_are_skipped() {
        let pts = [
            Point::from_grid(10, 10),
            Point::from_grid(900, 80),
            Point::from_grid(10, 10), // dup
            Point::from_grid(0, 0),   // corner dup
            Point::from_grid(400, 900),
        ];
        let mut b = SeqBuilder::new(5);
        assert!(b.insert(pts[0]).is_some());
        assert!(b.insert(pts[1]).is_some());
        assert!(b.insert(pts[2]).is_none());
        assert!(b.insert(pts[3]).is_none());
        assert!(b.insert(pts[4]).is_some());
        assert_eq!(b.inserted(), 3);
    }

    #[test]
    fn random_triangulation_is_delaunay() {
        let pts = random_points(300, 5);
        let mesh = triangulate(&pts);
        check::validate(&mesh).unwrap();
        check::check_delaunay(&mesh).unwrap();
        // Euler: triangles = 2·(n + corners) − 2 − hull. Hull is the square
        // (4 corners plus any points that landed exactly on the sides).
        let alive = mesh.num_tris_alive();
        assert!(
            (560..=620).contains(&alive),
            "plausible triangle count, got {alive}"
        );
        check::check_contains_vertices(&mesh, 4 + 300).unwrap();
    }

    #[test]
    fn hull_edges_are_axis_aligned() {
        let pts = random_points(400, 11);
        let mesh = triangulate(&pts);
        for t in mesh.alive_tris() {
            let d = mesh.tri(t);
            for i in 0..3 {
                if d.n[i] == INVALID {
                    let a = mesh.vertex(d.v[i]).to_grid();
                    let b = mesh.vertex(d.v[(i + 1) % 3]).to_grid();
                    assert!(
                        a.0 == b.0 || a.1 == b.1,
                        "hull edge {a:?}->{b:?} is not axis-aligned"
                    );
                }
            }
        }
    }

    #[test]
    fn insertion_order_does_not_change_canonical_output() {
        let pts = random_points(120, 8);
        let mesh_a = triangulate(&pts);
        let mut rev = pts.clone();
        rev.reverse();
        let mesh_b = triangulate(&rev);
        assert_eq!(
            check::canonical_triangles(&mesh_a),
            check::canonical_triangles(&mesh_b),
            "Delaunay triangulation of points in general position is unique"
        );
    }

    #[test]
    #[should_panic(expected = "outside the square domain")]
    fn outside_point_panics() {
        let mut b = SeqBuilder::new(1);
        b.insert(Point::from_grid(-5, 10));
    }
}
