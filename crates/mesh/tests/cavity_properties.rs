//! Property-based tests of the Bowyer–Watson machinery: arbitrary insertion
//! sequences must preserve every structural and geometric invariant.

use galois_geometry::Point;
use galois_mesh::build::SeqBuilder;
use galois_mesh::cavity::{grow, locate, LocateOutcome};
use galois_mesh::check;
use proptest::prelude::*;
use std::convert::Infallible;

fn grid_points() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::btree_set((1i64..1023, 1i64..1023), 1..50).prop_map(|set| {
        set.into_iter()
            // Spread over the full domain so triangles are not degenerate.
            .map(|(x, y)| Point::from_grid(x << 16, y << 16))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every single insertion the mesh is valid and Delaunay.
    #[test]
    fn every_insertion_preserves_invariants(pts in grid_points()) {
        let mut b = SeqBuilder::new(pts.len());
        for (i, &p) in pts.iter().enumerate() {
            b.insert(p);
            if i % 7 == 0 || i + 1 == pts.len() {
                check::validate(b.mesh()).map_err(TestCaseError::fail)?;
                check::check_delaunay(b.mesh()).map_err(TestCaseError::fail)?;
            }
        }
        // Triangle count obeys Euler's formula: T = 2(n+4) - 2 - hull.
        let mesh = b.into_mesh();
        let n = mesh.num_verts();
        let alive = mesh.num_tris_alive();
        prop_assert!(alive <= 2 * n);
        check::check_contains_vertices(&mesh, n).map_err(TestCaseError::fail)?;
    }

    /// locate() finds a triangle that actually contains the query point.
    #[test]
    fn locate_is_correct(pts in grid_points(), qx in 0i64..1024, qy in 0i64..1024) {
        let mut b = SeqBuilder::new(pts.len());
        for &p in &pts {
            b.insert(p);
        }
        let mesh = b.into_mesh();
        let q = Point::from_grid(qx << 16, qy << 16);
        let start = galois_mesh::build::first_alive(&mesh);
        let mut nofail = |_t: u32| -> Result<(), Infallible> { Ok(()) };
        match locate(&mesh, q, start, &mut nofail).unwrap() {
            LocateOutcome::Found(t) => {
                let [a, b2, c] = mesh.tri_points(t);
                prop_assert!(
                    galois_geometry::predicates::in_triangle(a, b2, c, q),
                    "triangle {t} does not contain {q}"
                );
            }
            LocateOutcome::OnVertex { vertex, .. } => {
                prop_assert_eq!(mesh.vertex(vertex), q);
            }
            LocateOutcome::OutsideBoundary { .. } => {
                // Query within the square domain can never be outside.
                prop_assert!(false, "query inside the domain reported outside");
            }
        }
    }

    /// Cavities are internally consistent: every boundary edge's outer
    /// triangle is alive and not in the cavity; the cavity contains the seed.
    #[test]
    fn cavities_are_well_formed(pts in grid_points(), qx in 1i64..1023, qy in 1i64..1023) {
        let mut b = SeqBuilder::new(pts.len());
        for &p in &pts {
            b.insert(p);
        }
        let mesh = b.into_mesh();
        let q = Point::from_grid(qx << 16, qy << 16);
        let start = galois_mesh::build::first_alive(&mesh);
        let mut nofail = |_t: u32| -> Result<(), Infallible> { Ok(()) };
        let seed = match locate(&mesh, q, start, &mut nofail).unwrap() {
            LocateOutcome::Found(t) => t,
            _ => return Ok(()), // on a vertex: nothing to grow
        };
        let cavity = grow(&mesh, q, seed, &mut nofail).unwrap();
        prop_assert!(cavity.tris.contains(&seed));
        for be in &cavity.boundary {
            if be.outer != galois_mesh::INVALID {
                prop_assert!(mesh.alive(be.outer));
                prop_assert!(!cavity.tris.contains(&be.outer));
            }
            prop_assert_ne!(be.a, be.b);
        }
        // Boundary edge count: a planar cavity of k triangles with its
        // boundary forming a closed walk has at least 3 boundary edges.
        prop_assert!(cavity.boundary.len() >= 3);
    }
}
