//! Round-trip fuzz for the two on-disk formats: [`RunManifest`] and
//! [`LockstepReport`]. For any drawn value, `parse(serialize(x)) == x`;
//! and for any *single-byte* corruption of the serialized form, parsing is
//! rejected — the checksum (or the strict cursor) catches every flip, so a
//! torn or tampered file can never replay as a different run.

use galois_core::manifest::{
    ExecConfig, LockstepEvent, LockstepEventKind, LockstepOutcome, LockstepReport, ScheduleKind,
    LOCKSTEP_REPORT_VERSION, MANIFEST_VERSION,
};
use galois_core::{RunManifest, WorklistPolicy};
use proptest::prelude::*;

const APPS: [&str; 6] = ["bfs", "mis", "mm", "dt", "dmr", "pfp"];
const KINDS: [LockstepEventKind; 6] = [
    LockstepEventKind::Divergence,
    LockstepEventKind::Eviction,
    LockstepEventKind::Death,
    LockstepEventKind::Timeout,
    LockstepEventKind::Fault,
    LockstepEventKind::Refusal,
];
const OUTCOMES: [LockstepOutcome; 3] = [
    LockstepOutcome::Agreed,
    LockstepOutcome::Diverged,
    LockstepOutcome::NoQuorum,
];

/// Event details drawn from the sanitizer's fixed point: characters that
/// `to_json` passes through verbatim, so round-tripping is exact.
fn safe_detail(payload: u64) -> String {
    const CHARS: [char; 16] = [
        'a', 'b', 'z', 'Z', '0', '9', ' ', '_', '-', ':', '.', ',', '(', ')', '/', '%',
    ];
    let mut s = String::new();
    let mut p = payload;
    for _ in 0..(payload % 24) {
        s.push(CHARS[(p % 16) as usize]);
        p = p.rotate_right(5).wrapping_add(7);
    }
    s
}

fn drawn_manifest(seed: u64, hashes: Vec<u64>) -> RunManifest {
    RunManifest {
        version: MANIFEST_VERSION,
        app: APPS[(seed % 6) as usize].to_string(),
        input_key: format!("uniform-n{}-d5-s{}", 100 + seed % 5000, seed % 97),
        input_seed: seed % 97,
        size: if seed.is_multiple_of(3) {
            0
        } else {
            100 + seed % 5000
        },
        exec: ExecConfig {
            threads: 1 + (seed % 16) as usize,
            schedule: match seed % 3 {
                0 => ScheduleKind::Serial,
                1 => ScheduleKind::Speculative,
                _ => ScheduleKind::Deterministic,
            },
            continuation: seed.is_multiple_of(2),
            locality_spread: 1 + (seed % 32) as usize,
            worklist: if seed.is_multiple_of(2) {
                WorklistPolicy::Lifo
            } else {
                WorklistPolicy::Fifo
            },
            chaos_seed: (seed.is_multiple_of(5)).then_some(seed),
            chaos_panics: seed.is_multiple_of(7),
            max_stalled_rounds: 1 + seed % 1000,
        },
        final_fingerprint: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        round_hashes: hashes,
    }
}

fn drawn_report(seed: u64, events: &[(u64, u64)]) -> LockstepReport {
    let replicas = 1 + seed % 7;
    LockstepReport {
        version: LOCKSTEP_REPORT_VERSION,
        app: APPS[(seed % 6) as usize].to_string(),
        input_key: format!("key-{}", seed % 1000),
        replicas,
        window: 1 + seed % 128,
        rounds: seed % 10_000,
        outcome: OUTCOMES[(seed % 3) as usize],
        survivors: (0..replicas).filter(|r| (seed >> r) & 1 == 0).collect(),
        max_buffered: seed % 128,
        output_hash: seed.rotate_left(17),
        final_fingerprint: seed.rotate_left(33),
        events: events
            .iter()
            .map(|&(a, b)| LockstepEvent {
                round: a % 10_000,
                replica: (a % 3 != 0).then_some(a % 7),
                kind: KINDS[(b % 6) as usize],
                expected: a.wrapping_mul(b),
                actual: b.rotate_left(9),
                detail: safe_detail(a ^ b),
            })
            .collect(),
    }
}

/// Asserts every ASCII-safe single-byte flip of `text` fails to parse.
/// The trailing newline is exempt: the loader trims trailing whitespace,
/// so a flip there isn't corruption of the *document*.
fn assert_flips_rejected<T, E: std::fmt::Debug>(text: &str, parse: impl Fn(&str) -> Result<T, E>) {
    let bytes = text.as_bytes();
    let end = if text.ends_with('\n') {
        bytes.len() - 1
    } else {
        bytes.len()
    };
    for at in 0..end {
        let mut flipped = bytes.to_vec();
        flipped[at] ^= 0x01;
        let Ok(corrupt) = String::from_utf8(flipped) else {
            continue;
        };
        assert!(
            parse(&corrupt).is_err(),
            "flip at byte {at} ({:?} -> {:?}) was accepted",
            bytes[at] as char,
            (bytes[at] ^ 0x01) as char,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RunManifest: parse(serialize(x)) == x for drawn manifests.
    fn run_manifest_round_trips(
        seed in 0u64..u64::MAX,
        hashes in proptest::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let manifest = drawn_manifest(seed, hashes);
        let text = manifest.to_json();
        prop_assert_eq!(RunManifest::from_json(&text), Ok(manifest));
    }

    /// RunManifest: every single-byte flip of the serialized form is
    /// rejected (strict cursor or checksum, never a silent reinterpret).
    fn run_manifest_rejects_every_byte_flip(
        seed in 0u64..u64::MAX,
        hashes in proptest::collection::vec(0u64..u64::MAX, 0..6),
    ) {
        let text = drawn_manifest(seed, hashes).to_json();
        assert_flips_rejected(&text, RunManifest::from_json);
    }

    /// LockstepReport: parse(serialize(x)) == x, including the event log.
    fn lockstep_report_round_trips(
        seed in 0u64..u64::MAX,
        events in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..10),
    ) {
        let report = drawn_report(seed, &events);
        let text = report.to_json();
        prop_assert_eq!(LockstepReport::from_json(&text), Ok(report));
    }

    /// LockstepReport: every single-byte flip is rejected.
    fn lockstep_report_rejects_every_byte_flip(
        seed in 0u64..u64::MAX,
        events in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..3),
    ) {
        let text = drawn_report(seed, &events).to_json();
        assert_flips_rejected(&text, LockstepReport::from_json);
    }
}
