//! Steady-state rounds of the deterministic scheduler perform **zero** heap
//! allocations (the perf campaign's allocation-free invariant).
//!
//! A counting `#[global_allocator]` wraps the system allocator; a probe
//! snapshots the counter as round records arrive. After a two-round warm-up
//! (which sizes the slot pool, the per-thread out-buffers and the pending
//! buffer to their high-water capacities) every later round must leave the
//! counter untouched, at every thread count.
//!
//! This file deliberately holds a single `#[test]` so no sibling test can
//! allocate concurrently and pollute the counter.

use galois_core::{Ctx, Executor, MarkTable, OpResult, Schedule};
use galois_runtime::probe::{Probe, RoundRecord};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counter is a relaxed
// atomic, so the wrapper adds no allocation or synchronization of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Snapshots the allocation counter at each round boundary. Round `r`'s
/// record is delivered in round `r + 1`'s serial section, so the delta
/// between the first and last snapshot covers complete scheduler rounds.
#[derive(Default)]
struct AllocProbe {
    warmup_snapshot: Option<u64>,
    last_snapshot: u64,
    rounds_measured: u64,
}

impl Probe for AllocProbe {
    // Request nothing optional: the disabled probe paths must be (and are)
    // allocation-free, which is exactly what this test pins down.
    fn wants_conflicts(&self) -> bool {
        false
    }
    fn wants_timing(&self) -> bool {
        false
    }
    fn conflict_top_k(&self) -> usize {
        0
    }
    fn on_round(&mut self, record: RoundRecord) {
        let now = ALLOC_EVENTS.load(Ordering::Relaxed);
        if record.round >= 2 {
            if self.warmup_snapshot.is_none() {
                self.warmup_snapshot = Some(now);
            }
            self.last_snapshot = now;
            self.rounds_measured += 1;
        }
    }
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    // All tasks fight over one location, so every round commits exactly one
    // task: a long serialized run with many steady-state rounds and a
    // failed-task write-back every round — the scheduler's full hot path.
    for threads in [1usize, 2, 4, 8] {
        let marks = MarkTable::new(1);
        let op = |_t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire(0u32)?;
            ctx.failsafe()?;
            Ok(())
        };
        let mut probe = AllocProbe::default();
        let report = Executor::new()
            .threads(threads)
            .schedule(Schedule::deterministic())
            .iterate((0..40u64).collect())
            .probe(&mut probe)
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 40);
        let warm = probe
            .warmup_snapshot
            .expect("run reaches round 2 (threads={threads})");
        assert!(
            probe.rounds_measured >= 20,
            "expected a long steady state, measured {} rounds (threads={threads})",
            probe.rounds_measured
        );
        assert_eq!(
            probe.last_snapshot - warm,
            0,
            "steady-state rounds allocated (threads={threads}, rounds={})",
            probe.rounds_measured
        );
    }
}
