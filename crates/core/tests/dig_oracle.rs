//! A redundant sequential oracle of the DIG scheduler.
//!
//! This test reimplements the semantics of Figures 2–3 as a plain
//! sequential simulation — windows carved with the same [`AdaptiveWindow`],
//! interference resolved by per-location maxima, failed tasks prepended,
//! created tasks sorted by `(parent, rank)` — and checks that the real
//! parallel executor produces exactly the commit order the oracle predicts,
//! per location, at several thread counts.
//!
//! Any divergence between `galois-core`'s optimized implementation (abort
//! flags, slot recycling, per-thread output buffers) and the paper's
//! abstract algorithm shows up here.

use galois_core::window::{AdaptiveWindow, WindowPolicy};
use galois_core::{Ctx, Executor, MarkTable, OpResult, Schedule};
use std::collections::VecDeque;
use std::sync::Mutex;

const LOCS: u64 = 12;

/// The static neighborhood of a task (mirrored by the operator below).
fn neighborhood(t: u64) -> Vec<u64> {
    let a = t % LOCS;
    let b = (t.wrapping_mul(7) + 3) % LOCS;
    if a == b {
        vec![a]
    } else {
        vec![a, b]
    }
}

/// Whether the task creates a child, and which.
fn child_of(t: u64) -> Option<u64> {
    (t < 50).then_some(t + 1000)
}

/// Sequential simulation of the deterministic scheduler: returns the
/// per-location commit logs.
fn oracle(tasks: &[u64]) -> Vec<Vec<u64>> {
    #[derive(Clone)]
    struct Item {
        task: u64,
        id: u64,
    }
    let mut logs: Vec<Vec<u64>> = vec![Vec::new(); LOCS as usize];
    // Pass 0: ids in input order.
    let mut pending: VecDeque<Item> = tasks
        .iter()
        .enumerate()
        .map(|(i, &t)| Item {
            task: t,
            id: i as u64,
        })
        .collect();
    loop {
        if pending.is_empty() {
            break;
        }
        let mut window = AdaptiveWindow::for_pass(WindowPolicy::default(), pending.len());
        let mut todo: Vec<(u64, u32, u64)> = Vec::new(); // (parent, rank, task)
        while !pending.is_empty() {
            let w = window.size().min(pending.len());
            let cur: Vec<Item> = pending.drain(..w).collect();
            // Interference: per-location maximum id among cur.
            let mut max_at = vec![None::<u64>; LOCS as usize];
            for item in &cur {
                for loc in neighborhood(item.task) {
                    let slot = &mut max_at[loc as usize];
                    *slot = Some(slot.map_or(item.id, |m: u64| m.max(item.id)));
                }
            }
            // Select: a task commits iff it is the max everywhere it touches.
            let mut committed = 0usize;
            let mut failed: Vec<Item> = Vec::new();
            for item in &cur {
                let selected = neighborhood(item.task)
                    .into_iter()
                    .all(|loc| max_at[loc as usize] == Some(item.id));
                if selected {
                    committed += 1;
                    for loc in neighborhood(item.task) {
                        logs[loc as usize].push(item.task);
                    }
                    if let Some(c) = child_of(item.task) {
                        todo.push((item.id, 0, c));
                    }
                } else {
                    failed.push(item.clone());
                }
            }
            window.update(w, committed);
            for item in failed.into_iter().rev() {
                pending.push_front(item);
            }
        }
        // Pass boundary: sort created tasks by (parent, rank), renumber.
        todo.sort_by_key(|&(parent, rank, _)| (parent, rank));
        pending = todo
            .into_iter()
            .enumerate()
            .map(|(i, (_, _, task))| Item { task, id: i as u64 })
            .collect();
    }
    logs
}

/// Runs the real executor and collects the same per-location logs.
fn real(tasks: &[u64], threads: usize) -> Vec<Vec<u64>> {
    let logs: Vec<Mutex<Vec<u64>>> = (0..LOCS).map(|_| Mutex::new(Vec::new())).collect();
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        for loc in neighborhood(*t) {
            ctx.acquire(loc as u32)?;
        }
        ctx.failsafe()?;
        for loc in neighborhood(*t) {
            logs[loc as usize].lock().unwrap().push(*t);
        }
        if let Some(c) = child_of(*t) {
            ctx.push(c);
        }
        Ok(())
    };
    let marks = MarkTable::new(LOCS as usize);
    Executor::new()
        .threads(threads)
        .schedule(Schedule::deterministic())
        .iterate(tasks.to_vec())
        .run(&marks, &op);
    logs.into_iter().map(|m| m.into_inner().unwrap()).collect()
}

#[test]
fn executor_matches_sequential_oracle() {
    let tasks: Vec<u64> = (0..120).collect();
    let expect = oracle(&tasks);
    for threads in [1usize, 2, 4] {
        assert_eq!(real(&tasks, threads), expect, "threads = {threads}");
    }
}

#[test]
fn executor_matches_oracle_on_permuted_inputs() {
    // A fixed pseudo-random permutation: initial ids follow input order, so
    // the oracle must track it exactly.
    let mut tasks: Vec<u64> = (0..90).collect();
    for i in 0..tasks.len() {
        let j = (i * 7919 + 13) % tasks.len();
        tasks.swap(i, j);
    }
    let expect = oracle(&tasks);
    for threads in [1usize, 3] {
        assert_eq!(real(&tasks, threads), expect, "threads = {threads}");
    }
}

#[test]
fn executor_matches_oracle_with_duplicates() {
    // Duplicate payloads are distinct tasks with distinct ids.
    let tasks: Vec<u64> = (0..60).map(|i| i % 13).collect();
    let expect = oracle(&tasks);
    assert_eq!(real(&tasks, 2), expect);
}

#[test]
fn oracle_and_executor_agree_on_tiny_inputs() {
    for n in [0u64, 1, 2, 3, 7] {
        let tasks: Vec<u64> = (0..n).collect();
        let expect = oracle(&tasks);
        assert_eq!(real(&tasks, 2), expect, "n = {n}");
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For arbitrary task multisets, the parallel executor's
        /// per-location commit order equals the sequential oracle's.
        #[test]
        fn oracle_agreement_on_arbitrary_inputs(
            tasks in proptest::collection::vec(0u64..200, 0..100),
            threads in 1usize..5,
        ) {
            let expect = oracle(&tasks);
            prop_assert_eq!(real(&tasks, threads), expect);
        }
    }
}
