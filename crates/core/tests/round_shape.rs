//! Count-based shape invariants of the deterministic round protocol —
//! the CI perf-smoke checks. Wall-clock is too noisy for CI; the counts
//! behind the hot-path campaign are exact:
//!
//! - every DIG round crosses exactly **2** barriers (the fused
//!   commit/prepare crossing plus the inspect barrier; see DESIGN.md
//!   "Hot paths"),
//! - the barrier count is identical at every thread count (it is part of
//!   the portable schedule, not a tuning knob).

use galois_core::{Ctx, Executor, MarkTable, OpResult, Schedule};
use galois_runtime::simtime::ExecTrace;

#[test]
fn deterministic_rounds_cross_exactly_two_barriers() {
    for threads in [1usize, 2, 4, 8] {
        let marks = MarkTable::new(64);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire((*t % 64) as u32)?;
            ctx.failsafe()?;
            Ok(())
        };
        let report = Executor::new()
            .threads(threads)
            .schedule(Schedule::deterministic())
            .record_trace(true)
            .iterate((0..512u64).collect())
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 512);
        let Some(ExecTrace::Rounds(rounds)) = &report.trace else {
            panic!("deterministic run must record a rounds trace");
        };
        assert!(
            rounds.len() >= 2,
            "need several rounds to make the claim meaningful (threads={threads})"
        );
        for (i, r) in rounds.iter().enumerate() {
            assert_eq!(
                r.barriers, 2,
                "round {i} crossed {} barriers, protocol says 2 (threads={threads})",
                r.barriers
            );
        }
    }
}
