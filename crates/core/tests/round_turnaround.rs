//! Round-turnaround properties of the epoch-tagged DIG scheduler.
//!
//! The scheduler retires each round's marks and abort flags with two epoch
//! bumps instead of per-location release CASes, and the workers — not the
//! leader — fill the window from the pending buffer. These tests pin down
//! the two properties that refactor must not disturb:
//!
//! 1. **Portability**: the committed order *and* the round geometry (window
//!    sizes, round count) are bit-identical across thread counts.
//! 2. **On-demand determinism**: deterministic and speculative executions
//!    interleave over one shared [`MarkTable`] — stale deterministic marks
//!    are invisible to speculative acquisition and vice versa.
//!
//! Plus the turnaround acceptance criterion itself: deterministic rounds
//! perform **zero** per-location release CASes.

use galois_core::{Ctx, Executor, MarkTable, OpResult, RunReport, Schedule};
use galois_runtime::simtime::ExecTrace;
use std::sync::Mutex;

const LOCS: usize = 16;

/// Conflict-heavy operator: task `t` acquires `{t mod L, (3t+1) mod L}` and
/// appends itself to both locations' logs; tasks below 40 push a child.
fn run_det(tasks: &[u64], threads: usize) -> (Vec<Vec<u64>>, RunReport) {
    let logs: Vec<Mutex<Vec<u64>>> = (0..LOCS).map(|_| Mutex::new(Vec::new())).collect();
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        let a = (*t % LOCS as u64) as u32;
        let b = ((3 * *t + 1) % LOCS as u64) as u32;
        ctx.acquire(a)?;
        ctx.acquire(b)?;
        ctx.failsafe()?;
        logs[a as usize].lock().unwrap().push(*t);
        if b != a {
            logs[b as usize].lock().unwrap().push(*t);
        }
        if *t < 40 {
            ctx.push(*t + 500);
        }
        Ok(())
    };
    let marks = MarkTable::new(LOCS);
    let report = Executor::new()
        .threads(threads)
        .schedule(Schedule::deterministic())
        .record_trace(true)
        .iterate(tasks.to_vec())
        .run(&marks, &op);
    assert!(marks.all_unowned(), "threads={threads} left marks owned");
    (
        logs.into_iter().map(|m| m.into_inner().unwrap()).collect(),
        report,
    )
}

/// Per-round window sizes, read off the recorded round trace.
fn window_sizes(report: &RunReport) -> Vec<u64> {
    match report.trace.as_ref().expect("trace requested") {
        ExecTrace::Rounds(rounds) => rounds.iter().map(|r| r.inspect.count).collect(),
        other => panic!("expected rounds trace, got {other:?}"),
    }
}

#[test]
fn committed_order_and_round_geometry_identical_across_thread_counts() {
    let tasks: Vec<u64> = (0..160).collect();
    let (ref_logs, ref_report) = run_det(&tasks, 1);
    let ref_windows = window_sizes(&ref_report);
    assert!(ref_report.stats.rounds > 1, "workload must span rounds");
    for threads in [2usize, 4, 8] {
        let (logs, report) = run_det(&tasks, threads);
        assert_eq!(logs, ref_logs, "threads={threads} changed the commit order");
        assert_eq!(
            window_sizes(&report),
            ref_windows,
            "threads={threads} changed the round geometry"
        );
        assert_eq!(report.stats.rounds, ref_report.stats.rounds);
        assert_eq!(report.stats.committed, ref_report.stats.committed);
        assert_eq!(report.stats.aborted, ref_report.stats.aborted);
    }
}

#[test]
fn deterministic_rounds_issue_zero_release_cases() {
    // The acceptance criterion of the epoch-mark protocol: the commit phase
    // performs no per-location release CAS at all; the avoided count equals
    // one per neighborhood location per attempt under the old protocol.
    let tasks: Vec<u64> = (0..200).collect();
    for threads in [1usize, 2, 4, 8] {
        let (_, report) = run_det(&tasks, threads);
        assert_eq!(
            report.stats.mark_releases, 0,
            "threads={threads}: deterministic rounds must not CAS-release"
        );
        assert!(
            report.stats.releases_avoided >= report.stats.committed,
            "threads={threads}: every attempt covers >= 1 location"
        );
    }
}

#[test]
fn speculative_runs_still_count_their_release_cases() {
    let marks = MarkTable::new(LOCS);
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        ctx.acquire((*t % LOCS as u64) as u32)?;
        ctx.failsafe()?;
        Ok(())
    };
    let report = Executor::new()
        .threads(2)
        .schedule(Schedule::Speculative)
        .iterate((0..300u64).collect())
        .run(&marks, &op);
    assert_eq!(report.stats.committed, 300);
    assert!(
        report.stats.mark_releases >= 300,
        "speculative executor keeps the per-location release protocol"
    );
    assert_eq!(report.stats.releases_avoided, 0);
}

#[test]
fn on_demand_schedulers_share_one_mark_table() {
    // §1's on-demand promise: one program, one mark table, scheduler chosen
    // per loop. Run deterministic → speculative → deterministic over the
    // same table; stale epoch-retired marks must be invisible to the
    // speculative CAS protocol and speculative raw zeros to the epoch one.
    let marks = MarkTable::new(LOCS);
    let sum = std::sync::atomic::AtomicU64::new(0);
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        ctx.acquire((*t % LOCS as u64) as u32)?;
        ctx.failsafe()?;
        sum.fetch_add(*t, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    };
    let det = Executor::new()
        .threads(4)
        .schedule(Schedule::deterministic());
    let spec = Executor::new().threads(4).schedule(Schedule::Speculative);

    let r1 = det.iterate((0..100u64).collect()).run(&marks, &op);
    assert_eq!(r1.stats.committed, 100);
    assert!(marks.all_unowned());

    let r2 = spec.iterate((100..200u64).collect()).run(&marks, &op);
    assert_eq!(r2.stats.committed, 100);
    assert!(marks.all_unowned());

    let r3 = det.iterate((200..300u64).collect()).run(&marks, &op);
    assert_eq!(r3.stats.committed, 100);
    assert!(marks.all_unowned());

    assert_eq!(
        sum.load(std::sync::atomic::Ordering::Relaxed),
        (0..300u64).sum::<u64>()
    );
}

#[test]
fn dedup_dropped_surfaces_preassigned_id_collisions() {
    // `run_with_ids` deduplicates equal-id initial tasks by contract; the
    // count of silently dropped tasks must be observable so callers can tell
    // intentional dedup from an id-function bug.
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        ctx.acquire((*t % 32) as u32)?;
        ctx.failsafe()?;
        Ok(())
    };
    let marks = MarkTable::new(32);
    let mut tasks: Vec<u64> = (0..32).collect();
    tasks.extend(0..16u64); // 16 duplicate ids
    let report = Executor::new()
        .threads(2)
        .schedule(Schedule::deterministic())
        .iterate(tasks)
        .with_ids(|t| *t, 32)
        .run(&marks, &op);
    assert_eq!(report.stats.committed, 32);
    assert_eq!(report.stats.dedup_dropped, 16, "dropped tasks are counted");

    // Collision-free ids report zero.
    let marks = MarkTable::new(32);
    let report = Executor::new()
        .threads(2)
        .schedule(Schedule::deterministic())
        .iterate((0..32u64).collect())
        .with_ids(|t| *t, 32)
        .run(&marks, &op);
    assert_eq!(report.stats.committed, 32);
    assert_eq!(report.stats.dedup_dropped, 0);

    // The plain `run` path never dedups: equal payloads get distinct ids.
    let marks = MarkTable::new(32);
    let mut tasks: Vec<u64> = (0..32).collect();
    tasks.extend(0..16u64);
    let report = Executor::new()
        .threads(2)
        .schedule(Schedule::deterministic())
        .iterate(tasks)
        .run(&marks, &op);
    assert_eq!(report.stats.committed, 48);
    assert_eq!(report.stats.dedup_dropped, 0);
}
