//! Invariants of the schedulers, tested through the public API.

use galois_core::{
    Ctx, DetOptions, Executor, MarkTable, OpResult, Schedule, WindowPolicy, WorklistPolicy,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tasks contend on `locs` locations; half push one child each.
fn contended_op<'a>(
    locs: u64,
    sum: &'a AtomicU64,
) -> impl Fn(&u64, &mut Ctx<'_, u64>) -> OpResult + Sync + 'a {
    move |t: &u64, ctx: &mut Ctx<'_, u64>| {
        ctx.acquire((*t % locs) as u32)?;
        ctx.acquire(((*t + 1) % locs) as u32)?;
        ctx.failsafe()?;
        sum.fetch_add(*t, Ordering::Relaxed);
        if *t >= 1000 && *t < 1000 + locs / 2 {
            ctx.push(*t - 1000);
        }
        Ok(())
    }
}

#[test]
fn det_inspected_equals_attempts_and_marks_end_clean() {
    let locs = 32u64;
    let sum = AtomicU64::new(0);
    let marks = MarkTable::new(locs as usize);
    let op = contended_op(locs, &sum);
    let tasks: Vec<u64> = (1000..1000 + 2 * locs).collect();
    let report = Executor::new()
        .threads(3)
        .schedule(Schedule::deterministic())
        .iterate(tasks)
        .run(&marks, &op);
    // Every attempted task is inspected exactly once per round it appears in.
    assert_eq!(
        report.stats.inspected,
        report.stats.committed + report.stats.aborted
    );
    assert!(marks.all_unowned(), "all marks released");
    // 2*locs initial + locs/2 children.
    assert_eq!(report.stats.committed, 2 * locs + locs / 2);
}

#[test]
fn spec_commits_initial_plus_children() {
    let locs = 32u64;
    let sum = AtomicU64::new(0);
    let marks = MarkTable::new(locs as usize);
    let op = contended_op(locs, &sum);
    let tasks: Vec<u64> = (1000..1000 + 2 * locs).collect();
    let report = Executor::new()
        .threads(4)
        .schedule(Schedule::Speculative)
        .iterate(tasks)
        .run(&marks, &op);
    assert_eq!(report.stats.committed, 2 * locs + locs / 2);
    assert!(marks.all_unowned());
}

#[test]
fn all_schedules_compute_the_same_commutative_sum() {
    let locs = 16u64;
    let tasks: Vec<u64> = (1000..1600).collect();
    let mut sums = Vec::new();
    for schedule in [
        Schedule::Serial,
        Schedule::Speculative,
        Schedule::deterministic(),
    ] {
        let sum = AtomicU64::new(0);
        let marks = MarkTable::new(locs as usize);
        let op = contended_op(locs, &sum);
        Executor::new()
            .threads(2)
            .schedule(schedule)
            .iterate(tasks.clone())
            .run(&marks, &op);
        sums.push(sum.load(Ordering::Relaxed));
    }
    assert_eq!(sums[0], sums[1]);
    assert_eq!(sums[0], sums[2]);
}

#[test]
fn every_round_commits_at_least_one_task() {
    // All tasks share a single location: total serialization, so the round
    // count equals the task count — and never exceeds it (progress).
    let marks = MarkTable::new(1);
    let log = Mutex::new(Vec::new());
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        ctx.acquire(0u32)?;
        ctx.failsafe()?;
        log.lock().unwrap().push(*t);
        Ok(())
    };
    let n = 50u64;
    let report = Executor::new()
        .threads(2)
        .schedule(Schedule::deterministic())
        .iterate((0..n).collect())
        .run(&marks, &op);
    assert_eq!(report.stats.committed, n);
    assert!(report.stats.rounds <= n, "progress guarantee");
}

#[test]
fn tiny_window_policy_still_terminates_with_same_output() {
    // The window constants are part of the algorithm; any valid constants
    // must still terminate and commit everything (though the schedule — and
    // for order-sensitive operators the output — may differ).
    let run = |policy: WindowPolicy| {
        let marks = MarkTable::new(8);
        let count = AtomicU64::new(0);
        let op = |_t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire(0u32)?;
            ctx.failsafe()?;
            count.fetch_add(1, Ordering::Relaxed);
            Ok(())
        };
        let report = Executor::new()
            .schedule(Schedule::Deterministic(DetOptions {
                window: policy,
                ..Default::default()
            }))
            .iterate((0..200u64).collect())
            .run(&marks, &op);
        (
            count.load(Ordering::Relaxed),
            report.stats.committed,
            report.stats.rounds,
        )
    };
    let tiny = run(WindowPolicy {
        min_window: 1,
        max_window: 2,
        ..Default::default()
    });
    let huge = run(WindowPolicy {
        min_window: 100_000,
        max_window: 1 << 20,
        ..Default::default()
    });
    assert_eq!(tiny.0, 200);
    assert_eq!(huge.0, 200);
    assert!(
        tiny.2 >= huge.2,
        "smaller windows mean at least as many rounds"
    );
}

#[test]
fn preassigned_ids_give_node_order_priority() {
    // With pre-assigned ids and a single shared location, the LOWEST id
    // never commits first... rather: each round the max id in the window
    // commits. With window >= all tasks, order is highest-first.
    let marks = MarkTable::new(1);
    let log = Mutex::new(Vec::new());
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        ctx.acquire(0u32)?;
        ctx.failsafe()?;
        log.lock().unwrap().push(*t);
        Ok(())
    };
    let report = Executor::new()
        .schedule(Schedule::Deterministic(DetOptions {
            window: WindowPolicy {
                min_window: 64,
                max_window: 64,
                ..Default::default()
            },
            ..Default::default()
        }))
        .iterate((0..20u64).collect())
        .with_ids(|t| *t, 20)
        .run(&marks, &op);
    assert_eq!(report.stats.committed, 20);
    let order = log.into_inner().unwrap();
    assert_eq!(
        order,
        (0..20u64).rev().collect::<Vec<_>>(),
        "single-location contention commits the round's max id first"
    );
}

#[test]
fn worklist_policy_does_not_change_speculative_totals() {
    for policy in [WorklistPolicy::Lifo, WorklistPolicy::Fifo] {
        let marks = MarkTable::new(64);
        let count = AtomicU64::new(0);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire((*t % 64) as u32)?;
            ctx.failsafe()?;
            count.fetch_add(1, Ordering::Relaxed);
            if *t < 100 {
                ctx.push(*t + 1000);
            }
            Ok(())
        };
        let report = Executor::new()
            .threads(3)
            .schedule(Schedule::Speculative)
            .worklist(policy)
            .iterate((0..100u64).collect())
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 200, "{policy:?}");
        assert_eq!(count.load(Ordering::Relaxed), 200);
    }
}

#[test]
fn nested_generations_keep_deterministic_order() {
    // Three generations of task creation with conflicts. Determinism is
    // per-location: tasks sharing a location serialize in a deterministic
    // order, so each location's commit log must be identical across thread
    // counts. (A single global log would also record the *wall-clock*
    // interleaving of independent tasks, which no scheduler specifies.)
    let run = |threads: usize| {
        let marks = MarkTable::new(4);
        let logs: Vec<Mutex<Vec<u64>>> = (0..4).map(|_| Mutex::new(Vec::new())).collect();
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            let l = (*t % 4) as u32;
            ctx.acquire(l)?;
            ctx.failsafe()?;
            logs[l as usize].lock().unwrap().push(*t);
            if *t < 100 {
                ctx.push(*t + 100);
                ctx.push(*t + 200);
            } else if *t < 300 {
                ctx.push(*t + 1000);
            }
            Ok(())
        };
        Executor::new()
            .threads(threads)
            .schedule(Schedule::deterministic())
            .iterate((0..20u64).collect())
            .run(&marks, &op);
        logs.into_iter()
            .map(|l| l.into_inner().unwrap())
            .collect::<Vec<_>>()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.iter().map(|l| l.len()).sum::<usize>(), 20 + 40 + 40);
    assert_eq!(a, b);
}

#[test]
fn trace_and_access_recording_compose() {
    let marks = MarkTable::new(8);
    let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
        ctx.acquire((*t % 8) as u32)?;
        ctx.failsafe()?;
        Ok(())
    };
    let report = Executor::new()
        .threads(2)
        .schedule(Schedule::deterministic())
        .record_trace(true)
        .record_access(true)
        .iterate((0..64u64).collect())
        .run(&marks, &op);
    assert!(report.trace.is_some());
    let accesses = report.accesses.unwrap();
    assert_eq!(accesses.len(), 2, "one stream per thread");
    let total: usize = accesses.iter().map(|s| s.len()).sum();
    // Each committed task records its location at inspect, commit-verify,
    // and commit-write: at least 2 accesses per commit.
    assert!(total >= 2 * 64, "recorded {total} accesses");
}
