//! Per-round abort flags (§3.3, continuation-optimization protocol).
//!
//! During the inspect phase, when task `t` displaces task `u`'s mark (or
//! loses to it), the event is recorded by setting the affected task's flag.
//! At the end of the phase, a task's flag is clear **iff** every one of its
//! neighborhood marks still holds its id — i.e. iff it belongs to the
//! deterministic independent set. Checking one flag at commit time replaces
//! re-reading the whole neighborhood.
//!
//! The flag outcome is order-insensitive: for any pair of conflicting tasks,
//! either the lower-id task writes first and is later displaced (flagged by
//! the displacer) or it arrives second and loses the max (flags itself); in
//! both interleavings exactly the lower task ends up flagged.

use std::sync::atomic::{AtomicBool, Ordering};

/// A dense array of abort flags indexed by pass-local task id.
#[derive(Debug)]
pub struct AbortFlags {
    flags: Box<[AtomicBool]>,
}

impl AbortFlags {
    /// Creates `len` clear flags.
    pub fn new(len: usize) -> Self {
        let flags: Vec<AtomicBool> = (0..len).map(|_| AtomicBool::new(false)).collect();
        AbortFlags {
            flags: flags.into_boxed_slice(),
        }
    }

    /// Number of flags.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Sets task `id`'s flag (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn set(&self, id: usize) {
        self.flags[id].store(true, Ordering::Release);
    }

    /// Reads task `id`'s flag.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn get(&self, id: usize) -> bool {
        self.flags[id].load(Ordering::Acquire)
    }

    /// Clears the flags of the given ids (round cleanup).
    pub fn clear_ids(&self, ids: impl IntoIterator<Item = usize>) {
        for id in ids {
            self.flags[id].store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let f = AbortFlags::new(4);
        assert!(!f.get(2));
        f.set(2);
        assert!(f.get(2));
        f.set(2);
        assert!(f.get(2), "idempotent");
        f.clear_ids([2usize]);
        assert!(!f.get(2));
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let f = AbortFlags::new(1);
        f.set(1);
    }
}
