//! Per-round abort flags (§3.3, continuation-optimization protocol).
//!
//! During the inspect phase, when task `t` displaces task `u`'s mark (or
//! loses to it), the event is recorded by setting the affected task's flag.
//! At the end of the phase, a task's flag is clear **iff** every one of its
//! neighborhood marks still holds its id — i.e. iff it belongs to the
//! deterministic independent set. Checking one flag at commit time replaces
//! re-reading the whole neighborhood.
//!
//! The flag outcome is order-insensitive: for any pair of conflicting tasks,
//! either the lower-id task writes first and is later displaced (flagged by
//! the displacer) or it arrives second and loses the max (flags itself); in
//! both interleavings exactly the lower task ends up flagged.
//!
//! # Epoch stamps
//!
//! Flags are stored as **round stamps**, not booleans: `set(id)` writes the
//! current round epoch into slot `id`, and `get(id)` reports whether the
//! stored stamp equals the current epoch. Advancing the epoch
//! ([`AbortFlags::advance`], one counter increment) therefore clears every
//! flag at once — the scheduler no longer walks committed tasks to reset
//! their flags one by one, and the array is reused across passes via
//! [`AbortFlags::grow`] instead of being reallocated. The epoch is a `u64`
//! bumped once per round, so it never wraps in practice; slots are
//! initialized to `u64::MAX`, which no epoch ever reaches.

use std::sync::atomic::{AtomicU64, Ordering};

/// Stamp meaning "never set": no reachable epoch equals it.
const CLEAR: u64 = u64::MAX;

/// A dense array of abort flags indexed by pass-local task id, cleared in
/// O(1) per round by advancing an internal epoch.
#[derive(Debug)]
pub struct AbortFlags {
    stamps: Box<[AtomicU64]>,
    epoch: AtomicU64,
}

fn clear_stamps(len: usize) -> Box<[AtomicU64]> {
    (0..len)
        .map(|_| AtomicU64::new(CLEAR))
        .collect::<Vec<_>>()
        .into_boxed_slice()
}

impl AbortFlags {
    /// Creates `len` clear flags.
    pub fn new(len: usize) -> Self {
        AbortFlags {
            stamps: clear_stamps(len),
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of flags.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Sets task `id`'s flag (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn set(&self, id: usize) {
        self.stamps[id].store(self.epoch.load(Ordering::Relaxed), Ordering::Release);
    }

    /// Reads task `id`'s flag.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn get(&self, id: usize) -> bool {
        self.stamps[id].load(Ordering::Acquire) == self.epoch.load(Ordering::Relaxed)
    }

    /// Clears **all** flags in O(1) by advancing the epoch.
    ///
    /// Must be called from a quiescent context (no concurrent `set`/`get`);
    /// the DIG leader does so between round barriers.
    pub fn advance(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Ensures capacity for at least `len` flags, leaving every flag clear.
    ///
    /// Amortized: the backing array at least doubles when it grows, so a
    /// scheduler calling this once per pass reallocates O(log n) times
    /// instead of every pass.
    pub fn grow(&mut self, len: usize) {
        if len > self.stamps.len() {
            self.stamps = clear_stamps(len.max(self.stamps.len() * 2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_advance() {
        let f = AbortFlags::new(4);
        assert!(!f.get(2));
        f.set(2);
        assert!(f.get(2));
        f.set(2);
        assert!(f.get(2), "idempotent");
        f.advance();
        assert!(!f.get(2), "advance clears");
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
    }

    #[test]
    fn advance_clears_all_flags_at_once() {
        let f = AbortFlags::new(8);
        for id in 0..8 {
            f.set(id);
        }
        f.advance();
        assert!((0..8).all(|id| !f.get(id)));
        // Stamps from earlier epochs never read as set again.
        f.set(3);
        f.advance();
        f.advance();
        assert!(!f.get(3));
    }

    #[test]
    fn grow_extends_and_clears() {
        let mut f = AbortFlags::new(2);
        f.set(1);
        f.grow(5);
        assert!(f.len() >= 5);
        assert!((0..f.len()).all(|id| !f.get(id)), "grown array is clear");
        f.set(4);
        assert!(f.get(4));
        let cap = f.len();
        f.grow(3); // no-op: already large enough
        assert_eq!(f.len(), cap);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let f = AbortFlags::new(1);
        f.set(1);
    }
}
