//! The operator abstraction.

use crate::ctx::{Ctx, OpResult};

/// A Galois operator: the body of the `foreach` loop of Figure 1a.
///
/// Operators must be **cautious**: all [`Ctx::acquire`] calls must precede
/// [`Ctx::failsafe`], and all writes to shared state must follow it. The
/// runtime relies on this to roll back conflicted tasks by releasing marks
/// alone, and to stop inspect-phase execution at the failsafe point.
///
/// Implemented automatically by closures:
///
/// ```
/// use galois_core::{Ctx, OpResult};
///
/// fn takes_operator(op: impl galois_core::Operator<u32>) {}
///
/// takes_operator(|task: &u32, ctx: &mut Ctx<'_, u32>| -> OpResult {
///     ctx.acquire(*task)?;
///     ctx.failsafe()?;
///     Ok(())
/// });
/// ```
pub trait Operator<T>: Sync {
    /// Executes the operator on `task`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Abort`] when the runtime stops the invocation (a
    /// speculative conflict, or the inspect phase reaching its failsafe
    /// point). Operator code only ever produces these via `?` on `Ctx`
    /// methods.
    fn run(&self, task: &T, ctx: &mut Ctx<'_, T>) -> OpResult;
}

impl<T, F> Operator<T> for F
where
    F: Fn(&T, &mut Ctx<'_, T>) -> OpResult + Sync,
{
    fn run(&self, task: &T, ctx: &mut Ctx<'_, T>) -> OpResult {
        self(task, ctx)
    }
}
