//! The deterministic DIG scheduler (Figures 2–3).
//!
//! Tasks execute in bulk-synchronous **rounds**. Each round:
//!
//! 1. **prepare** (one thread): retire the previous round's marks and abort
//!    flags by bumping their epochs (two counter increments — see below),
//!    then carve a window-sized index range of the deterministically ordered
//!    pending buffer; adapt the window from the previous round's commit
//!    ratio.
//! 2. **inspect** (all threads): claim a slot, pull its task out of the
//!    pending buffer (the *workers* fill the window, not the leader), and run
//!    it up to its failsafe point, marking its neighborhood with
//!    `writeMarkMax`. The cumulative marks implicitly build the round's
//!    interference graph; abort flags record which tasks lost an edge to a
//!    higher id.
//! 3. **commit** (all threads): tasks whose flag is clear form the unique
//!    deterministic independent set; they re-execute (or resume from their
//!    checkpointed continuation) and commit. Each worker keys its committed
//!    tasks' children with `(parent, rank)` and collects children and failed
//!    tasks into per-thread buffers over a *contiguous* slot range, so
//!    concatenating the buffers in thread order reproduces slot order — the
//!    leader's stitch is O(threads) bookkeeping plus buffer moves, never a
//!    per-task scan.
//!
//! Passes (Figure 2's outer loop) drain the pending sequence; created tasks
//! accumulate in `todo` and become the next pass after deterministic id
//! assignment. Every structure that influences the schedule — window sizes,
//! ids, independent sets — is a pure function of committed-task history, so
//! the schedule is identical for every thread count (**portability**).
//!
//! # Two barriers per round
//!
//! A naive phase split costs three crossings per round (prepare → inspect →
//! commit → prepare…). Workers are completely quiescent between the end of
//! commit and the start of the next inspect — all inter-round work is the
//! leader's — so the commit barrier and the prepare barrier fuse into one:
//! [`SenseBarrier::wait_serial_checked`] lets the leader run the entire
//! serial section (merge per-thread outputs, bump epochs, carve the next
//! window, emit probe records) in the *tail* of the commit crossing, while
//! workers spin on the sense word. A round therefore pays exactly **two**
//! crossings: the fused commit/prepare barrier and the inspect barrier.
//! See DESIGN.md "Hot paths" for the per-field ownership argument.
//!
//! # O(threads) round turnaround
//!
//! The serial work the leader does between rounds is independent of both the
//! window size and neighborhood sizes:
//!
//! - **Marks** are epoch-tagged ([`MarkTable::bump_epoch`]): one increment
//!   retires every mark of the round, replacing the per-task release sweep
//!   (one CAS per neighborhood location). The tally of CASes this avoids is
//!   reported as `releases_avoided`; deterministic rounds perform **zero**
//!   per-location release CASes.
//! - **Abort flags** are epoch-stamped ([`AbortFlags::advance`]): one
//!   increment clears all flags, and the array is grown in place at pass
//!   boundaries instead of reallocated.
//! - **Window refill** is distributed: the leader only publishes the range
//!   `[fill_base, fill_base + window)` of the pending buffer; each worker
//!   moves the task into the slot it claims during inspect. Failed tasks are
//!   written back *in slot order* immediately before the untried remainder,
//!   so round membership — and therefore the schedule — is exactly what the
//!   serial pop-and-refill produced.

use crate::ctx::{Abort, Access, Ctx, Mode};
use crate::error::{contain_panic, panic_message, ExecError, QUARANTINE_CAP};
use crate::executor::{DetOptions, Executor, ProbeHub, RunReport};
use crate::flags::AbortFlags;
use crate::marks::{LockId, MarkTable};
use crate::ops::Operator;
use crate::task::{assign_ids, spread_for_locality, PendingItem, WorkItem};
use crate::window::AdaptiveWindow;
use galois_runtime::padded::PerThread;
use galois_runtime::pool::{chunk_range, run_on_threads_fault};
use galois_runtime::probe::{attribute_conflicts, RoundRecord};
use galois_runtime::simtime::{ExecTrace, PhaseTrace, RoundTrace};
use galois_runtime::stats::{ExecStats, ThreadStats};
use galois_runtime::SenseBarrier;
use std::any::Any;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-task round state. Slots are claimed by at most one thread per phase
/// and recycled across rounds (their vectors keep their capacity), so
/// scheduling does no per-round allocator traffic.
struct Slot<T> {
    item: Option<WorkItem<T>>,
    neighborhood: Vec<LockId>,
    stash: Option<Box<dyn Any + Send>>,
    pushes: Vec<T>,
    /// Created tasks with their deterministic `(parent, rank)` keys,
    /// converted by the committing worker.
    pending_out: Vec<PendingItem<T>>,
    committed: bool,
    /// Captured panic message when the operator faulted on this slot
    /// (inspect or commit phase); the task is quarantined, never retried.
    fault: Option<String>,
}

impl<T> Slot<T> {
    /// A fresh slot with pre-reserved scratch capacities. Mid-run window
    /// growth seeds new slots from the pool's warmest slot, so the
    /// first-touch allocations land in the high-water carve round instead
    /// of trickling through the rounds that first commit into each slot.
    fn seeded(neighborhood: usize, pushes: usize, pending_out: usize) -> Self {
        Slot {
            item: None,
            neighborhood: Vec::with_capacity(neighborhood),
            stash: None,
            pushes: Vec::with_capacity(pushes),
            pending_out: Vec::with_capacity(pending_out),
            committed: false,
            fault: None,
        }
    }

    fn item(&self) -> &WorkItem<T> {
        self.item
            .as_ref()
            .expect("slot carries a task during rounds")
    }
}

/// Per-thread round outputs, written by exactly one worker per round and
/// read by the leader between barriers.
struct ThreadOut<T> {
    /// Children of this thread's committed slots, `(parent, rank)` keyed,
    /// in slot order.
    todo: Vec<PendingItem<T>>,
    /// Failed tasks from this thread's slot range, in slot order.
    failed: Vec<WorkItem<T>>,
    /// Commits in this thread's range.
    committed: u64,
    /// Inspect-phase timing aggregate (when tracing or probing).
    inspect: PhaseTrace,
    /// Commit-phase timing aggregate (when tracing or probing).
    commit: PhaseTrace,
    /// Conflicting abstract locations seen during this thread's inspect
    /// claims (when a probe wants attribution); drained by the leader.
    conflicts: Vec<u32>,
    /// Quarantined tasks from this thread's slot range, in slot order:
    /// the payload (held until the leader reports the fault) and the
    /// captured panic message.
    quarantined: Vec<(WorkItem<T>, String)>,
}

impl<T> ThreadOut<T> {
    fn new() -> Self {
        ThreadOut {
            todo: Vec::new(),
            failed: Vec::new(),
            committed: 0,
            inspect: PhaseTrace::default(),
            commit: PhaseTrace::default(),
            conflicts: Vec::new(),
            quarantined: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.todo.clear();
        self.failed.clear();
        self.committed = 0;
        self.inspect = PhaseTrace::default();
        self.commit = PhaseTrace::default();
        self.conflicts.clear();
        self.quarantined.clear();
    }
}

/// Round state shared between the preparing leader and the phase workers.
///
/// The leader mutates `cur`, `flags` and drains `outs` strictly between the
/// commit barrier and the prepare barrier; workers access `cur` slots
/// disjointly (dynamic claim chunks during inspect, static contiguous ranges
/// during commit) and only their own `outs[tid]`. The barriers'
/// acquire/release chains order all of it.
struct RoundState<T> {
    /// High-water slot pool: grows monotonically to the largest window ever
    /// carved and never shrinks, so slot vectors (`neighborhood`, `pushes`,
    /// `pending_out`) retain their capacities for the whole run and the
    /// steady state does zero allocator traffic. Only the first
    /// [`live`](Self::live) slots belong to the current round.
    cur: UnsafeCell<Vec<Slot<T>>>,
    /// Number of active slots this round (the carved window size). Written
    /// by the leader inside the fused barrier's serial section, read by
    /// workers after the crossing.
    live: AtomicUsize,
    /// The current pass's ordered task buffer. Consumed left to right;
    /// workers `take()` the entries of the published window range during
    /// inspect, and the leader writes failed tasks back just before the
    /// unconsumed remainder.
    pending: UnsafeCell<Vec<Option<WorkItem<T>>>>,
    /// First pending index of the current window: slot `i` holds (after the
    /// claiming worker fills it) `pending[fill_base + i]`.
    fill_base: AtomicUsize,
    flags: UnsafeCell<Option<AbortFlags>>,
    /// Per-thread round outputs, cache-line padded so one worker's buffer
    /// bookkeeping never false-shares with its neighbor's.
    outs: PerThread<UnsafeCell<ThreadOut<T>>>,
    claim_inspect: AtomicUsize,
    done: AtomicBool,
    /// Probe gates, fixed for the whole run (plain bools: workers only read
    /// them, so the disabled probe path adds no atomics).
    probing: bool,
    collect_conflicts: bool,
    time_phases: bool,
    conflict_top_k: usize,
}

// SAFETY: see the struct docs; all concurrent access is phase-separated by
// barriers, and within a phase slot indexes / out-buffers are exclusive.
unsafe impl<T: Send> Sync for RoundState<T> {}

/// What the leader hands back when the run ends: total rounds, collected
/// round traces, and the fault (if any) that stopped the run.
type LeaderOut = (u64, Vec<RoundTrace>, Option<ExecError>);

/// Leader-only bookkeeping across rounds and passes.
struct LeaderState<T> {
    /// Next unconsumed index into the shared pending buffer.
    head: usize,
    todo: Vec<PendingItem<T>>,
    window: AdaptiveWindow,
    rounds: u64,
    round_traces: Vec<RoundTrace>,
    started: bool,
    /// Adaptive window size at the last carve, before clamping to the
    /// remaining pending tasks — what the probe reports as `window`.
    carved_window: u64,
    /// Record of the just-closed round, built in `prepare_round` and emitted
    /// by the caller once the leader-serial time is known.
    pending_record: Option<RoundRecord>,
    /// Scratch buffer for per-round conflict attribution.
    conflict_scratch: Vec<u32>,
    /// Consecutive rounds that attempted tasks but made no progress
    /// (no commits, no quarantines) — the stall watchdog's counter.
    stalled_rounds: u64,
    /// Terminal fault: set once, then `done` is raised and the run drains.
    fault: Option<ExecError>,
}

/// Pre-assigned id source: the id function and the id space bound (§3.3).
pub(crate) type Preassigned<'a, T> = Option<(&'a (dyn Fn(&T) -> u64 + Sync), usize)>;

pub(crate) fn run<T, O>(
    cfg: &Executor,
    opts: &DetOptions,
    marks: &MarkTable,
    tasks: Vec<T>,
    op: &O,
    preassigned: Preassigned<'_, T>,
    hub: &mut ProbeHub<'_>,
) -> (RunReport, Option<ExecError>)
where
    T: Send,
    O: Operator<T>,
{
    let threads = cfg.threads;
    let probing = hub.active();
    let collect_conflicts = probing && hub.wants_conflicts();
    let time_phases = cfg.record_trace || (probing && hub.wants_timing());
    let conflict_top_k = hub.conflict_top_k();
    let start = Instant::now();

    // Initial pass: ids in iteration order (§3.2), or pre-assigned (§3.3).
    let mut dedup_dropped = 0u64;
    let initial: Vec<WorkItem<T>> = match &preassigned {
        None => tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| WorkItem {
                task: t,
                id: i as u64,
            })
            .collect(),
        Some((id_of, id_space)) => {
            let mut v: Vec<WorkItem<T>> = tasks
                .into_iter()
                .map(|t| {
                    let id = id_of(&t);
                    assert!(
                        (id as usize) < *id_space,
                        "pre-assigned id {id} outside id space {id_space}"
                    );
                    WorkItem { task: t, id }
                })
                .collect();
            galois_runtime::sort::parallel_sort_by_key(&mut v, threads, |w| w.id);
            // Equal ids would make the schedule ambiguous, so only the first
            // task of each id survives (the documented `run_with_ids`
            // contract). This drops the later duplicates *silently* as far
            // as execution goes — the count is surfaced in
            // `ExecStats::dedup_dropped` so callers can detect unintended
            // id collisions instead of losing work without a trace.
            let before = v.len();
            v.dedup_by(|a, b| a.id == b.id);
            dedup_dropped = (before - v.len()) as u64;
            v
        }
    };
    let flag_space_of = |pass_size: usize| match &preassigned {
        None => pass_size,
        // Created tasks are renumbered densely (see `run_with_ids` docs), so
        // a pass of created tasks can exceed the initial id space; size the
        // flags for whichever is larger.
        Some((_, id_space)) => (*id_space).max(pass_size),
    };

    let state: RoundState<T> = RoundState {
        cur: UnsafeCell::new(Vec::new()),
        live: AtomicUsize::new(0),
        pending: UnsafeCell::new(Vec::new()),
        fill_base: AtomicUsize::new(0),
        flags: UnsafeCell::new(None),
        outs: PerThread::new(threads, |_| UnsafeCell::new(ThreadOut::new())),
        claim_inspect: AtomicUsize::new(0),
        done: AtomicBool::new(false),
        probing,
        collect_conflicts,
        time_phases,
        conflict_top_k,
    };
    let barrier = SenseBarrier::with_chaos(threads, cfg.chaos.clone());
    let initial_cell: Mutex<Option<Vec<WorkItem<T>>>> = Mutex::new(Some(initial));
    let collected: Mutex<Vec<(ThreadStats, Vec<Access>)>> = Mutex::new(Vec::new());
    let leader_out: Mutex<Option<LeaderOut>> = Mutex::new(None);
    // Like `initial_cell`: the leader takes the probe hub at thread start
    // and is the only thread to ever touch it (between barriers), so probe
    // callbacks see rounds strictly in order.
    let hub_cell: Mutex<Option<&mut ProbeHub<'_>>> = Mutex::new(probing.then_some(hub));

    // Workers run under a fault hook: an *escaping* panic (operator panics
    // are caught and quarantined below — this only fires on scheduler
    // invariant violations) poisons the barrier so peers drain instead of
    // spinning forever, then propagates at join.
    run_on_threads_fault(
        threads,
        cfg.chaos.as_deref(),
        Some(&|| barrier.poison()),
        |tid| {
            let mut stats = ThreadStats::default();
            let mut accesses: Vec<Access> = Vec::new();
            let mut probe: Option<&mut ProbeHub<'_>> = (tid == 0)
                .then(|| hub_cell.lock().unwrap().take())
                .flatten();
            let mut leader: Option<LeaderState<T>> = (tid == 0).then(|| LeaderState {
                head: 0,
                todo: Vec::new(),
                window: AdaptiveWindow::for_pass(opts.window, 0),
                rounds: 0,
                round_traces: Vec::new(),
                started: false,
                carved_window: 0,
                pending_record: None,
                conflict_scratch: Vec::new(),
                stalled_rounds: 0,
                fault: None,
            });
            if leader.is_some() {
                let initial = initial_cell.lock().unwrap().take().expect("single leader");
                // SAFETY: workers cannot touch `pending` before the first
                // barrier; the leader owns it here.
                unsafe {
                    *state.pending.get() = spread_for_locality(initial, opts.locality_spread)
                        .into_iter()
                        .map(Some)
                        .collect();
                }
            }

            loop {
                // Fused commit/prepare barrier (2-barrier protocol): workers
                // arrive here straight from the commit loop; the leader runs
                // the whole inter-round serial section — merge, carve, probe
                // callbacks — inside the tail of this single crossing instead
                // of paying a separate release barrier first. The fused
                // crossing's acquire/release edges give the serial section
                // exclusive access to `cur`/`pending`/`flags`/`outs`.
                let crossed = if let Some(leader) = leader.as_mut() {
                    let probe = &mut probe;
                    barrier
                        .wait_serial_checked(|| {
                            let t0 = state.time_phases.then(Instant::now);
                            let sort_ns = prepare_round(
                                leader,
                                &state,
                                marks,
                                opts,
                                cfg,
                                threads,
                                flag_space_of,
                            );
                            let total_ns = t0.map(|t| t.elapsed().as_nanos() as f64);
                            if let (Some(total), Some(last)) = (
                                total_ns.filter(|_| cfg.record_trace),
                                leader.round_traces.last_mut(),
                            ) {
                                // The merge/carve work belongs to the round it
                                // closed; the pass-boundary sort is
                                // parallelizable scheduler work.
                                last.serial_ns += (total - sort_ns).max(0.0);
                                last.sched_par_ns += sort_ns;
                            }
                            if let Some(mut rec) = leader.pending_record.take() {
                                if let Some(total) = total_ns {
                                    rec.serial_ns = (total - sort_ns).max(0.0);
                                }
                                if let Some(p) = probe.as_mut() {
                                    p.on_round(rec);
                                }
                            }
                        })
                        .is_ok()
                } else {
                    barrier.wait_checked().is_ok()
                };
                if !crossed || state.done.load(Ordering::Acquire) {
                    break;
                }
                // SAFETY: the leader finished mutating `cur`/`pending`/`flags`
                // before the barrier; all are read-only (at the Vec level) until
                // the next prepare. Slot, pending-entry and out-buffer access is
                // phase-exclusive.
                let (slots, pend, flags) = unsafe {
                    let cur: &Vec<Slot<T>> = &*state.cur.get();
                    let pend = (*state.pending.get()).as_ptr() as *mut Option<WorkItem<T>>;
                    let flags: &AbortFlags = (*state.flags.get()).as_ref().expect("flags set");
                    (cur.as_ptr() as *mut Slot<T>, pend, flags)
                };
                // Only the first `live` slots of the high-water pool are this
                // round's window; the rest are idle capacity.
                let n = state.live.load(Ordering::Relaxed);
                let fill_base = state.fill_base.load(Ordering::Relaxed);
                // SAFETY: outs[tid] is exclusively this worker's between barriers.
                let out = unsafe { &mut *state.outs.get(tid).get() };
                out.reset();

                // Inspect phase: dynamic chunked claims (load balance); timing
                // amortized per chunk so tiny tasks are not inflated by timers.
                const CLAIM_CHUNK: usize = 8;
                loop {
                    let i0 = state
                        .claim_inspect
                        .fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                    if i0 >= n {
                        break;
                    }
                    let hi = (i0 + CLAIM_CHUNK).min(n);
                    let t0 = state.time_phases.then(Instant::now);
                    for i in i0..hi {
                        // SAFETY: index range claimed exclusively above; pending
                        // entry `fill_base + i` belongs to slot `i` alone, so the
                        // claim covers it too. Filling the window here — on the
                        // claiming worker — keeps the leader's serial turnaround
                        // O(threads) instead of O(window).
                        let slot = unsafe { &mut *slots.add(i) };
                        let item = unsafe { (*pend.add(fill_base + i)).take() };
                        slot.item = Some(item.expect("carved pending entry holds a task"));
                        slot.committed = false;
                        slot.stash = None;
                        slot.fault = None;
                        slot.pushes.clear();
                        slot.pending_out.clear();
                        inspect_slot(
                            slot,
                            marks,
                            flags,
                            opts,
                            cfg,
                            tid,
                            &mut stats,
                            &mut accesses,
                            state.collect_conflicts.then_some(&mut out.conflicts),
                            op,
                        );
                    }
                    if let Some(t0) = t0 {
                        out.inspect
                            .add_block(t0.elapsed().as_nanos() as f64, (hi - i0) as u64);
                    }
                }
                if barrier.wait_checked().is_err() {
                    break;
                }

                // Select-and-execute phase: static contiguous ranges, so each
                // thread's outputs concatenate to slot order.
                let range = chunk_range(n, threads, tid);
                let mut block_start = range.start;
                while block_start < range.end {
                    let block_end = (block_start + 64).min(range.end);
                    let t0 = state.time_phases.then(Instant::now);
                    let mut block_committed = 0u64;
                    for i in block_start..block_end {
                        // SAFETY: static ranges are disjoint across threads.
                        let slot = unsafe { &mut *slots.add(i) };
                        commit_slot(slot, marks, flags, cfg, tid, &mut stats, &mut accesses, op);
                        if slot.committed {
                            block_committed += 1;
                            out.todo.append(&mut slot.pending_out);
                            slot.item = None;
                        } else if let Some(msg) = slot.fault.take() {
                            // Quarantined: keep the payload and message for the
                            // leader's fault report; never re-enqueued.
                            out.quarantined
                                .push((slot.item.take().expect("slot had a task"), msg));
                        } else {
                            out.failed.push(slot.item.take().expect("slot had a task"));
                        }
                    }
                    out.committed += block_committed;
                    if let Some(t0) = t0 {
                        // Count only commits; abort-check time still lands in
                        // the phase total (it is real commit-phase work).
                        out.commit
                            .add_block(t0.elapsed().as_nanos() as f64, block_committed);
                    }
                    block_start = block_end;
                }
                // No commit-end barrier: the loop-top fused crossing doubles
                // as the commit barrier, so a round costs exactly two
                // crossings (fused commit/prepare + inspect).
            }

            if let Some(mut leader) = leader {
                *leader_out.lock().unwrap() =
                    Some((leader.rounds, leader.round_traces, leader.fault.take()));
            }
            collected.lock().unwrap().push((stats, accesses));
        },
    );

    let elapsed = start.elapsed();
    let per_thread = collected.into_inner().unwrap();
    let mut agg = ExecStats::from_threads(per_thread.iter().map(|(s, _)| s));
    let (rounds, round_traces, fault) = leader_out.into_inner().unwrap().expect("leader ran");
    agg.rounds = rounds;
    agg.elapsed = elapsed;
    agg.threads = threads;
    agg.dedup_dropped = dedup_dropped;

    debug_assert!(
        marks.all_unowned(),
        "deterministic run must release all marks"
    );
    debug_assert_eq!(
        agg.mark_releases, 0,
        "deterministic rounds retire marks by epoch, never by per-location CAS"
    );
    let report = RunReport {
        stats: agg,
        trace: cfg.record_trace.then_some(ExecTrace::Rounds(round_traces)),
        accesses: cfg
            .record_access
            .then(|| per_thread.into_iter().map(|(_, a)| a).collect()),
        round_log: None,
        replay: false,
    };
    (report, fault)
}

/// Leader work between rounds: merge per-thread outputs, advance passes,
/// carve the next window. Runs strictly between the commit barrier and the
/// prepare barrier. Returns the (parallelizable) pass-boundary sort time.
///
/// Everything here is O(threads) per round (plus buffer moves for failed /
/// created tasks): marks and flags retire by epoch bump, and the window is
/// published as an index range that the workers fill themselves.
fn prepare_round<T: Send>(
    leader: &mut LeaderState<T>,
    state: &RoundState<T>,
    marks: &MarkTable,
    opts: &DetOptions,
    cfg: &Executor,
    threads: usize,
    flag_space_of: impl Fn(usize) -> usize,
) -> f64 {
    // SAFETY: leader-exclusive access window (see RoundState docs).
    let cur = unsafe { &mut *state.cur.get() };
    let pending = unsafe { &mut *state.pending.get() };
    let flags_cell = unsafe { &mut *state.flags.get() };

    if !leader.started {
        leader.started = true;
        let pass_size = pending.len();
        *flags_cell = Some(AbortFlags::new(flag_space_of(pass_size)));
        leader.window = AdaptiveWindow::for_pass(opts.window, pass_size);
    } else {
        // Retire the closed round's marks and abort flags: two counter
        // increments replace the old per-task release sweep and per-task
        // flag clears. Workers are parked at the barrier, so the quiescence
        // contract of both calls holds.
        marks.bump_epoch();
        flags_cell
            .as_ref()
            .expect("flags set after first round")
            .advance();

        // Merge the finished round's per-thread outputs: O(threads) plus
        // buffer moves; the per-task work happened on the workers.
        let attempted = state.live.load(Ordering::Relaxed);
        let mut committed = 0usize;
        let mut nfailed = 0usize;
        let mut quarantined = 0usize;
        let mut inspect_ns = 0.0f64;
        let mut commit_ns = 0.0f64;
        let mut trace = cfg.record_trace.then(RoundTrace::default);
        for tid in 0..threads {
            // SAFETY: workers are parked at the barrier; outs are quiescent.
            let out = unsafe { &mut *state.outs.get(tid).get() };
            committed += out.committed as usize;
            nfailed += out.failed.len();
            quarantined += out.quarantined.len();
            inspect_ns += out.inspect.total_ns;
            commit_ns += out.commit.total_ns;
            if state.collect_conflicts {
                leader.conflict_scratch.append(&mut out.conflicts);
            }
            if let Some(t) = trace.as_mut() {
                t.inspect.merge(&out.inspect);
                t.commit.merge(&out.commit);
            }
        }
        if state.probing {
            // Per-round per-location conflict counts are schedule-
            // deterministic (k round-mates on a location ⇒ exactly k-1 mark
            // losses), so this attribution is thread-count independent.
            let conflicts = attribute_conflicts(&mut leader.conflict_scratch, state.conflict_top_k);
            leader.conflict_scratch.clear();
            leader.pending_record = Some(RoundRecord {
                round: leader.rounds,
                window: leader.carved_window,
                attempted: attempted as u64,
                committed: committed as u64,
                failed: nfailed as u64,
                conflicts,
                inspect_ns,
                commit_ns,
                serial_ns: 0.0, // patched by the caller once prepare returns
            });
        }
        // Failed tasks precede the untried remainder (Figure 2 line 19) in
        // slot order: write them back into the tail of the just-consumed
        // window range (those entries were taken by the workers) and move
        // the head cursor over them. Walking threads forward reproduces slot
        // order because commit ranges are contiguous ascending.
        let mut w_idx = leader.head - nfailed;
        for tid in 0..threads {
            // SAFETY: as above.
            let out = unsafe { &mut *state.outs.get(tid).get() };
            for item in out.failed.drain(..) {
                debug_assert!(pending[w_idx].is_none(), "window entries were consumed");
                pending[w_idx] = Some(item);
                w_idx += 1;
            }
            leader.todo.append(&mut out.todo);
        }
        debug_assert_eq!(w_idx, leader.head);
        leader.head -= nfailed;
        if let Some(mut t) = trace {
            t.barriers = 2;
            leader.round_traces.push(t);
        }
        let closing_round = leader.rounds;
        leader.rounds += 1;
        leader.window.update(attempted, committed);

        if quarantined > 0 {
            // The run stops at the end of the first faulting round and
            // reports its lowest-id quarantined task. Round membership and
            // the independent set are pure functions of committed history,
            // so this report — id, message and round — is byte-identical
            // at every thread count.
            let mut first: Option<(u64, String)> = None;
            for tid in 0..threads {
                // SAFETY: as above.
                let out = unsafe { &mut *state.outs.get(tid).get() };
                for (item, msg) in out.quarantined.drain(..) {
                    if first.as_ref().is_none_or(|(id, _)| item.id < *id) {
                        first = Some((item.id, msg));
                    }
                }
            }
            let (task_id, message) = first.expect("quarantined > 0");
            leader.fault = Some(if quarantined as u64 > QUARANTINE_CAP {
                ExecError::QuarantineOverflow {
                    quarantined: quarantined as u64,
                    limit: QUARANTINE_CAP,
                }
            } else {
                ExecError::OperatorPanic {
                    task_id,
                    message,
                    round: closing_round,
                }
            });
            state.done.store(true, Ordering::Release);
            return 0.0;
        }

        // Stall watchdog: a round that attempted tasks but neither committed
        // nor quarantined any of them made no progress. The paper's schedule
        // guarantees the maximum id of a round always commits, so a single
        // such round is already a scheduler bug — but user operators can
        // also livelock (e.g. an operator that always returns a conflict
        // abort). Counting *rounds*, never wall-clock, keeps the verdict
        // thread-count independent.
        if attempted > 0 && committed == 0 {
            leader.stalled_rounds += 1;
            if leader.stalled_rounds >= cfg.max_stalled_rounds {
                leader.fault = Some(ExecError::Stalled {
                    rounds: leader.stalled_rounds,
                });
                state.done.store(true, Ordering::Release);
                return 0.0;
            }
        } else {
            leader.stalled_rounds = 0;
        }
    }

    // Pass boundary: the sorted sequence is drained; order `todo` (Figure 2
    // lines 3-6).
    let mut sort_ns = 0.0;
    if leader.head == pending.len() && !leader.todo.is_empty() {
        let t_sort = cfg.record_trace.then(Instant::now);
        // Drain rather than take: `leader.todo` keeps its high-water
        // capacity, so the per-round appends refilling it during the next
        // pass stop allocating once the global high water is reached.
        let todo: Vec<PendingItem<T>> = leader.todo.drain(..).collect();
        let items = assign_ids(todo, threads);
        let pass_size = items.len();
        *pending = spread_for_locality(items, opts.locality_spread)
            .into_iter()
            .map(Some)
            .collect();
        leader.head = 0;
        if let Some(t) = t_sort {
            sort_ns = t.elapsed().as_nanos() as f64;
        }
        flags_cell
            .as_mut()
            .expect("flags created on the first round")
            .grow(flag_space_of(pass_size));
        leader.window = AdaptiveWindow::for_pass(opts.window, pass_size);
    }

    if leader.head == pending.len() {
        state.done.store(true, Ordering::Release);
        return sort_ns;
    }

    // Carve the window (Figure 2 `getWindowOfTasks`). The slot pool `cur`
    // is high-water sized: it grows (allocates) only when the window reaches
    // a size it has never reached before, and never shrinks — shrinking
    // would drop slot vector capacities and re-pay the allocation when the
    // window grows back. Publishing `live` is all a steady-state carve does.
    leader.carved_window = leader.window.size() as u64;
    let w = leader.window.size().min(pending.len() - leader.head);
    if cur.len() < w {
        let (nb, ps, po) = cur
            .first()
            .map(|s| {
                (
                    s.neighborhood.capacity(),
                    s.pushes.capacity(),
                    s.pending_out.capacity(),
                )
            })
            .unwrap_or((0, 0, 0));
        while cur.len() < w {
            cur.push(Slot::seeded(nb, ps, po));
        }
    }
    state.live.store(w, Ordering::Relaxed);
    state.fill_base.store(leader.head, Ordering::Relaxed);
    leader.head += w;
    state.claim_inspect.store(0, Ordering::Relaxed);
    sort_ns
}

#[allow(clippy::too_many_arguments)]
fn inspect_slot<T: Send, O: Operator<T>>(
    slot: &mut Slot<T>,
    marks: &MarkTable,
    flags: &AbortFlags,
    opts: &DetOptions,
    cfg: &Executor,
    tid: usize,
    stats: &mut ThreadStats,
    accesses: &mut Vec<Access>,
    conflicts: Option<&mut Vec<u32>>,
    op: &O,
) {
    slot.neighborhood.clear();
    let result = {
        // Destructure for field-precise borrows: `item` stays shared while
        // the context mutably borrows the scratch fields.
        let Slot {
            item,
            neighborhood,
            stash,
            pushes,
            ..
        } = slot;
        let item = item.as_ref().expect("slot carries a task");
        let mut ctx = Ctx {
            mode: Mode::Inspect,
            mark_value: item.id + 1,
            tid,
            marks,
            neighborhood,
            pushes,
            flags: Some(flags),
            stash,
            allow_stash: opts.continuation,
            stats,
            recorder: cfg.record_access.then_some(accesses),
            conflicts,
            past_failsafe: false,
            // Never inject during inspect: marking must be a pure function
            // of the round's membership or the schedule itself would change.
            inject_abort: false,
            inject_panic: None,
        };
        // A panic here is pre-failsafe by the cautious contract, so it is
        // contained exactly like an abort: the marks already placed retire
        // with the round's epoch bump, and the task is quarantined. The
        // fault set of a round is therefore a pure function of round
        // membership — thread-count independent like the schedule.
        contain_panic(|| op.run(&item.task, &mut ctx))
    };
    stats.inspected += 1;
    match result {
        Ok(r) => {
            debug_assert_ne!(
                r,
                Err(Abort::Conflict),
                "inspect-phase acquire cannot conflict (writeMarksMax never fails)"
            );
        }
        Err(payload) => {
            slot.fault = Some(panic_message(payload));
            slot.stash = None;
        }
    }
    // Ok means the operator completed without a failsafe call (a read-only
    // task); its pushes were discarded and the commit phase re-issues them.
    slot.pushes.clear();
}

#[allow(clippy::too_many_arguments)]
fn commit_slot<T: Send, O: Operator<T>>(
    slot: &mut Slot<T>,
    marks: &MarkTable,
    flags: &AbortFlags,
    cfg: &Executor,
    tid: usize,
    stats: &mut ThreadStats,
    accesses: &mut Vec<Access>,
    op: &O,
) {
    let task_id = slot.item().id;
    let mark_value = task_id + 1;
    if slot.fault.is_some() {
        // The inspect run panicked: quarantine. The marks it placed retire
        // with the round's epoch bump — no per-location release needed —
        // and the task never re-enters the pending buffer.
        stats.quarantined += 1;
        slot.committed = false;
        slot.stash = None;
        stats.releases_avoided += slot.neighborhood.len() as u64;
        return;
    }
    if flags.get(task_id as usize) {
        // A higher-priority neighbor in the interference graph owns part of
        // this task's neighborhood; retry in a later round.
        stats.aborted += 1;
        slot.committed = false;
        slot.stash = None;
    } else {
        // Chaos: force at most one spurious abort at this task's failsafe
        // point, then retry *in place* until the commit goes through. The
        // retry is schedule-invisible: the cautious contract guarantees no
        // shared writes happened before the failsafe, the round's marks are
        // still owned by this task, and the round log only sees the final
        // committed outcome — so no chaos seed can perturb the schedule.
        //
        // Tasks carrying a checkpointed continuation are exempt: `take()`
        // consumes the stash *before* the failsafe crossing, so a forced
        // abort there would retry by re-growing the neighborhood against a
        // mesh other commits already changed — not a free rollback.
        let mut inject = slot.stash.is_none()
            && cfg
                .chaos
                .as_deref()
                .is_some_and(|c| c.inject_det_abort(task_id));
        // Chaos panic injection fires at the failsafe crossing of the commit
        // run. Purity in (seed, task_id) plus the schedule-invariance of
        // round membership makes the resulting fault report byte-identical
        // at every thread count. Stash-carrying tasks are exempt for the
        // same reason as injected aborts: their failsafe already passed.
        let inject_panic = slot.stash.is_none()
            && cfg
                .chaos
                .as_deref()
                .is_some_and(|c| c.inject_det_panic(task_id));
        loop {
            let result = {
                let Slot {
                    item,
                    neighborhood,
                    stash,
                    pushes,
                    ..
                } = slot;
                let item = item.as_ref().expect("slot carries a task");
                let mut ctx = Ctx {
                    mode: Mode::Commit,
                    mark_value,
                    tid,
                    marks,
                    neighborhood,
                    pushes,
                    flags: None,
                    stash,
                    allow_stash: false,
                    stats,
                    recorder: cfg.record_access.then_some(accesses),
                    conflicts: None,
                    past_failsafe: false,
                    inject_abort: inject,
                    inject_panic: inject_panic.then_some(task_id),
                };
                contain_panic(|| {
                    let r = op.run(&item.task, &mut ctx);
                    if r.is_ok() {
                        ctx.record_neighborhood_writes();
                    }
                    r
                })
            };
            match result {
                Ok(Ok(())) => break,
                Ok(Err(Abort::Injected)) => {
                    inject = false;
                    slot.pushes.clear();
                }
                Ok(Err(other)) => {
                    // Scheduler invariant violation, not an operator fault:
                    // let it escape so the pool's poison hook fires.
                    panic!("a selected task commits unconditionally: {other}")
                }
                Err(payload) => {
                    // Pre-failsafe panic during the commit run (cautious
                    // contract): no shared writes happened, the round's
                    // marks retire by epoch — quarantine instead of commit.
                    slot.fault = Some(panic_message(payload));
                    slot.pushes.clear();
                    slot.stash = None;
                    slot.committed = false;
                    stats.quarantined += 1;
                    stats.releases_avoided += slot.neighborhood.len() as u64;
                    return;
                }
            }
        }
        // Key the created tasks deterministically here, on the worker, so
        // the leader only moves whole buffers (§3.2 id assignment).
        for (k, p) in slot.pushes.drain(..).enumerate() {
            slot.pending_out.push(PendingItem {
                task: p,
                parent: task_id,
                rank: k as u32,
            });
        }
        stats.committed += 1;
        slot.committed = true;
    }
    // No per-location release and no flag clear happen here: the leader
    // retires the whole round's marks and flags with two epoch bumps in
    // `prepare_round`. Tally the CASes the old sweep would have issued (every
    // task released its entire neighborhood, committed or not).
    stats.releases_avoided += slot.neighborhood.len() as u64;
}

#[cfg(test)]
mod tests {
    use crate::executor::{DetOptions, Executor, Schedule};
    use crate::marks::MarkTable;
    use crate::{Ctx, OpResult};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn det() -> Schedule {
        Schedule::deterministic()
    }

    /// Order-sensitive reduction: tasks append their payload to a bucket
    /// sequence; the final sequences expose the schedule.
    fn trace_op(log: &Mutex<Vec<u64>>) -> impl Fn(&u64, &mut Ctx<'_, u64>) -> OpResult + Sync + '_ {
        move |t: &u64, ctx: &mut Ctx<'_, u64>| {
            ctx.acquire(0u32)?; // single shared location: total order
            ctx.failsafe()?;
            log.lock().unwrap().push(*t);
            Ok(())
        }
    }
    use std::sync::Mutex;

    #[test]
    fn single_shared_location_executes_in_id_order_per_round() {
        // All tasks conflict; each round commits exactly the max id of its
        // window... which means overall order is deterministic and identical
        // across thread counts.
        let reference: Option<Vec<u64>> = None;
        let mut reference = reference;
        for threads in [1usize, 2, 4] {
            let log = Mutex::new(Vec::new());
            let marks = MarkTable::new(1);
            let op = trace_op(&log);
            let report = Executor::new()
                .threads(threads)
                .schedule(det())
                .iterate((0..40u64).collect())
                .run(&marks, &op);
            assert_eq!(report.stats.committed, 40);
            assert!(report.stats.rounds >= 40, "all-conflicting tasks serialize");
            drop(op);
            let got = log.into_inner().unwrap();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "threads={threads} changed the schedule"),
            }
        }
    }

    #[test]
    fn chaos_never_perturbs_the_deterministic_schedule() {
        // The invariance contract: a chaos seed may skew thread starts,
        // jitter barriers, shuffle worklist chunks and force spurious
        // commit-phase aborts, but the committed schedule — and therefore
        // the output, the round count and the commit count — must be
        // byte-identical to the chaos-free run.
        let run_with = |threads: usize, chaos: Option<u64>| {
            let log = Mutex::new(Vec::new());
            let marks = MarkTable::new(1);
            let op = trace_op(&log);
            let mut exec = Executor::new().threads(threads).schedule(det());
            if let Some(seed) = chaos {
                exec = exec.chaos(seed);
            }
            let report = exec.iterate((0..40u64).collect()).run(&marks, &op);
            drop(op);
            (log.into_inner().unwrap(), report.stats)
        };
        let (ref_log, ref_stats) = run_with(1, None);
        let mut saw_injection = false;
        for threads in [1usize, 2, 4] {
            for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
                let (log, stats) = run_with(threads, Some(seed));
                assert_eq!(log, ref_log, "threads={threads} seed={seed}");
                assert_eq!(
                    stats.rounds, ref_stats.rounds,
                    "threads={threads} seed={seed}"
                );
                assert_eq!(stats.committed, ref_stats.committed);
                assert_eq!(stats.aborted, ref_stats.aborted, "injected aborts leaked");
                saw_injection |= stats.injected_aborts > 0;
            }
        }
        assert!(saw_injection, "chaos never actually fired an abort");
    }

    #[test]
    fn disjoint_tasks_commit_in_one_round() {
        let marks = MarkTable::new(64);
        let hits = AtomicU64::new(0);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire(*t as u32)?;
            ctx.failsafe()?;
            hits.fetch_add(1, Ordering::Relaxed);
            Ok(())
        };
        let report = Executor::new()
            .threads(2)
            .schedule(det())
            .iterate((0..64u64).collect())
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 64);
        assert_eq!(report.stats.aborted, 0);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        // 64 disjoint tasks, initial window = 16 (pass/4), doubling: 16+32+16.
        assert!(report.stats.rounds <= 4, "rounds = {}", report.stats.rounds);
    }

    #[test]
    fn created_tasks_run_in_later_passes_deterministically() {
        // Tree expansion: task t < 8 pushes 2t+1, 2t+2 into a shared counter
        // cell; final count is the full tree size.
        let marks = MarkTable::new(16);
        let count = AtomicU64::new(0);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire((*t % 16) as u32)?;
            ctx.failsafe()?;
            count.fetch_add(1, Ordering::Relaxed);
            if *t < 8 {
                ctx.push(2 * *t + 1);
                ctx.push(2 * *t + 2);
            }
            Ok(())
        };
        let report = Executor::new()
            .threads(3)
            .schedule(det())
            .iterate(vec![0])
            .run(&marks, &op);
        // Nodes reachable from 0 with t<8 expanding: 0,1,2,...: nodes 0..=7
        // push children up to 16; total nodes = 0..=16 → but only those
        // reachable: 0;1,2;3,4,5,6;7..14 from 3..6; 15,16 from 7. Count:
        // 0,1,2,3,4,5,6 (expand) and 7..16 pushed w/ 7 expanding → 15,16.
        assert_eq!(count.load(Ordering::Relaxed), 17);
        assert_eq!(report.stats.committed, 17);
    }

    #[test]
    fn output_identical_across_thread_counts_with_conflicts() {
        // Chained neighborhood overlap: task i acquires {i, i+1}, appends to
        // a per-location log. Heavy conflicts; output must be thread-count
        // independent.
        let run_with = |threads: usize| -> Vec<Vec<u64>> {
            let logs: Vec<Mutex<Vec<u64>>> = (0..65).map(|_| Mutex::new(Vec::new())).collect();
            let marks = MarkTable::new(65);
            let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
                ctx.acquire(*t as u32)?;
                ctx.acquire(*t as u32 + 1)?;
                ctx.failsafe()?;
                logs[*t as usize].lock().unwrap().push(*t);
                logs[*t as usize + 1].lock().unwrap().push(*t);
                Ok(())
            };
            Executor::new()
                .threads(threads)
                .schedule(det())
                .iterate((0..64u64).collect())
                .run(&marks, &op);
            logs.into_iter().map(|l| l.into_inner().unwrap()).collect()
        };
        let a = run_with(1);
        let b = run_with(2);
        let c = run_with(5);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn continuation_checkpoint_skips_recompute() {
        use std::sync::atomic::AtomicU64;
        let marks = MarkTable::new(8);
        let expensive_calls = AtomicU64::new(0);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            let value = match ctx.take::<u64>() {
                Some(v) => v,
                None => {
                    ctx.acquire(*t as u32)?;
                    expensive_calls.fetch_add(1, Ordering::Relaxed);
                    ctx.checkpoint(*t * 10)?
                }
            };
            assert_eq!(value, *t * 10);
            Ok(())
        };
        let report = Executor::new()
            .threads(1)
            .schedule(det())
            .iterate((0..8u64).collect())
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 8);
        // With continuations each committed task computes once (inspect);
        // aborted attempts recompute on retry but these tasks are disjoint.
        assert_eq!(expensive_calls.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn disabling_continuation_recomputes_prefix() {
        let marks = MarkTable::new(8);
        let expensive_calls = AtomicU64::new(0);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            let _value = match ctx.take::<u64>() {
                Some(v) => v,
                None => {
                    ctx.acquire(*t as u32)?;
                    expensive_calls.fetch_add(1, Ordering::Relaxed);
                    ctx.checkpoint(*t * 10)?
                }
            };
            Ok(())
        };
        let report = Executor::new()
            .threads(1)
            .schedule(Schedule::Deterministic(DetOptions {
                continuation: false,
                ..DetOptions::default()
            }))
            .iterate((0..8u64).collect())
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 8);
        // Baseline: inspect + commit each compute → exactly twice per task.
        assert_eq!(expensive_calls.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn preassigned_ids_dedup_and_schedule() {
        // Tasks are node ids 0..32 with duplicates; payload == id.
        let marks = MarkTable::new(32);
        let count = AtomicU64::new(0);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire(*t as u32)?;
            ctx.failsafe()?;
            count.fetch_add(1, Ordering::Relaxed);
            Ok(())
        };
        let mut tasks: Vec<u64> = (0..32).collect();
        tasks.extend(0..16u64); // duplicates
        let report = Executor::new()
            .threads(2)
            .schedule(det())
            .iterate(tasks)
            .with_ids(|t| *t, 32)
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 32, "duplicates deduplicated");
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn locality_spread_changes_schedule_but_not_totals() {
        let run_spread = |spread: usize| {
            let marks = MarkTable::new(65);
            let count = AtomicU64::new(0);
            let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
                ctx.acquire(*t as u32)?;
                ctx.acquire(*t as u32 + 1)?;
                ctx.failsafe()?;
                count.fetch_add(1, Ordering::Relaxed);
                Ok(())
            };
            let report = Executor::new()
                .threads(2)
                .schedule(Schedule::Deterministic(DetOptions {
                    locality_spread: spread,
                    ..DetOptions::default()
                }))
                .iterate((0..64u64).collect())
                .run(&marks, &op);
            (report.stats.committed, report.stats.aborted)
        };
        let (c1, a1) = run_spread(1);
        let (c2, a2) = run_spread(16);
        assert_eq!(c1, 64);
        assert_eq!(c2, 64);
        // Adjacent tasks conflict; spreading them across rounds reduces aborts.
        assert!(a2 <= a1, "spread should not increase aborts ({a2} vs {a1})");
    }

    #[test]
    fn rounds_counted_and_trace_recorded() {
        let marks = MarkTable::new(4);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire((*t % 4) as u32)?;
            ctx.failsafe()?;
            Ok(())
        };
        let report = Executor::new()
            .threads(1)
            .schedule(det())
            .record_trace(true)
            .iterate((0..100u64).collect())
            .run(&marks, &op);
        assert!(report.stats.rounds > 0);
        match report.trace {
            Some(galois_runtime::simtime::ExecTrace::Rounds(rounds)) => {
                assert_eq!(rounds.len() as u64, report.stats.rounds);
                let committed: u64 = rounds.iter().map(|r| r.commit.count).sum();
                assert_eq!(committed, report.stats.committed);
            }
            other => panic!("expected rounds trace, got {other:?}"),
        }
    }

    #[test]
    fn operator_panic_quarantines_lowest_id_byte_identical_across_threads() {
        // Tasks 13 and 27 panic before their failsafe; everything else
        // commits. The fault report — task id, message, round — must be
        // byte-identical at every thread count (the tentpole invariant).
        let run_with = |threads: usize| {
            let marks = MarkTable::new(64);
            let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
                ctx.acquire((*t % 64) as u32)?;
                if *t == 13 || *t == 27 {
                    panic!("task {t} is cursed");
                }
                ctx.failsafe()?;
                Ok(())
            };
            Executor::new()
                .threads(threads)
                .schedule(det())
                .iterate((0..64u64).collect())
                .try_run(&marks, &op)
        };
        let reference = run_with(1).expect_err("faulting run must error");
        match &reference {
            crate::ExecError::OperatorPanic {
                task_id, message, ..
            } => {
                assert_eq!(*task_id, 13, "lowest faulted id of the window");
                assert_eq!(message, "task 13 is cursed");
            }
            other => panic!("expected OperatorPanic, got {other:?}"),
        }
        for threads in [2usize, 4, 8, 16] {
            let err = run_with(threads).expect_err("faulting run must error");
            assert_eq!(err, reference, "threads={threads}");
        }
    }

    #[test]
    fn quarantined_tasks_never_rerun_and_marks_release() {
        // The panicking task's partial marks must retire with the round so
        // later runs on the same table see a clean slate.
        let marks = MarkTable::new(8);
        let calls = AtomicU64::new(0);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire((*t % 8) as u32)?;
            if *t == 3 {
                calls.fetch_add(1, Ordering::Relaxed);
                panic!("boom");
            }
            ctx.failsafe()?;
            Ok(())
        };
        let err = Executor::new()
            .threads(2)
            .schedule(det())
            .iterate((0..8u64).collect())
            .try_run(&marks, &op)
            .expect_err("task 3 faults");
        assert!(matches!(
            err,
            crate::ExecError::OperatorPanic { task_id: 3, .. }
        ));
        // Inspect runs once; the quarantined slot is never committed or
        // retried, so the operator saw the task exactly once.
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(marks.all_unowned(), "quarantine must not leak marks");
    }

    #[test]
    fn quarantine_overflow_when_a_whole_round_faults() {
        // 20_000 always-panicking tasks: the initial window (pass/4 = 5000)
        // exceeds QUARANTINE_CAP, so the first round overflows.
        let marks = MarkTable::new(1);
        let op = |_t: &u64, _ctx: &mut Ctx<'_, u64>| -> OpResult { panic!("all bad") };
        let err = Executor::new()
            .threads(4)
            .schedule(det())
            .iterate((0..20_000u64).collect())
            .try_run(&marks, &op)
            .expect_err("systemic fault");
        match err {
            crate::ExecError::QuarantineOverflow { quarantined, limit } => {
                assert!(quarantined > limit);
                assert_eq!(limit, crate::QUARANTINE_CAP);
            }
            other => panic!("expected QuarantineOverflow, got {other:?}"),
        }
    }

    #[test]
    fn chaos_panic_injection_reports_identical_faults_across_threads() {
        // Seeded panic injection at the failsafe: the injected fault set is
        // pure in (seed, task_id), so the report is invariant across thread
        // counts for a fixed seed — and the panic message is canonical.
        for seed in [1u64, 2, 3] {
            let run_with = |threads: usize| {
                let marks = MarkTable::new(512);
                let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
                    ctx.acquire((*t % 512) as u32)?;
                    ctx.failsafe()?;
                    Ok(())
                };
                Executor::new()
                    .threads(threads)
                    .schedule(det())
                    .chaos_panics(seed)
                    .iterate((0..512u64).collect())
                    .try_run(&marks, &op)
            };
            let reference = run_with(1).err();
            for threads in [2usize, 4, 8] {
                assert_eq!(run_with(threads).err(), reference, "seed={seed}");
            }
            if let Some(crate::ExecError::OperatorPanic { message, .. }) = &reference {
                assert!(
                    message.starts_with(crate::INJECTED_PANIC_PREFIX),
                    "injected faults carry the canonical marker: {message}"
                );
            }
        }
    }

    #[test]
    fn run_wrapper_panics_with_the_fault_display() {
        let marks = MarkTable::new(1);
        let op = |_t: &u64, _ctx: &mut Ctx<'_, u64>| -> OpResult { panic!("kaboom") };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Executor::new()
                .threads(1)
                .schedule(det())
                .iterate(vec![0u64])
                .run(&marks, &op);
        }))
        .expect_err("run re-panics on fault");
        let msg = crate::error::panic_message(caught);
        assert!(msg.contains("operator panicked"), "got: {msg}");
        assert!(msg.contains("kaboom"), "got: {msg}");
    }

    #[test]
    fn empty_task_list_terminates() {
        let marks = MarkTable::new(1);
        let op = |_t: &u64, _ctx: &mut Ctx<'_, u64>| -> OpResult { Ok(()) };
        let report = Executor::new()
            .threads(2)
            .schedule(det())
            .iterate(vec![])
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 0);
        assert_eq!(report.stats.rounds, 0);
    }
}
