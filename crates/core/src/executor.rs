//! Executor configuration and run reports: the on-demand determinism switch.
//!
//! The paper's headline design point is that **the same program** runs under
//! a non-deterministic or a deterministic scheduler, selected at run time
//! ("the desired scheduler is specified through a command-line parameter",
//! §1). [`Executor`] is that switch: build one with a [`Schedule`], then
//! describe the loop with [`Executor::iterate`] — a [`LoopSpec`] — and run
//! any cautious operator over it.
//!
//! ```
//! use galois_core::{Executor, MarkTable, Schedule, Ctx, OpResult};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // Sum-into-buckets: each task adds its value to bucket (task % 4).
//! let buckets: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
//! let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
//!     ctx.acquire((*t % 4) as u32)?;
//!     ctx.failsafe()?;
//!     buckets[(*t % 4) as usize].fetch_add(*t, Ordering::Relaxed);
//!     Ok(())
//! };
//! let marks = MarkTable::new(4);
//! let report = Executor::new()
//!     .threads(2)
//!     .schedule(Schedule::deterministic())
//!     .iterate((0..100).collect())
//!     .run(&marks, &op);
//! assert_eq!(report.stats.committed, 100);
//! let total: u64 = buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
//! assert_eq!(total, (0..100).sum());
//! ```
//!
//! ## Observing the schedule
//!
//! Attach a [`Probe`] (e.g. a [`RoundLog`]) to a loop to record per-round
//! scheduler behavior — window sizes, commit ratios, abort attribution:
//!
//! ```
//! use galois_core::{Executor, MarkTable, RoundLog, Schedule, Ctx, OpResult};
//!
//! let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
//!     ctx.acquire((*t % 4) as u32)?;
//!     ctx.failsafe()?;
//!     Ok(())
//! };
//! let marks = MarkTable::new(4);
//! let mut log = RoundLog::new();
//! Executor::new()
//!     .schedule(Schedule::deterministic())
//!     .iterate((0..100).collect())
//!     .probe(&mut log)
//!     .run(&marks, &op);
//! assert!(!log.is_empty());
//! // Under deterministic scheduling this serialization is byte-identical
//! // for every thread count: a portability oracle.
//! let _oracle = log.canonical_jsonl();
//! ```

use crate::ctx::Access;
use crate::det;
use crate::error::ExecError;
use crate::manifest::ManifestRecorder;
use crate::marks::MarkTable;
use crate::ops::Operator;
use crate::serial;
use crate::spec;
use crate::window::WindowPolicy;
use galois_runtime::chaos::ChaosPolicy;
use galois_runtime::probe::{Probe, RoundLog, RoundRecord};
use galois_runtime::simtime::ExecTrace;
use galois_runtime::stats::ExecStats;
use std::sync::Arc;

/// Options of the deterministic (DIG) scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct DetOptions {
    /// Continuation optimization (§3.3, first): honor [`crate::Ctx::checkpoint`]
    /// so commits resume from the failsafe point instead of re-executing the
    /// operator prefix. Disabling this reproduces the baseline scheduler of
    /// §3.2 (measured in Figure 10).
    pub continuation: bool,
    /// Locality spreading (§3.3, second): deal the task sequence into this
    /// many buckets so tasks adjacent in iteration order land in different
    /// rounds. `0` or `1` disables.
    pub locality_spread: usize,
    /// Adaptive window constants (§3.2). Fixed by default; exposed for
    /// ablation studies only — note that changing them changes the schedule,
    /// which is exactly why the paper insists they not be user-tunable.
    pub window: WindowPolicy,
}

impl Default for DetOptions {
    fn default() -> Self {
        DetOptions {
            continuation: true,
            locality_spread: 1,
            window: WindowPolicy::default(),
        }
    }
}

/// Task-pool ordering policy for the speculative scheduler.
///
/// The pool of Figure 1a is unordered, so any policy is correct; the choice
/// is pure scheduling (the original Galois system exposes a library of
/// worklist policies). LIFO maximizes locality; FIFO gives the breadth-like
/// order that label-correcting algorithms (bfs) need to avoid redundant
/// work. Deterministic scheduling ignores this (its order is the
/// deterministic id order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorklistPolicy {
    /// Chunked LIFO (default).
    #[default]
    Lifo,
    /// Chunked roughly-FIFO.
    Fifo,
}

/// Which scheduler executes the loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Single-threaded reference execution (no marks, no conflicts).
    Serial,
    /// The non-deterministic speculative scheduler of Figure 1b.
    Speculative,
    /// The deterministic DIG scheduler of Figures 2–3.
    Deterministic(DetOptions),
}

impl Schedule {
    /// Deterministic scheduling with default options.
    pub fn deterministic() -> Self {
        Schedule::Deterministic(DetOptions::default())
    }
}

/// Default stall-watchdog threshold, in consecutive zero-progress rounds
/// (see [`Executor::max_stalled_rounds`]). Far above anything a live
/// workload produces — a cautious operator commits at least one task per
/// non-empty deterministic round — so the watchdog only fires on genuine
/// livelock.
pub const DEFAULT_MAX_STALLED_ROUNDS: u64 = 4096;

/// A configured parallel loop executor. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Executor {
    pub(crate) threads: usize,
    pub(crate) schedule: Schedule,
    pub(crate) worklist: WorklistPolicy,
    pub(crate) record_trace: bool,
    pub(crate) record_access: bool,
    pub(crate) record_rounds: bool,
    pub(crate) chaos: Option<Arc<ChaosPolicy>>,
    pub(crate) max_stalled_rounds: u64,
}

impl Default for Executor {
    fn default() -> Self {
        Executor {
            threads: 1,
            schedule: Schedule::Speculative,
            worklist: WorklistPolicy::Lifo,
            record_trace: false,
            record_access: false,
            record_rounds: false,
            chaos: None,
            max_stalled_rounds: DEFAULT_MAX_STALLED_ROUNDS,
        }
    }
}

impl Executor {
    /// A speculative single-thread executor; configure with the builder
    /// methods.
    pub fn new() -> Self {
        Executor::default()
    }

    /// Sets the number of worker threads.
    ///
    /// Under [`Schedule::Deterministic`] the output is identical for every
    /// value (the portability property); under [`Schedule::Speculative`] it
    /// is not. [`Schedule::Serial`] ignores this.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Selects the scheduler.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Selects the speculative scheduler's task-pool order (ignored by the
    /// serial and deterministic schedulers).
    pub fn worklist(mut self, policy: WorklistPolicy) -> Self {
        self.worklist = policy;
        self
    }

    /// Records a virtual-time trace ([`ExecTrace`]) of the run, used by the
    /// scaling model. Best recorded at `threads(1)` for clean per-task costs.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Records the abstract-location access stream for the cache-simulator
    /// locality study (Figure 11).
    pub fn record_access(mut self, on: bool) -> Self {
        self.record_access = on;
        self
    }

    /// Installs a seeded schedule-chaos policy (see
    /// [`galois_runtime::chaos`]): adversarial steal/spill/refill order,
    /// barrier jitter, thread start skew, and forced spurious aborts at the
    /// failsafe point, all driven by `seed`.
    ///
    /// Under [`Schedule::Deterministic`] neither the seed nor the presence of
    /// chaos may change the output or the canonical round log — that is the
    /// invariance the differential harness proves. Under
    /// [`Schedule::Speculative`] chaos perturbs the schedule for real; the
    /// output must still validate against the serial oracle.
    /// [`Schedule::Serial`] ignores chaos entirely (it is the oracle).
    /// Without a policy installed the hooks cost one branch each.
    pub fn chaos(mut self, seed: u64) -> Self {
        self.chaos = Some(Arc::new(ChaosPolicy::new(seed)));
        self
    }

    /// Like [`chaos`](Self::chaos), but with **panic injection** armed:
    /// roughly one eligible failsafe crossing in 64 panics instead of
    /// proceeding, exercising the fault-containment layer end to end. The
    /// drawn fault set is pure in `(seed, task id)`, so under
    /// [`Schedule::Deterministic`] the resulting
    /// [`ExecError::OperatorPanic`] report is byte-identical at any thread
    /// count for a fixed seed — the invariance the differential harness's
    /// panic matrix proves. The output of a faulted run is *not* seed
    /// invariant (quarantined tasks never run), which is why this is a
    /// separate opt-in rather than part of [`chaos`](Self::chaos).
    pub fn chaos_panics(mut self, seed: u64) -> Self {
        self.chaos = Some(Arc::new(ChaosPolicy::with_panics(seed)));
        self
    }

    /// Sets the stall-watchdog threshold: after this many consecutive
    /// rounds that attempt tasks but commit (and quarantine) none, a run
    /// returns [`ExecError::Stalled`] instead of spinning forever. The
    /// count is in **rounds**, never wall-clock, so the verdict is
    /// thread-count independent (portability extends to failures). For the
    /// speculative scheduler — which has no rounds — the same number
    /// bounds one worker's consecutive failed attempts with no commit
    /// progress anywhere.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn max_stalled_rounds(mut self, rounds: u64) -> Self {
        assert!(rounds > 0, "stall threshold must be positive");
        self.max_stalled_rounds = rounds;
        self
    }

    /// Records a [`RoundLog`] internally and returns it in
    /// [`RunReport::round_log`]. Equivalent to attaching a fresh `RoundLog`
    /// via [`LoopSpec::probe`] but without threading a borrow through the
    /// caller — convenient when the caller owns neither the loop site nor a
    /// probe (e.g. the CLI binaries' `--round-log` flag).
    pub fn record_rounds(mut self, on: bool) -> Self {
        self.record_rounds = on;
        self
    }

    /// Describes a loop over `tasks`: the single entry point for running.
    ///
    /// Returns a [`LoopSpec`] builder; chain [`LoopSpec::with_ids`] /
    /// [`LoopSpec::probe`] as needed and finish with [`LoopSpec::run`]:
    ///
    /// ```ignore
    /// let report = exec.iterate(tasks).with_ids(id_of, n).probe(&mut log).run(&marks, &op);
    /// ```
    pub fn iterate<T: Send>(&self, tasks: Vec<T>) -> LoopSpec<'_, '_, T> {
        LoopSpec {
            exec: self,
            tasks,
            ids: None,
            probe: None,
            recorder: None,
            chaos: self.chaos.clone(),
        }
    }
}

/// A parallel loop about to run: tasks plus optional ids and probe.
///
/// Built by [`Executor::iterate`]; consumed by [`LoopSpec::run`]. This is
/// the single configuration path for everything a *particular loop* needs
/// (as opposed to the [`Executor`], which holds per-*schedule* settings and
/// is reusable across loops).
pub struct LoopSpec<'e, 'p, T> {
    exec: &'e Executor,
    tasks: Vec<T>,
    #[allow(clippy::type_complexity)]
    ids: Option<(Box<dyn Fn(&T) -> u64 + Sync + 'p>, usize)>,
    probe: Option<&'p mut dyn Probe>,
    /// Record/replay recorder ([`LoopSpec::record`]): a dedicated slot, not
    /// the probe slot, so a run can be recorded *and* probed at once.
    recorder: Option<&'p mut ManifestRecorder>,
    /// Effective chaos policy: seeded from the executor, overridable per
    /// loop via [`LoopSpec::chaos`].
    chaos: Option<Arc<ChaosPolicy>>,
}

impl<T: Send> std::fmt::Debug for LoopSpec<'_, '_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopSpec")
            .field("exec", &self.exec)
            .field("tasks", &self.tasks.len())
            .field("with_ids", &self.ids.is_some())
            .field("probe", &self.probe.is_some())
            .finish()
    }
}

impl<'e, 'p, T: Send> LoopSpec<'e, 'p, T> {
    /// Supplies **pre-assigned task ids** (§3.3, third optimization).
    ///
    /// When tasks are drawn from a fixed set (e.g. graph nodes), `id_of`
    /// supplies each *initial* task's fixed priority in `0..id_space`
    /// directly, skipping the initial sort; equal-id initial tasks are
    /// deduplicated, so the payload must be a function of its id. Duplicates
    /// are dropped silently at run time, but the number dropped is reported
    /// in [`ExecStats::dedup_dropped`] — check it if losing work to an id
    /// collision would be a bug in your id function. Tasks *created* during
    /// execution are ordered by `(parent, rank)` like the default path (this
    /// implementation keeps the created-task sort; the paper's fully
    /// pre-assigned scheme additionally reuses fixed ids for created tasks).
    ///
    /// Non-deterministic schedules ignore the ids.
    ///
    /// # Panics
    ///
    /// The deterministic scheduler panics if some `id_of(task) >= id_space`.
    pub fn with_ids<F>(mut self, id_of: F, id_space: usize) -> Self
    where
        F: Fn(&T) -> u64 + Sync + 'p,
    {
        self.ids = Some((Box::new(id_of), id_space));
        self
    }

    /// Attaches a [`Probe`] that observes every deterministic round (or
    /// speculative epoch) of this loop. With no probe attached (and
    /// [`Executor::record_rounds`] off) the observability layer is fully
    /// inert: no records are built, no conflicts collected, no timers run,
    /// and no atomics are added to the hot path.
    pub fn probe(mut self, probe: &'p mut dyn Probe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Attaches a [`ManifestRecorder`] that captures this run for
    /// record/replay: the executor configuration is snapshotted into the
    /// recorder and every round's canonical hash is chained
    /// (see [`crate::manifest`]). In the recorder's *replay* mode the same
    /// attachment point verifies the run against a
    /// [`crate::manifest::RunManifest`] instead, flagging the first
    /// divergent round, and the produced [`RunReport`] marks itself as a
    /// replay ([`RunReport::is_replay`]).
    ///
    /// The recorder occupies its own slot, so it composes with
    /// [`LoopSpec::probe`] and [`Executor::record_rounds`]. Multi-pass
    /// algorithms (e.g. preflow-push bouts) attach the *same* recorder to
    /// every pass; rounds chain across passes into one monotone sequence.
    pub fn record(mut self, recorder: &'p mut ManifestRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Installs (or overrides) a schedule-chaos policy for this loop only,
    /// without touching the shared [`Executor`]. See [`Executor::chaos`] for
    /// semantics.
    pub fn chaos(mut self, seed: u64) -> Self {
        self.chaos = Some(Arc::new(ChaosPolicy::new(seed)));
        self
    }

    /// Installs (or overrides) a panic-injecting chaos policy for this loop
    /// only. See [`Executor::chaos_panics`] for semantics.
    pub fn chaos_panics(mut self, seed: u64) -> Self {
        self.chaos = Some(Arc::new(ChaosPolicy::with_panics(seed)));
        self
    }

    /// Runs the loop with operator `op`, synchronizing through `marks`.
    ///
    /// `marks` must cover every [`crate::LockId`] the operator acquires, and
    /// must be all-unowned on entry; it is all-unowned again on return.
    ///
    /// New tasks pushed by the operator are scheduled until the pool drains
    /// (Figure 1a). Under deterministic scheduling, initial ids follow the
    /// order of `tasks` (or `with_ids`) and created tasks are ordered by
    /// `(parent, rank)` (§3.2).
    ///
    /// # Panics
    ///
    /// Panics with the [`ExecError`] display message when the run faults —
    /// an operator panicked before its failsafe point, the quarantine cap
    /// overflowed, or the stall watchdog fired. Callers that want to handle
    /// faults use [`try_run`](Self::try_run) instead. In det mode the panic
    /// message itself is canonical (thread-count independent).
    pub fn run<O>(self, marks: &MarkTable, op: &O) -> RunReport
    where
        O: Operator<T>,
    {
        self.try_run(marks, op).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the loop like [`run`](Self::run), but reports execution faults
    /// as structured [`ExecError`]s instead of panicking.
    ///
    /// Fault containment guarantees:
    ///
    /// - An operator panic **before the failsafe point** is treated like an
    ///   abort: the task's marks roll back (by epoch in det mode, by CAS in
    ///   spec mode), the task is quarantined with its payload and captured
    ///   panic message, and the run fails with
    ///   [`ExecError::OperatorPanic`]. Peer workers drain; nothing
    ///   deadlocks.
    /// - In det mode the reported fault is the **lowest-id faulted task of
    ///   the first faulting round** — byte-identical at any thread count,
    ///   like every other deterministic output.
    /// - A panic that escapes containment (an executor bug, or an operator
    ///   fault past the failsafe point) still propagates as a panic, after
    ///   poisoning the round barrier so peers release instead of spinning.
    ///
    /// On `Err`, any attached [`Probe`] still receives its
    /// `on_finish` callback with the partial statistics (including
    /// [`quarantined`](ExecStats::quarantined)), but no [`RunReport`] is
    /// produced — the application state a faulted run leaves behind is
    /// explicitly not a run product.
    pub fn try_run<O>(self, marks: &MarkTable, op: &O) -> Result<RunReport, ExecError>
    where
        O: Operator<T>,
    {
        let LoopSpec {
            exec,
            tasks,
            ids,
            probe,
            recorder,
            chaos,
        } = self;
        debug_assert!(marks.all_unowned(), "mark table must start unowned");
        // Materialize the effective configuration: the loop-level chaos
        // override wins over the executor's. Cloning is cheap (small enums
        // plus an Arc) and keeps the executors' `cfg` plumbing unchanged.
        let cfg = Executor {
            chaos,
            ..exec.clone()
        };
        let exec = &cfg;
        // Snapshot the *effective* configuration (chaos override included)
        // into the recorder before the run; replay mode marks the report.
        let mut is_replay = false;
        let mut recorder = recorder;
        if let Some(rec) = &mut recorder {
            is_replay = rec.is_replay();
            rec.capture(exec);
        }
        let mut hub = ProbeHub::new(probe, recorder, exec.record_rounds);
        let (mut report, fault) = match &exec.schedule {
            Schedule::Serial => (serial::run(exec, marks, tasks, op), None),
            Schedule::Speculative => spec::run(exec, marks, tasks, op, &mut hub),
            Schedule::Deterministic(opts) => {
                let preassigned = ids
                    .as_ref()
                    .map(|(f, space)| (&**f as &(dyn Fn(&T) -> u64 + Sync), *space));
                det::run(exec, opts, marks, tasks, op, preassigned, &mut hub)
            }
        };
        hub.finish(&report.stats);
        report.round_log = hub.into_log();
        if is_replay {
            report.replay = true;
        }
        match fault {
            Some(err) => Err(err),
            None => Ok(report),
        }
    }
}

/// Fan-out shim between an executor and up to three probes: the external
/// `&mut dyn Probe` from [`LoopSpec::probe`], the [`ManifestRecorder`] from
/// [`LoopSpec::record`], and the internal [`RoundLog`] from
/// [`Executor::record_rounds`]. Executors interact only with this; when
/// every slot is empty every `wants_*` gate is false and the observability
/// layer costs nothing.
pub(crate) struct ProbeHub<'p> {
    external: Option<&'p mut dyn Probe>,
    recorder: Option<&'p mut ManifestRecorder>,
    own: Option<RoundLog>,
}

impl<'p> ProbeHub<'p> {
    fn new(
        external: Option<&'p mut dyn Probe>,
        recorder: Option<&'p mut ManifestRecorder>,
        record_rounds: bool,
    ) -> Self {
        ProbeHub {
            external,
            recorder,
            own: record_rounds.then(RoundLog::new),
        }
    }

    /// Whether any probe is attached at all.
    pub(crate) fn active(&self) -> bool {
        self.external.is_some() || self.recorder.is_some() || self.own.is_some()
    }

    pub(crate) fn wants_conflicts(&self) -> bool {
        // The recorder never wants conflicts (they are excluded from the
        // canonical hash), so only the other two slots are consulted.
        self.external
            .as_ref()
            .map(|p| p.wants_conflicts())
            .unwrap_or(false)
            || self
                .own
                .as_ref()
                .map(|p| p.wants_conflicts())
                .unwrap_or(false)
    }

    pub(crate) fn wants_timing(&self) -> bool {
        self.external
            .as_ref()
            .map(|p| p.wants_timing())
            .unwrap_or(false)
            || self.own.as_ref().map(|p| p.wants_timing()).unwrap_or(false)
    }

    pub(crate) fn conflict_top_k(&self) -> usize {
        self.external
            .as_ref()
            .map(|p| p.conflict_top_k())
            .unwrap_or(0)
            .max(self.own.as_ref().map(|p| p.conflict_top_k()).unwrap_or(0))
    }

    pub(crate) fn on_round(&mut self, record: RoundRecord) {
        if let Some(rec) = &mut self.recorder {
            rec.on_round(record.clone());
        }
        match (&mut self.external, &mut self.own) {
            (Some(ext), Some(own)) => {
                ext.on_round(record.clone());
                own.on_round(record);
            }
            (Some(ext), None) => ext.on_round(record),
            (None, Some(own)) => own.on_round(record),
            (None, None) => {}
        }
    }

    fn finish(&mut self, stats: &ExecStats) {
        if let Some(ext) = &mut self.external {
            ext.on_finish(stats);
        }
        if let Some(rec) = &mut self.recorder {
            rec.on_finish(stats);
        }
        if let Some(own) = &mut self.own {
            own.on_finish(stats);
        }
    }

    fn into_log(self) -> Option<RoundLog> {
        self.own
    }
}

/// Everything a run produced besides the application's own state.
///
/// Marked `#[non_exhaustive]` so future observability fields are not
/// breaking changes; construct via a run, read via the fields or the
/// accessor methods.
#[non_exhaustive]
#[derive(Debug, Default)]
pub struct RunReport {
    /// Commit/abort/atomic counts, rounds, and wall-clock time.
    pub stats: ExecStats,
    /// Virtual-time trace, when requested via [`Executor::record_trace`].
    pub trace: Option<ExecTrace>,
    /// Per-thread abstract-location access streams, when requested via
    /// [`Executor::record_access`].
    pub accesses: Option<Vec<Vec<Access>>>,
    /// Per-round log, when requested via [`Executor::record_rounds`].
    pub round_log: Option<RoundLog>,
    /// Whether this report came from a **replay** of a recorded manifest
    /// (a [`LoopSpec::record`] attachment in replay mode) rather than a
    /// fresh run. Replay reports must be distinguishable downstream — e.g.
    /// in round-log JSONL dumps — so a verified re-execution is never
    /// mistaken for new evidence of determinism.
    pub replay: bool,
}

impl RunReport {
    /// Aggregate execution statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Virtual-time trace, when one was recorded.
    pub fn trace(&self) -> Option<&ExecTrace> {
        self.trace.as_ref()
    }

    /// Per-thread access streams, when recorded.
    pub fn accesses(&self) -> Option<&[Vec<Access>]> {
        self.accesses.as_deref()
    }

    /// Per-round log, when recorded via [`Executor::record_rounds`].
    pub fn round_log(&self) -> Option<&RoundLog> {
        self.round_log.as_ref()
    }

    /// Takes ownership of the round log, leaving `None` behind.
    pub fn take_round_log(&mut self) -> Option<RoundLog> {
        self.round_log.take()
    }

    /// Whether this report was produced by replaying a recorded manifest.
    pub fn is_replay(&self) -> bool {
        self.replay
    }

    /// Marks this report as replay-produced (for harnesses that re-execute
    /// outside [`LoopSpec::record`]'s automatic marking).
    pub fn mark_replay(&mut self) {
        self.replay = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let e = Executor::new();
        assert_eq!(e.threads, 1);
        assert_eq!(e.schedule, Schedule::Speculative);
        assert!(!e.record_trace);
        assert!(!e.record_access);
        assert!(!e.record_rounds);
        assert!(e.chaos.is_none());
    }

    #[test]
    fn chaos_compares_by_seed() {
        // Executor derives PartialEq; ChaosPolicy equality is by seed, so
        // two builders with the same seed compare equal (the ticket state is
        // not identity).
        let a = Executor::new().chaos(9);
        let b = Executor::new().chaos(9);
        assert_eq!(a, b);
        assert_ne!(a, Executor::new().chaos(10));
        assert_ne!(a, Executor::new());
    }

    #[test]
    fn loop_spec_debug_is_compact() {
        let e = Executor::new();
        let spec = e.iterate(vec![1u64, 2, 3]);
        let dbg = format!("{spec:?}");
        assert!(dbg.contains("tasks: 3"));
        assert!(dbg.contains("probe: false"));
    }

    #[test]
    fn probe_hub_inert_when_empty() {
        let hub = ProbeHub::new(None, None, false);
        assert!(!hub.active());
        assert!(!hub.wants_conflicts());
        assert!(!hub.wants_timing());
        assert_eq!(hub.conflict_top_k(), 0);
    }

    #[test]
    fn probe_hub_fans_out_to_both() {
        let mut ext = RoundLog::new();
        let mut hub = ProbeHub::new(Some(&mut ext), None, true);
        assert!(hub.active() && hub.wants_conflicts() && hub.wants_timing());
        hub.on_round(RoundRecord {
            round: 0,
            ..Default::default()
        });
        hub.finish(&ExecStats::default());
        let own = hub.into_log().expect("own log present");
        assert_eq!(own.len(), 1);
        assert_eq!(ext.len(), 1);
        assert!(ext.final_stats().is_some());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        let _ = Executor::new().threads(0);
    }

    #[test]
    fn recorder_attachment_captures_and_marks_replay() {
        use crate::ctx::{Ctx, OpResult};
        use crate::manifest::ManifestRecorder;
        let marks = MarkTable::new(4);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire((*t % 4) as u32)?;
            ctx.failsafe()?;
            Ok(())
        };
        let exec = Executor::new()
            .threads(2)
            .schedule(Schedule::deterministic());

        // Record mode: config captured, rounds chained, report NOT a replay.
        let mut rec = ManifestRecorder::new();
        let report = exec
            .iterate((0..32u64).collect())
            .record(&mut rec)
            .run(&marks, &op);
        assert!(!report.is_replay());
        assert!(rec.rounds() > 0);
        assert_eq!(rec.rounds() as usize, rec.round_hashes().len());
        let manifest = rec.finish("test", "k", 0, 0, 7);
        assert_eq!(manifest.exec.threads, 2);

        // Replay mode against the just-recorded manifest: clean verify,
        // and the report marks itself as a replay.
        let mut rep = ManifestRecorder::replaying(&manifest);
        let report = exec
            .iterate((0..32u64).collect())
            .record(&mut rep)
            .run(&marks, &op);
        assert!(report.is_replay());
        assert!(rep.verify(&manifest, 7).is_ok());
    }

    #[test]
    fn det_options_default_enables_continuations() {
        let d = DetOptions::default();
        assert!(d.continuation);
        assert_eq!(d.locality_spread, 1);
    }
}
