//! Executor configuration and run reports: the on-demand determinism switch.
//!
//! The paper's headline design point is that **the same program** runs under
//! a non-deterministic or a deterministic scheduler, selected at run time
//! ("the desired scheduler is specified through a command-line parameter",
//! §1). [`Executor`] is that switch: build one with a [`Schedule`] and call
//! [`Executor::run`] with any cautious operator.
//!
//! ```
//! use galois_core::{Executor, MarkTable, Schedule, Ctx, OpResult};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // Sum-into-buckets: each task adds its value to bucket (task % 4).
//! let buckets: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
//! let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
//!     ctx.acquire((*t % 4) as u32)?;
//!     ctx.failsafe()?;
//!     buckets[(*t % 4) as usize].fetch_add(*t, Ordering::Relaxed);
//!     Ok(())
//! };
//! let marks = MarkTable::new(4);
//! let report = Executor::new()
//!     .threads(2)
//!     .schedule(Schedule::deterministic())
//!     .run(&marks, (0..100).collect(), &op);
//! assert_eq!(report.stats.committed, 100);
//! let total: u64 = buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
//! assert_eq!(total, (0..100).sum());
//! ```

use crate::ctx::Access;
use crate::det;
use crate::marks::MarkTable;
use crate::ops::Operator;
use crate::serial;
use crate::spec;
use crate::window::WindowPolicy;
use galois_runtime::simtime::ExecTrace;
use galois_runtime::stats::ExecStats;

/// Options of the deterministic (DIG) scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct DetOptions {
    /// Continuation optimization (§3.3, first): honor [`crate::Ctx::checkpoint`]
    /// so commits resume from the failsafe point instead of re-executing the
    /// operator prefix. Disabling this reproduces the baseline scheduler of
    /// §3.2 (measured in Figure 10).
    pub continuation: bool,
    /// Locality spreading (§3.3, second): deal the task sequence into this
    /// many buckets so tasks adjacent in iteration order land in different
    /// rounds. `0` or `1` disables.
    pub locality_spread: usize,
    /// Adaptive window constants (§3.2). Fixed by default; exposed for
    /// ablation studies only — note that changing them changes the schedule,
    /// which is exactly why the paper insists they not be user-tunable.
    pub window: WindowPolicy,
}

impl Default for DetOptions {
    fn default() -> Self {
        DetOptions {
            continuation: true,
            locality_spread: 1,
            window: WindowPolicy::default(),
        }
    }
}

/// Task-pool ordering policy for the speculative scheduler.
///
/// The pool of Figure 1a is unordered, so any policy is correct; the choice
/// is pure scheduling (the original Galois system exposes a library of
/// worklist policies). LIFO maximizes locality; FIFO gives the breadth-like
/// order that label-correcting algorithms (bfs) need to avoid redundant
/// work. Deterministic scheduling ignores this (its order is the
/// deterministic id order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorklistPolicy {
    /// Chunked LIFO (default).
    #[default]
    Lifo,
    /// Chunked roughly-FIFO.
    Fifo,
}

/// Which scheduler executes the loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Single-threaded reference execution (no marks, no conflicts).
    Serial,
    /// The non-deterministic speculative scheduler of Figure 1b.
    Speculative,
    /// The deterministic DIG scheduler of Figures 2–3.
    Deterministic(DetOptions),
}

impl Schedule {
    /// Deterministic scheduling with default options.
    pub fn deterministic() -> Self {
        Schedule::Deterministic(DetOptions::default())
    }
}

/// A configured parallel loop executor. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct Executor {
    pub(crate) threads: usize,
    pub(crate) schedule: Schedule,
    pub(crate) worklist: WorklistPolicy,
    pub(crate) record_trace: bool,
    pub(crate) record_access: bool,
}

impl Default for Executor {
    fn default() -> Self {
        Executor {
            threads: 1,
            schedule: Schedule::Speculative,
            worklist: WorklistPolicy::Lifo,
            record_trace: false,
            record_access: false,
        }
    }
}

impl Executor {
    /// A speculative single-thread executor; configure with the builder
    /// methods.
    pub fn new() -> Self {
        Executor::default()
    }

    /// Sets the number of worker threads.
    ///
    /// Under [`Schedule::Deterministic`] the output is identical for every
    /// value (the portability property); under [`Schedule::Speculative`] it
    /// is not. [`Schedule::Serial`] ignores this.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Selects the scheduler.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Selects the speculative scheduler's task-pool order (ignored by the
    /// serial and deterministic schedulers).
    pub fn worklist(mut self, policy: WorklistPolicy) -> Self {
        self.worklist = policy;
        self
    }

    /// Records a virtual-time trace ([`ExecTrace`]) of the run, used by the
    /// scaling model. Best recorded at `threads(1)` for clean per-task costs.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Records the abstract-location access stream for the cache-simulator
    /// locality study (Figure 11).
    pub fn record_access(mut self, on: bool) -> Self {
        self.record_access = on;
        self
    }

    /// Runs the loop over `tasks` with operator `op`, synchronizing through
    /// `marks`.
    ///
    /// `marks` must cover every [`crate::LockId`] the operator acquires, and
    /// must be all-unowned on entry; it is all-unowned again on return.
    ///
    /// New tasks pushed by the operator are scheduled until the pool drains
    /// (Figure 1a). Under deterministic scheduling, initial ids follow the
    /// order of `tasks` and created tasks are ordered by `(parent, rank)`
    /// (§3.2).
    pub fn run<T, O>(&self, marks: &MarkTable, tasks: Vec<T>, op: &O) -> RunReport
    where
        T: Send,
        O: Operator<T>,
    {
        debug_assert!(marks.all_unowned(), "mark table must start unowned");
        match &self.schedule {
            Schedule::Serial => serial::run(self, marks, tasks, op),
            Schedule::Speculative => spec::run(self, marks, tasks, op),
            Schedule::Deterministic(opts) => det::run(self, opts, marks, tasks, op, None),
        }
    }

    /// Runs with **pre-assigned task ids** (§3.3, third optimization).
    ///
    /// When tasks are drawn from a fixed set (e.g. graph nodes), `id_of`
    /// supplies each *initial* task's fixed priority in `0..id_space`
    /// directly, skipping the initial sort; equal-id initial tasks are
    /// deduplicated, so the payload must be a function of its id. Duplicates
    /// are dropped silently at run time, but the number dropped is reported
    /// in [`ExecStats::dedup_dropped`] — check it if losing work to an id
    /// collision would be a bug in your id function. Tasks *created* during
    /// execution are ordered by `(parent, rank)` like the default path (this
    /// implementation keeps the created-task sort; the paper's fully
    /// pre-assigned scheme additionally reuses fixed ids for created tasks).
    ///
    /// Non-deterministic schedules ignore the ids and behave exactly like
    /// [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// The deterministic scheduler panics if some `id_of(task) >= id_space`.
    pub fn run_with_ids<T, O, F>(
        &self,
        marks: &MarkTable,
        tasks: Vec<T>,
        op: &O,
        id_of: F,
        id_space: usize,
    ) -> RunReport
    where
        T: Send,
        O: Operator<T>,
        F: Fn(&T) -> u64 + Sync,
    {
        debug_assert!(marks.all_unowned(), "mark table must start unowned");
        match &self.schedule {
            Schedule::Serial => serial::run(self, marks, tasks, op),
            Schedule::Speculative => spec::run(self, marks, tasks, op),
            Schedule::Deterministic(opts) => det::run(
                self,
                opts,
                marks,
                tasks,
                op,
                Some((&id_of as &(dyn Fn(&T) -> u64 + Sync), id_space)),
            ),
        }
    }
}

/// Everything a run produced besides the application's own state.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Commit/abort/atomic counts, rounds, and wall-clock time.
    pub stats: ExecStats,
    /// Virtual-time trace, when requested via [`Executor::record_trace`].
    pub trace: Option<ExecTrace>,
    /// Per-thread abstract-location access streams, when requested via
    /// [`Executor::record_access`].
    pub accesses: Option<Vec<Vec<Access>>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let e = Executor::new();
        assert_eq!(e.threads, 1);
        assert_eq!(e.schedule, Schedule::Speculative);
        assert!(!e.record_trace);
        assert!(!e.record_access);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        let _ = Executor::new().threads(0);
    }

    #[test]
    fn det_options_default_enables_continuations() {
        let d = DetOptions::default();
        assert!(d.continuation);
        assert_eq!(d.locality_spread, 1);
    }
}
