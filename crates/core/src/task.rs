//! Task identity and deterministic id assignment.
//!
//! Deterministic scheduling requires a total order on task ids (§2.1). Ids
//! are assigned per *pass* (one drain of the `todo` set, Figure 2):
//!
//! - Initial tasks receive ids in iteration order of the input collection.
//! - A task created by task `t` as its `k`-th child carries the pair
//!   `(id(t), k)`. At the pass boundary all created tasks are sorted
//!   lexicographically by that pair and renumbered by position (§3.2).
//! - Alternatively, applications whose tasks are drawn from a fixed set can
//!   pre-assign ids (§3.3, third optimization), skipping the sort.
//!
//! Mark values are `id + 1`, so [`crate::marks::UNOWNED`] (0) stays below
//! every task.

use galois_runtime::sort::parallel_sort_by_key;

/// A pass-local task id: the task's rank in the pass's deterministic order.
pub type TaskId = u64;

/// A schedulable task: payload plus pass-local id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkItem<T> {
    /// Application payload.
    pub task: T,
    /// Pass-local id (dense: `0..pass_size` for sorted passes, or the
    /// pre-assigned id for fixed-task-set applications).
    pub id: TaskId,
}

/// A newly created task awaiting id assignment: payload plus `(parent, rank)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingItem<T> {
    /// Application payload.
    pub task: T,
    /// Id of the creating task.
    pub parent: TaskId,
    /// Birth rank: this was the parent's `rank`-th push.
    pub rank: u32,
}

/// Sorts created tasks by `(parent, rank)` and renumbers them `0..n`.
///
/// The input order may be arbitrary as long as the multiset of
/// `(parent, rank)` pairs is deterministic; the output order (and therefore
/// the new ids) depends only on those pairs, because `(parent, rank)` pairs
/// are unique: a parent numbers its pushes consecutively.
pub fn assign_ids<T: Send>(pending: Vec<PendingItem<T>>, threads: usize) -> Vec<WorkItem<T>> {
    let mut pending = pending;
    parallel_sort_by_key(&mut pending, threads, |p| (p.parent, p.rank));
    pending
        .into_iter()
        .enumerate()
        .map(|(pos, p)| WorkItem {
            task: p.task,
            id: pos as TaskId,
        })
        .collect()
}

/// Applies the locality-spreading permutation (§3.3, second optimization).
///
/// Tasks adjacent in iteration order tend to have overlapping neighborhoods;
/// executing them in the same round guarantees conflicts. Dealing the
/// sequence into `stride` buckets round-robin and concatenating the buckets
/// places originally-adjacent tasks `len/stride` apart — in different rounds
/// for typical window sizes — while remaining a fixed deterministic
/// permutation (ids are unchanged; only the schedule-order view permutes).
///
/// `stride <= 1` returns the input unchanged.
///
/// # Example
///
/// ```
/// let v = vec![0, 1, 2, 3, 4, 5, 6];
/// assert_eq!(
///     galois_core::task::spread_for_locality(v, 3),
///     vec![0, 3, 6, 1, 4, 2, 5],
/// );
/// ```
pub fn spread_for_locality<T>(items: Vec<T>, stride: usize) -> Vec<T> {
    if stride <= 1 || items.len() <= 2 {
        return items;
    }
    let n = items.len();
    let mut buckets: Vec<Vec<T>> = (0..stride)
        .map(|_| Vec::with_capacity(n / stride + 1))
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % stride].push(item);
    }
    let mut out = Vec::with_capacity(n);
    for b in buckets {
        out.extend(b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_ids_orders_lexicographically() {
        let pending = vec![
            PendingItem {
                task: 'c',
                parent: 1,
                rank: 1,
            },
            PendingItem {
                task: 'a',
                parent: 0,
                rank: 0,
            },
            PendingItem {
                task: 'd',
                parent: 2,
                rank: 0,
            },
            PendingItem {
                task: 'b',
                parent: 0,
                rank: 1,
            },
        ];
        let items = assign_ids(pending, 2);
        let order: Vec<char> = items.iter().map(|w| w.task).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
        let ids: Vec<u64> = items.iter().map(|w| w.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn assign_ids_independent_of_input_order() {
        let mk = |perm: &[usize]| {
            let base = [
                PendingItem {
                    task: 10,
                    parent: 5,
                    rank: 0,
                },
                PendingItem {
                    task: 20,
                    parent: 3,
                    rank: 2,
                },
                PendingItem {
                    task: 30,
                    parent: 3,
                    rank: 0,
                },
                PendingItem {
                    task: 40,
                    parent: 9,
                    rank: 1,
                },
            ];
            let v: Vec<_> = perm.iter().map(|&i| base[i].clone()).collect();
            assign_ids(v, 1)
        };
        let a = mk(&[0, 1, 2, 3]);
        let b = mk(&[3, 2, 1, 0]);
        let c = mk(&[2, 0, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn spread_identity_for_small_strides() {
        let v = vec![1, 2, 3];
        assert_eq!(spread_for_locality(v.clone(), 0), v);
        assert_eq!(spread_for_locality(v.clone(), 1), v);
    }

    #[test]
    fn spread_is_a_permutation() {
        let v: Vec<usize> = (0..100).collect();
        for stride in [2, 3, 7, 16, 99, 100, 1000] {
            let mut s = spread_for_locality(v.clone(), stride);
            s.sort_unstable();
            assert_eq!(s, v, "stride {stride} lost elements");
        }
    }

    #[test]
    fn spread_separates_neighbors() {
        let v: Vec<usize> = (0..64).collect();
        let s = spread_for_locality(v, 8);
        let pos_of = |x: usize| s.iter().position(|&y| y == x).unwrap();
        // Originally adjacent tasks end up at least len/stride - 1 apart.
        for i in 0..63 {
            let d = pos_of(i).abs_diff(pos_of(i + 1));
            assert!(d >= 7, "tasks {i},{} only {d} apart", i + 1);
        }
    }
}
