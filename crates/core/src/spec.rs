//! The non-deterministic speculative executor (Figure 1b).
//!
//! Worker threads repeatedly pull an arbitrary task from a chunked bag, run
//! the operator while acquiring marks with compare-and-set, and either commit
//! (releasing marks and enqueueing created tasks) or roll back on conflict
//! (releasing marks and re-enqueueing the task). Because operators are
//! cautious, rollback never has to undo shared-state writes — this is the
//! lightweight dining-philosophers synchronization of §2.1.
//!
//! # Probe epochs
//!
//! The speculative executor has no rounds, so when a probe is attached each
//! worker chops its *own* attempt stream into fixed-size **epochs** of
//! [`SPEC_EPOCH_QUANTUM`] attempts, accumulated thread-locally (no hot-path
//! synchronization) and merged per epoch index after the parallel section.
//! The resulting [`RoundRecord`]s have the same shape as deterministic
//! rounds — `window` is the epoch quantum, `commit_ns` the epoch's
//! wall-clock — so det-vs-spec runs are directly comparable, but unlike
//! deterministic rounds they are **not** canonical: thread interleaving is
//! real nondeterminism here.

use crate::ctx::{Abort, Access, Ctx, Mode};
use crate::error::{contain_panic, panic_message, ExecError, QUARANTINE_CAP};
use crate::executor::WorklistPolicy;
use crate::executor::{Executor, ProbeHub, RunReport};
use crate::marks::MarkTable;
use crate::ops::Operator;
use galois_runtime::pool::run_on_threads_fault;
use galois_runtime::probe::{attribute_conflicts, RoundRecord};
use galois_runtime::simtime::ExecTrace;
use galois_runtime::stats::{ExecStats, ThreadStats};
use galois_runtime::worklist::{ChunkedBag, ChunkedFifo, Terminator};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Attempts per speculative probe epoch.
pub(crate) const SPEC_EPOCH_QUANTUM: u64 = 1024;

/// Second opinion before the stall watchdog declares a livelock. An abort
/// streak alone is not proof: spinning contenders can rack up thousands of
/// conflicts in the time a descheduled mark-holder waits for a CPU slice.
/// Yielding repeatedly hands that holder the processor — if the commit
/// counter is still frozen after every peer had ample chance to run, no
/// retry anywhere can succeed and the stall is real.
fn stall_confirmed(committed: &AtomicU64, snapshot: &mut u64) -> bool {
    let before = committed.load(Ordering::Relaxed);
    if before != *snapshot {
        *snapshot = before;
        return false;
    }
    for _ in 0..256 {
        std::thread::yield_now();
        let now = committed.load(Ordering::Relaxed);
        if now != before {
            *snapshot = now;
            return false;
        }
    }
    true
}

/// One worker-local epoch of attempts (probe bookkeeping only).
#[derive(Default)]
struct EpochAcc {
    attempted: u64,
    committed: u64,
    failed: u64,
    conflicts: Vec<u32>,
    elapsed_ns: f64,
}

/// Static dispatch over the two worklist policies.
enum AnyBag<T> {
    Lifo(ChunkedBag<T>),
    Fifo(ChunkedFifo<T>),
}

impl<T: Send> AnyBag<T> {
    fn push(&self, tid: usize, item: T) {
        match self {
            AnyBag::Lifo(b) => b.push(tid, item),
            AnyBag::Fifo(q) => q.push(tid, item),
        }
    }

    fn pop(&self, tid: usize) -> Option<T> {
        match self {
            AnyBag::Lifo(b) => b.pop(tid),
            AnyBag::Fifo(q) => q.pop(tid),
        }
    }
}

pub(crate) fn run<T, O>(
    cfg: &Executor,
    marks: &MarkTable,
    tasks: Vec<T>,
    op: &O,
    hub: &mut ProbeHub<'_>,
) -> (RunReport, Option<ExecError>)
where
    T: Send,
    O: Operator<T>,
{
    let threads = cfg.threads;
    let probing = hub.active();
    let collect_conflicts = probing && hub.wants_conflicts();
    let time_epochs = probing && hub.wants_timing();
    let start = Instant::now();
    let bag: AnyBag<T> = match cfg.worklist {
        WorklistPolicy::Lifo => AnyBag::Lifo(ChunkedBag::with_chaos(threads, cfg.chaos.clone())),
        WorklistPolicy::Fifo => AnyBag::Fifo(ChunkedFifo::with_chaos(threads, cfg.chaos.clone())),
    };
    let terminator = Terminator::new();
    terminator.register(tasks.len());
    for (i, t) in tasks.into_iter().enumerate() {
        bag.push(i % threads, t);
    }

    type Collected = (ThreadStats, Vec<Access>, Vec<EpochAcc>);
    let collected: Mutex<Vec<Collected>> = Mutex::new(Vec::new());

    // Fault containment state. `halt` drains the pool early on terminal
    // faults (overflow, stall) and when an *escaping* panic — an internal
    // bug, since operator panics are caught below — unwinds a worker; the
    // fault hook raises it so peers stop polling the bag instead of
    // spinning on a terminator that can no longer reach zero.
    let halt = AtomicBool::new(false);
    let committed_global = AtomicU64::new(0);
    let quarantined_total = AtomicU64::new(0);
    // First operator panic a worker happened to observe: reported if the
    // drain otherwise completes. Non-canonical by design (spec mode is
    // honestly nondeterministic); det mode is the reproducible surface.
    let first_panic: Mutex<Option<ExecError>> = Mutex::new(None);
    // Terminal faults that stop the run take precedence over a recorded
    // first panic when both occur.
    let terminal: Mutex<Option<ExecError>> = Mutex::new(None);

    run_on_threads_fault(
        threads,
        cfg.chaos.as_deref(),
        Some(&|| halt.store(true, Ordering::Relaxed)),
        |tid| {
            let mut stats = ThreadStats::default();
            let mut accesses: Vec<Access> = Vec::new();
            let mut neighborhood: Vec<crate::marks::LockId> = Vec::new();
            let mut pushes: Vec<T> = Vec::new();
            let mut stash = None;
            // Probe epoch bookkeeping (inert unless a probe is attached).
            let mut epochs: Vec<EpochAcc> = Vec::new();
            let mut acc = EpochAcc::default();
            let mut epoch_conflicts: Vec<u32> = Vec::new();
            let mut epoch_t0: Option<Instant> = None;
            // Per-attempt unique ids: (tid+1) above bit 32, counter below. Ids
            // need only be unique and nonzero for the CAS protocol (§2.1), but
            // they must fit the mark word's 40-bit id field so the epoch tag in
            // the high bits stays intact.
            let mut attempt: u64 = 0;
            let mut idle_spins = 0u32;
            // Stall watchdog bookkeeping: consecutive real-conflict aborts on
            // this worker, reset whenever anyone commits. Counted in attempts
            // (the speculative analogue of rounds), never wall-clock.
            let mut abort_streak: u64 = 0;
            let mut commit_snapshot: u64 = 0;

            loop {
                if halt.load(Ordering::Relaxed) {
                    break;
                }
                let Some(task) = bag.pop(tid) else {
                    if terminator.is_done() {
                        break;
                    }
                    idle_spins += 1;
                    if idle_spins > 16 {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                    continue;
                };
                idle_spins = 0;
                attempt += 1;
                debug_assert!(attempt < 1 << 32, "attempt counter overflows the id split");
                let mark_value = ((tid as u64 + 1) << 32) | attempt;
                debug_assert!(
                    mark_value <= crate::marks::MAX_ID,
                    "speculative id must fit the 40-bit mark field"
                );
                neighborhood.clear();
                pushes.clear();
                // Chaos: a pure draw keyed on the per-attempt id decides whether
                // this attempt is forced to abort at its failsafe point. Keying
                // on the attempt (not the task) guarantees termination: the
                // retry gets a fresh id and, almost surely, a non-aborting draw.
                let inject = cfg
                    .chaos
                    .as_deref()
                    .is_some_and(|c| c.inject_spec_abort(mark_value));
                let inject_panic = cfg
                    .chaos
                    .as_deref()
                    .is_some_and(|c| c.inject_spec_panic(mark_value));
                let result = {
                    let mut ctx = Ctx {
                        mode: Mode::Speculative,
                        mark_value,
                        tid,
                        marks,
                        neighborhood: &mut neighborhood,
                        pushes: &mut pushes,
                        flags: None,
                        stash: &mut stash,
                        allow_stash: false,
                        stats: &mut stats,
                        recorder: cfg.record_access.then_some(&mut accesses),
                        conflicts: collect_conflicts.then_some(&mut epoch_conflicts),
                        past_failsafe: false,
                        inject_abort: inject,
                        inject_panic: inject_panic.then_some(mark_value),
                    };
                    // Contain operator panics like conflicts: the cautious
                    // contract means nothing shared was written pre-failsafe, so
                    // releasing the marks below is a complete rollback.
                    contain_panic(|| {
                        let r = op.run(&task, &mut ctx);
                        if r.is_ok() {
                            ctx.record_neighborhood_writes();
                        }
                        r
                    })
                };
                // Both paths release the whole neighborhood (Figure 1b resets
                // marks whether the task committed or conflicted). Unlike the
                // deterministic scheduler there is no round boundary to hang an
                // epoch bump on, so the per-location CAS protocol stays.
                for &loc in neighborhood.iter() {
                    marks.release(loc, mark_value);
                }
                stats.mark_releases += neighborhood.len() as u64;
                if probing {
                    if acc.attempted == 0 {
                        epoch_t0 = time_epochs.then(Instant::now);
                    }
                    acc.attempted += 1;
                    if matches!(result, Ok(Ok(()))) {
                        acc.committed += 1;
                    } else {
                        acc.failed += 1;
                    }
                    if acc.attempted == SPEC_EPOCH_QUANTUM {
                        acc.conflicts = std::mem::take(&mut epoch_conflicts);
                        acc.elapsed_ns = epoch_t0
                            .take()
                            .map(|t| t.elapsed().as_nanos() as f64)
                            .unwrap_or(0.0);
                        epochs.push(std::mem::take(&mut acc));
                    }
                }
                match result {
                    Ok(Ok(())) => {
                        stats.committed += 1;
                        committed_global.fetch_add(1, Ordering::Relaxed);
                        abort_streak = 0;
                        let n = pushes.len();
                        if n > 0 {
                            terminator.register(n);
                            for p in pushes.drain(..) {
                                bag.push(tid, p);
                            }
                        }
                        terminator.finish_one();
                    }
                    Ok(Err(Abort::Injected)) => {
                        // Spurious abort forced by the chaos policy: re-enqueue
                        // like a conflict, but the real-conflict counter (and so
                        // the Figure 4 abort ratio) must not move.
                        bag.push(tid, task);
                        std::hint::spin_loop();
                    }
                    Ok(Err(_)) => {
                        stats.aborted += 1;
                        bag.push(tid, task);
                        // Stall watchdog: a long unbroken streak of real
                        // conflicts on this worker, with the global commit
                        // counter frozen across the whole streak, means every
                        // retry is losing to nobody — the operator livelocks
                        // (e.g. it returns a conflict abort unconditionally).
                        abort_streak += 1;
                        if abort_streak == 1 {
                            commit_snapshot = committed_global.load(Ordering::Relaxed);
                        }
                        if abort_streak >= cfg.max_stalled_rounds {
                            if stall_confirmed(&committed_global, &mut commit_snapshot) {
                                *terminal.lock().unwrap() = Some(ExecError::Stalled {
                                    rounds: abort_streak,
                                });
                                halt.store(true, Ordering::Relaxed);
                                break;
                            }
                            // Someone committed: real contention, not a
                            // livelock. Restart the streak against the new
                            // commit level.
                            abort_streak = 0;
                        }
                        // Brief backoff so the conflicting owner can finish.
                        std::hint::spin_loop();
                    }
                    Err(payload) => {
                        // Operator panic: quarantine the attempt. The task is
                        // consumed (never retried — a panic is not a conflict),
                        // so the terminator still reaches zero and the drain
                        // completes; the fault is reported after the run.
                        stats.quarantined += 1;
                        terminator.finish_one();
                        {
                            let mut slot = first_panic.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(ExecError::OperatorPanic {
                                    task_id: mark_value,
                                    message: panic_message(payload),
                                    round: 0,
                                });
                            }
                        }
                        if quarantined_total.fetch_add(1, Ordering::Relaxed) + 1 > QUARANTINE_CAP {
                            *terminal.lock().unwrap() = Some(ExecError::QuarantineOverflow {
                                quarantined: quarantined_total.load(Ordering::Relaxed),
                                limit: QUARANTINE_CAP,
                            });
                            halt.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
            if probing && acc.attempted > 0 {
                acc.conflicts = std::mem::take(&mut epoch_conflicts);
                acc.elapsed_ns = epoch_t0
                    .take()
                    .map(|t| t.elapsed().as_nanos() as f64)
                    .unwrap_or(0.0);
                epochs.push(std::mem::take(&mut acc));
            }
            collected.lock().unwrap().push((stats, accesses, epochs));
        },
    );

    let elapsed = start.elapsed();
    let mut per_thread = collected.into_inner().unwrap();
    let mut agg = ExecStats::from_threads(per_thread.iter().map(|(s, _, _)| s));
    agg.elapsed = elapsed;
    agg.threads = threads;

    if probing {
        // Merge per-thread epochs by epoch index. Sums and conflict counts
        // are commutative, so the (nondeterministic) thread collection order
        // does not matter; the epochs themselves still reflect real
        // speculative nondeterminism.
        //
        // Barrier audit (2-barrier campaign): unlike the deterministic
        // scheduler, epochs here are *worker-local* attempt counters — no
        // thread ever waits for an epoch boundary, so there is no per-epoch
        // crossing to fuse. The only join point in this executor is the
        // final thread join above; the merge below runs once per run, after
        // it, on one thread.
        let top_k = hub.conflict_top_k();
        let max_epochs = per_thread
            .iter()
            .map(|(_, _, e)| e.len())
            .max()
            .unwrap_or(0);
        let mut merged: Vec<EpochAcc> = Vec::with_capacity(max_epochs);
        for (_, _, epochs) in per_thread.iter_mut() {
            for (e, acc) in epochs.iter_mut().enumerate() {
                if merged.len() <= e {
                    merged.push(EpochAcc::default());
                }
                let m = &mut merged[e];
                m.attempted += acc.attempted;
                m.committed += acc.committed;
                m.failed += acc.failed;
                m.elapsed_ns += acc.elapsed_ns;
                m.conflicts.append(&mut acc.conflicts);
            }
        }
        for (e, mut m) in merged.into_iter().enumerate() {
            let conflicts = attribute_conflicts(&mut m.conflicts, top_k);
            hub.on_round(RoundRecord {
                round: e as u64,
                window: SPEC_EPOCH_QUANTUM,
                attempted: m.attempted,
                committed: m.committed,
                failed: m.failed,
                conflicts,
                inspect_ns: 0.0,
                commit_ns: m.elapsed_ns,
                serial_ns: 0.0,
            });
        }
    }

    let trace = cfg.record_trace.then(|| {
        // Aggregate timing: per-task Instant pairs would add tens of
        // nanoseconds to tasks that are themselves ~100ns, distorting the
        // model. Total loop wall time divided by committed tasks already
        // includes the scheduler overhead per task (clean at one thread,
        // where traces are recorded).
        let committed = agg.committed.max(1);
        let avg = elapsed.as_nanos() as f64 * threads as f64 / committed as f64;
        ExecTrace::Async {
            task_ns: vec![avg; committed as usize],
            overhead_ns: 0.0,
        }
    });
    let accesses = cfg
        .record_access
        .then(|| per_thread.into_iter().map(|(_, a, _)| a).collect());

    debug_assert!(
        marks.all_unowned(),
        "speculative run must release all marks"
    );
    let fault = terminal
        .into_inner()
        .unwrap()
        .or(first_panic.into_inner().unwrap());
    (
        RunReport {
            stats: agg,
            trace,
            accesses,
            round_log: None,
            replay: false,
        },
        fault,
    )
}

#[cfg(test)]
mod tests {
    use crate::executor::{Executor, Schedule};
    use crate::marks::MarkTable;
    use crate::{Ctx, OpResult};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Histogram increments guarded by per-bucket locks: contended enough to
    /// exercise conflicts but with a deterministic total.
    fn histogram_op(
        buckets: &[AtomicU64],
    ) -> impl Fn(&u64, &mut Ctx<'_, u64>) -> OpResult + Sync + '_ {
        move |t: &u64, ctx: &mut Ctx<'_, u64>| {
            let b = (*t % buckets.len() as u64) as u32;
            ctx.acquire(b)?;
            ctx.failsafe()?;
            // Non-atomic read-modify-write made safe by the abstract lock.
            let cur = buckets[b as usize].load(Ordering::Relaxed);
            buckets[b as usize].store(cur + *t, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn all_tasks_commit_exactly_once() {
        for threads in [1usize, 2, 4] {
            let buckets: Vec<AtomicU64> = (0..7).map(|_| AtomicU64::new(0)).collect();
            let marks = MarkTable::new(7);
            let op = histogram_op(&buckets);
            let report = Executor::new()
                .threads(threads)
                .schedule(Schedule::Speculative)
                .iterate((0..1000u64).collect())
                .run(&marks, &op);
            assert_eq!(report.stats.committed, 1000, "threads={threads}");
            let total: u64 = buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
            assert_eq!(total, (0..1000u64).sum::<u64>(), "threads={threads}");
            assert!(marks.all_unowned());
        }
    }

    #[test]
    fn chaos_injection_preserves_output_and_real_abort_count() {
        let buckets: Vec<AtomicU64> = (0..7).map(|_| AtomicU64::new(0)).collect();
        let marks = MarkTable::new(7);
        let op = histogram_op(&buckets);
        let report = Executor::new()
            .threads(2)
            .schedule(Schedule::Speculative)
            .chaos(42)
            .iterate((0..1000u64).collect())
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 1000);
        let total: u64 = buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert_eq!(total, (0..1000u64).sum::<u64>());
        // With ~1/4 of attempts force-aborted, injections must have fired
        // and must be counted apart from real conflicts.
        assert!(report.stats.injected_aborts > 0);
        assert!(marks.all_unowned());
    }

    #[test]
    fn pushes_are_executed() {
        // Chain: task n pushes n-1 until 0; starting from 100 yields 101 commits.
        let marks = MarkTable::new(1);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.failsafe()?;
            if *t > 0 {
                ctx.push(*t - 1);
            }
            Ok(())
        };
        let report = Executor::new()
            .threads(2)
            .schedule(Schedule::Speculative)
            .iterate(vec![100])
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 101);
    }

    #[test]
    fn conflicts_are_counted_and_retried() {
        // Every task needs the single location: heavy conflicts, but all
        // must eventually commit.
        let marks = MarkTable::new(1);
        let counter = AtomicU64::new(0);
        let op = |_t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire(0u32)?;
            ctx.failsafe()?;
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(())
        };
        let report = Executor::new()
            .threads(4)
            .schedule(Schedule::Speculative)
            .iterate((0..200u64).collect())
            .run(&marks, &op);
        assert_eq!(report.stats.committed, 200);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        // Atomic updates include one CAS per acquire attempt.
        assert!(report.stats.atomic_updates >= 200);
    }

    #[test]
    fn operator_panic_quarantines_and_the_drain_completes() {
        // One poisoned task out of 500: the run must neither deadlock nor
        // lose the other 499 commits, and try_run reports the fault.
        let committed = AtomicU64::new(0);
        let marks = MarkTable::new(7);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire((*t % 7) as u32)?;
            if *t == 250 {
                panic!("bad task {t}");
            }
            ctx.failsafe()?;
            committed.fetch_add(1, Ordering::Relaxed);
            Ok(())
        };
        let err = Executor::new()
            .threads(4)
            .schedule(Schedule::Speculative)
            .iterate((0..500u64).collect())
            .try_run(&marks, &op)
            .expect_err("poisoned task faults");
        match err {
            crate::ExecError::OperatorPanic { message, round, .. } => {
                assert_eq!(message, "bad task 250");
                assert_eq!(round, 0, "speculative runs have no rounds");
            }
            other => panic!("expected OperatorPanic, got {other:?}"),
        }
        assert_eq!(committed.load(Ordering::Relaxed), 499);
        assert!(marks.all_unowned(), "quarantine must not leak marks");
    }

    #[test]
    fn livelock_operator_trips_the_stall_watchdog() {
        // An operator that always reports a conflict can never commit: the
        // classic retry loop spins forever. The watchdog must turn that
        // into ExecError::Stalled instead of a hang.
        let marks = MarkTable::new(1);
        let op = |_t: &u64, _ctx: &mut Ctx<'_, u64>| -> OpResult { Err(crate::Abort::Conflict) };
        let err = Executor::new()
            .threads(2)
            .schedule(Schedule::Speculative)
            .max_stalled_rounds(64)
            .iterate((0..8u64).collect())
            .try_run(&marks, &op)
            .expect_err("livelock must be detected");
        match err {
            crate::ExecError::Stalled { rounds } => assert!(rounds >= 64),
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn systemic_panics_overflow_the_quarantine() {
        // Every task panics: once more than QUARANTINE_CAP attempts have
        // been quarantined the run halts with the overflow verdict rather
        // than grinding through the rest.
        let marks = MarkTable::new(1);
        let op = |_t: &u64, _ctx: &mut Ctx<'_, u64>| -> OpResult { panic!("all bad") };
        let err = Executor::new()
            .threads(4)
            .schedule(Schedule::Speculative)
            .iterate((0..(2 * crate::QUARANTINE_CAP)).collect())
            .try_run(&marks, &op)
            .expect_err("systemic fault");
        assert!(
            matches!(err, crate::ExecError::QuarantineOverflow { .. }),
            "expected QuarantineOverflow, got {err:?}"
        );
    }

    #[test]
    fn chaos_panic_injection_faults_and_still_terminates() {
        // Spec mode makes no canonicity promise about the fault report, but
        // injected panics must still quarantine-and-drain, never deadlock.
        let marks = MarkTable::new(7);
        let committed = AtomicU64::new(0);
        let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
            ctx.acquire((*t % 7) as u32)?;
            ctx.failsafe()?;
            committed.fetch_add(1, Ordering::Relaxed);
            Ok(())
        };
        let result = Executor::new()
            .threads(2)
            .schedule(Schedule::Speculative)
            .chaos_panics(9)
            .iterate((0..2000u64).collect())
            .try_run(&marks, &op);
        match result {
            Err(crate::ExecError::OperatorPanic { message, .. }) => {
                assert!(message.starts_with(crate::INJECTED_PANIC_PREFIX));
                // Quarantined attempts are consumed; everything else commits.
                assert!(committed.load(Ordering::Relaxed) < 2000);
            }
            Err(other) => panic!("expected OperatorPanic, got {other:?}"),
            Ok(_) => panic!("a 2000-task run at 1/64 panic odds should fault"),
        }
        assert!(marks.all_unowned());
    }

    #[test]
    fn trace_recording_produces_async_trace() {
        let marks = MarkTable::new(1);
        let op = |_t: &u64, _ctx: &mut Ctx<'_, u64>| -> OpResult { Ok(()) };
        let report = Executor::new()
            .threads(1)
            .schedule(Schedule::Speculative)
            .record_trace(true)
            .iterate((0..50u64).collect())
            .run(&marks, &op);
        match report.trace {
            Some(galois_runtime::simtime::ExecTrace::Async {
                task_ns,
                overhead_ns,
            }) => {
                assert_eq!(task_ns.len(), 50);
                assert!(overhead_ns >= 0.0);
            }
            other => panic!("expected async trace, got {other:?}"),
        }
    }
}
