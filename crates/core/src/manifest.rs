//! Run manifests: record a deterministic run once, replay it anywhere.
//!
//! Determinism makes a run a pure function of `(program, input, executor
//! configuration)` — none of which is the thread count. A [`RunManifest`]
//! captures that function's identity plus its *expected answer*: the
//! canonical per-round hash chain and the final run fingerprint (both from
//! [`galois_runtime::fingerprint`]). Replaying the manifest on any machine,
//! at any thread count, must reproduce every hash bit for bit; the first
//! mismatch is reported as a structured [`ReplayDivergence`] naming the
//! exact round. This is the record/replay + lockstep-replication design of
//! Aviram & Ford ("Efficient System-Enforced Deterministic Parallelism"):
//! deterministic execution turns replica fault detection into hash compare.
//!
//! The pieces:
//!
//! - [`ExecConfig`] — the serializable snapshot of an [`Executor`]. Note
//!   what is *not* here: the adaptive window constants. They are fixed by
//!   design (the paper's "parameterless" claim), so a manifest never has to
//!   carry tuning state to be portable.
//! - [`ManifestRecorder`] — a [`Probe`] attached via [`LoopSpec::record`]
//!   that folds every round into a [`RoundChain`] and snapshots the
//!   executor configuration. In *replay* mode it carries the expected
//!   hashes instead and flags the first divergent round as it streams past.
//! - [`RunManifest`] — the on-disk artifact: versioned, checksummed,
//!   hand-rolled JSON (this tree builds with no registry access, so there
//!   is no serde; the format is a strict fixed-order flat object that the
//!   parser rejects on any corruption).
//!
//! [`LoopSpec::record`]: crate::LoopSpec::record
//! [`Executor`]: crate::Executor
//! [`LoopSpec`]: crate::LoopSpec

use crate::executor::{Executor, Schedule, WorklistPolicy};
use crate::window::WindowPolicy;
use crate::DetOptions;
use galois_runtime::fingerprint::{run_fingerprint, Fnv64, RoundChain};
use galois_runtime::probe::{Probe, RoundRecord};
use galois_runtime::stats::ExecStats;
use std::fmt;
use std::path::Path;

/// Manifest format version this build writes and accepts.
pub const MANIFEST_VERSION: u64 = 1;

/// The scheduler selected by a recorded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Single-threaded reference execution.
    Serial,
    /// The non-deterministic speculative scheduler.
    Speculative,
    /// The deterministic DIG scheduler — the only kind worth replaying.
    Deterministic,
}

impl ScheduleKind {
    fn name(self) -> &'static str {
        match self {
            ScheduleKind::Serial => "serial",
            ScheduleKind::Speculative => "speculative",
            ScheduleKind::Deterministic => "deterministic",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "serial" => Some(ScheduleKind::Serial),
            "speculative" => Some(ScheduleKind::Speculative),
            "deterministic" => Some(ScheduleKind::Deterministic),
            _ => None,
        }
    }
}

/// Serializable snapshot of an [`Executor`]: everything a replica needs to
/// re-create the run's schedule-relevant configuration.
///
/// The thread count is recorded for provenance but is explicitly **not**
/// schedule-relevant under deterministic execution — replay overrides it
/// freely (that is the portability claim being verified). The adaptive
/// window policy is not recorded: it is parameterless by design, so every
/// build agrees on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads the recorded run used (informational; replay may
    /// override).
    pub threads: usize,
    /// Which scheduler ran.
    pub schedule: ScheduleKind,
    /// Deterministic option: continuation optimization (§3.3).
    pub continuation: bool,
    /// Deterministic option: locality spreading factor (§3.3).
    pub locality_spread: usize,
    /// Speculative worklist order (recorded for fidelity; ignored by the
    /// deterministic scheduler).
    pub worklist: WorklistPolicy,
    /// Chaos seed, when the recorded run had a chaos policy installed.
    pub chaos_seed: Option<u64>,
    /// Whether the chaos policy had panic injection armed.
    pub chaos_panics: bool,
    /// Stall-watchdog threshold in rounds.
    pub max_stalled_rounds: u64,
}

impl ExecConfig {
    /// Snapshots `exec`'s schedule-relevant configuration.
    pub fn from_executor(exec: &Executor) -> Self {
        let (schedule, continuation, locality_spread) = match &exec.schedule {
            Schedule::Serial => (ScheduleKind::Serial, true, 1),
            Schedule::Speculative => (ScheduleKind::Speculative, true, 1),
            Schedule::Deterministic(opts) => (
                ScheduleKind::Deterministic,
                opts.continuation,
                opts.locality_spread,
            ),
        };
        ExecConfig {
            threads: exec.threads,
            schedule,
            continuation,
            locality_spread,
            worklist: exec.worklist,
            chaos_seed: exec.chaos.as_ref().map(|c| c.seed()),
            chaos_panics: exec.chaos.as_ref().is_some_and(|c| c.panics_enabled()),
            max_stalled_rounds: exec.max_stalled_rounds,
        }
    }

    /// Rebuilds an [`Executor`] from this snapshot, with `threads`
    /// overriding the recorded thread count (pass the recorded
    /// [`ExecConfig::threads`] to reproduce it exactly).
    pub fn to_executor(&self, threads: usize) -> Executor {
        let schedule = match self.schedule {
            ScheduleKind::Serial => Schedule::Serial,
            ScheduleKind::Speculative => Schedule::Speculative,
            ScheduleKind::Deterministic => Schedule::Deterministic(DetOptions {
                continuation: self.continuation,
                locality_spread: self.locality_spread,
                window: WindowPolicy::default(),
            }),
        };
        let mut exec = Executor::new()
            .threads(threads)
            .schedule(schedule)
            .worklist(self.worklist)
            .max_stalled_rounds(self.max_stalled_rounds);
        if let Some(seed) = self.chaos_seed {
            exec = if self.chaos_panics {
                exec.chaos_panics(seed)
            } else {
                exec.chaos(seed)
            };
        }
        exec
    }
}

/// A replayed round hashed differently than the manifest promised.
///
/// `round` is the chain sequence index (monotone across multi-pass runs);
/// `expected` is the manifest's prefix hash for that round, `actual` the
/// replay's. A `0` on either side means that side had no such round at all
/// (the runs disagreed on round *count* after agreeing on every common
/// round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// First divergent round (chain sequence index).
    pub round: u64,
    /// The recorded prefix hash (0 = the recording ended before this round).
    pub expected: u64,
    /// The replayed prefix hash (0 = the replay ended before this round).
    pub actual: u64,
}

impl fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay diverged at round {}: expected {:016x}, got {:016x}",
            self.round, self.expected, self.actual
        )
    }
}

impl std::error::Error for ReplayDivergence {}

/// Why a manifest file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The file is not the strict fixed-order JSON this build writes.
    Parse(String),
    /// The file's format version is not [`MANIFEST_VERSION`].
    Version(u64),
    /// The body bytes do not hash to the trailing checksum: corruption.
    Checksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum of the file's actual body bytes.
        actual: u64,
    },
    /// The file could not be read or written.
    Io(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Parse(msg) => write!(f, "manifest parse error: {msg}"),
            ManifestError::Version(v) => write!(
                f,
                "manifest version {v} is not supported (this build reads version {MANIFEST_VERSION})"
            ),
            ManifestError::Checksum { stored, actual } => write!(
                f,
                "manifest checksum mismatch: stored {stored:016x}, body hashes to {actual:016x} \
                 (corrupt file)"
            ),
            ManifestError::Io(msg) => write!(f, "manifest I/O error: {msg}"),
        }
    }
}

impl std::error::Error for ManifestError {}

/// A recorded deterministic run: identity, configuration, and the expected
/// canonical hashes. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u64,
    /// Application name (e.g. `"bfs"`).
    pub app: String,
    /// Input identity key (generator + parameters + seed), e.g.
    /// `"uniform-n2000-d5-s42"` — the same key the input cache uses.
    pub input_key: String,
    /// Input generator seed.
    pub input_seed: u64,
    /// Input size parameter (0 = the app's default corpus size).
    pub size: u64,
    /// Executor configuration of the recorded run.
    pub exec: ExecConfig,
    /// Canonical per-round prefix hashes (the [`RoundChain`] snapshots).
    pub round_hashes: Vec<u64>,
    /// The final run fingerprint
    /// ([`galois_runtime::fingerprint::run_fingerprint`]).
    pub final_fingerprint: u64,
}

impl RunManifest {
    /// Serializes to the versioned, checksummed single-line JSON format.
    pub fn to_json(&self) -> String {
        let chaos = match self.exec.chaos_seed {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        let hashes: Vec<String> = self
            .round_hashes
            .iter()
            .map(|h| format!("\"{h:016x}\""))
            .collect();
        let body = format!(
            "{{\"version\":{},\"app\":\"{}\",\"input_key\":\"{}\",\"input_seed\":{},\
             \"size\":{},\"threads\":{},\"schedule\":\"{}\",\"continuation\":{},\
             \"locality_spread\":{},\"worklist\":\"{}\",\"chaos_seed\":{},\
             \"chaos_panics\":{},\"max_stalled_rounds\":{},\"round_hashes\":[{}],\
             \"final_fingerprint\":\"{:016x}\"}}",
            self.version,
            self.app,
            self.input_key,
            self.input_seed,
            self.size,
            self.exec.threads,
            self.exec.schedule.name(),
            self.exec.continuation,
            self.exec.locality_spread,
            match self.exec.worklist {
                WorklistPolicy::Lifo => "lifo",
                WorklistPolicy::Fifo => "fifo",
            },
            chaos,
            self.exec.chaos_panics,
            self.exec.max_stalled_rounds,
            hashes.join(","),
            self.final_fingerprint,
        );
        let mut h = Fnv64::new();
        h.write_bytes(body.as_bytes());
        format!(
            "{},\"checksum\":\"{:016x}\"}}\n",
            &body[..body.len() - 1],
            h.finish()
        )
    }

    /// Parses the format written by [`RunManifest::to_json`], rejecting
    /// version mismatches and any corruption (checksum failure, truncation,
    /// unknown or reordered fields).
    pub fn from_json(text: &str) -> Result<RunManifest, ManifestError> {
        let text = text.trim_end();
        // Split off and verify the trailing checksum before believing any
        // field: the body is everything before `,"checksum":...` plus the
        // closing brace it displaced.
        let marker = ",\"checksum\":\"";
        let at = text
            .rfind(marker)
            .ok_or_else(|| ManifestError::Parse("missing checksum field".into()))?;
        let tail = &text[at + marker.len()..];
        let stored = tail
            .strip_suffix("\"}")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| ManifestError::Parse("malformed checksum field".into()))?;
        let body = format!("{}}}", &text[..at]);
        let mut h = Fnv64::new();
        h.write_bytes(body.as_bytes());
        let actual = h.finish();
        if actual != stored {
            return Err(ManifestError::Checksum { stored, actual });
        }

        let mut p = Parser::new(&body);
        p.expect("{")?;
        let version = p.key_u64("version")?;
        if version != MANIFEST_VERSION {
            return Err(ManifestError::Version(version));
        }
        p.expect(",")?;
        let app = p.key_string("app")?;
        p.expect(",")?;
        let input_key = p.key_string("input_key")?;
        p.expect(",")?;
        let input_seed = p.key_u64("input_seed")?;
        p.expect(",")?;
        let size = p.key_u64("size")?;
        p.expect(",")?;
        let threads = p.key_u64("threads")? as usize;
        p.expect(",")?;
        let schedule = ScheduleKind::from_name(&p.key_string("schedule")?)
            .ok_or_else(|| ManifestError::Parse("unknown schedule kind".into()))?;
        p.expect(",")?;
        let continuation = p.key_bool("continuation")?;
        p.expect(",")?;
        let locality_spread = p.key_u64("locality_spread")? as usize;
        p.expect(",")?;
        let worklist = match p.key_string("worklist")?.as_str() {
            "lifo" => WorklistPolicy::Lifo,
            "fifo" => WorklistPolicy::Fifo,
            _ => return Err(ManifestError::Parse("unknown worklist policy".into())),
        };
        p.expect(",")?;
        let chaos_seed = p.key_u64_or_null("chaos_seed")?;
        p.expect(",")?;
        let chaos_panics = p.key_bool("chaos_panics")?;
        p.expect(",")?;
        let max_stalled_rounds = p.key_u64("max_stalled_rounds")?;
        p.expect(",")?;
        let round_hashes = p.key_hex_array("round_hashes")?;
        p.expect(",")?;
        let final_fingerprint = p.key_hex("final_fingerprint")?;
        p.expect("}")?;
        p.end()?;

        Ok(RunManifest {
            version,
            app,
            input_key,
            input_seed,
            size,
            exec: ExecConfig {
                threads,
                schedule,
                continuation,
                locality_spread,
                worklist,
                chaos_seed,
                chaos_panics,
                max_stalled_rounds,
            },
            round_hashes,
            final_fingerprint,
        })
    }

    /// Writes the manifest to `path`.
    pub fn save(&self, path: &Path) -> Result<(), ManifestError> {
        std::fs::write(path, self.to_json())
            .map_err(|e| ManifestError::Io(format!("{}: {e}", path.display())))
    }

    /// Loads and validates a manifest from `path`.
    pub fn load(path: &Path) -> Result<RunManifest, ManifestError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ManifestError::Io(format!("{}: {e}", path.display())))?;
        RunManifest::from_json(&text)
    }

    /// Compares a replay's hash chain against this manifest's, returning
    /// the first divergent round (`Err`) or `Ok` when every prefix hash and
    /// the round count agree.
    pub fn verify_chain(&self, actual: &[u64]) -> Result<(), ReplayDivergence> {
        for (i, (&e, &a)) in self.round_hashes.iter().zip(actual).enumerate() {
            if e != a {
                return Err(ReplayDivergence {
                    round: i as u64,
                    expected: e,
                    actual: a,
                });
            }
        }
        if self.round_hashes.len() != actual.len() {
            let round = self.round_hashes.len().min(actual.len()) as u64;
            return Err(ReplayDivergence {
                round,
                expected: self.round_hashes.get(round as usize).copied().unwrap_or(0),
                actual: actual.get(round as usize).copied().unwrap_or(0),
            });
        }
        Ok(())
    }
}

/// Strict cursor parser for the flat fixed-order JSON object the manifest
/// format uses. Any deviation — reordered keys, unknown fields, trailing
/// garbage — is a [`ManifestError::Parse`].
struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { text, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn expect(&mut self, token: &str) -> Result<(), ManifestError> {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(ManifestError::Parse(format!(
                "expected `{token}` at byte {}",
                self.pos
            )))
        }
    }

    fn key(&mut self, name: &str) -> Result<(), ManifestError> {
        self.expect(&format!("\"{name}\":"))
    }

    /// Consumes characters while `f` holds, returning the span.
    fn take_while(&mut self, f: impl Fn(char) -> bool) -> &'a str {
        let rest = self.rest();
        let len = rest.find(|c| !f(c)).unwrap_or(rest.len());
        self.pos += len;
        &rest[..len]
    }

    fn u64_value(&mut self) -> Result<u64, ManifestError> {
        let span = self.take_while(|c| c.is_ascii_digit());
        span.parse()
            .map_err(|_| ManifestError::Parse(format!("expected integer at byte {}", self.pos)))
    }

    fn key_u64(&mut self, name: &str) -> Result<u64, ManifestError> {
        self.key(name)?;
        self.u64_value()
    }

    fn key_u64_or_null(&mut self, name: &str) -> Result<Option<u64>, ManifestError> {
        self.key(name)?;
        if self.rest().starts_with("null") {
            self.pos += 4;
            Ok(None)
        } else {
            self.u64_value().map(Some)
        }
    }

    fn key_bool(&mut self, name: &str) -> Result<bool, ManifestError> {
        self.key(name)?;
        if self.rest().starts_with("true") {
            self.pos += 4;
            Ok(true)
        } else if self.rest().starts_with("false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(ManifestError::Parse(format!(
                "expected boolean at byte {}",
                self.pos
            )))
        }
    }

    fn string_value(&mut self) -> Result<String, ManifestError> {
        self.expect("\"")?;
        // Manifest strings are app names and input keys: no escapes.
        let s = self.take_while(|c| c != '"' && c != '\\');
        let s = s.to_string();
        self.expect("\"")?;
        Ok(s)
    }

    fn key_string(&mut self, name: &str) -> Result<String, ManifestError> {
        self.key(name)?;
        self.string_value()
    }

    fn hex_value(&mut self) -> Result<u64, ManifestError> {
        self.expect("\"")?;
        let span = self.take_while(|c| c.is_ascii_hexdigit());
        let v = u64::from_str_radix(span, 16)
            .map_err(|_| ManifestError::Parse(format!("expected hex hash at byte {}", self.pos)))?;
        self.expect("\"")?;
        Ok(v)
    }

    fn key_hex(&mut self, name: &str) -> Result<u64, ManifestError> {
        self.key(name)?;
        self.hex_value()
    }

    fn key_hex_array(&mut self, name: &str) -> Result<Vec<u64>, ManifestError> {
        self.key(name)?;
        self.expect("[")?;
        let mut out = Vec::new();
        if self.rest().starts_with(']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.hex_value()?);
            if self.rest().starts_with(',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect("]")?;
        Ok(out)
    }

    fn key_u64_array(&mut self, name: &str) -> Result<Vec<u64>, ManifestError> {
        self.key(name)?;
        self.expect("[")?;
        let mut out = Vec::new();
        if self.rest().starts_with(']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.u64_value()?);
            if self.rest().starts_with(',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect("]")?;
        Ok(out)
    }

    fn end(&mut self) -> Result<(), ManifestError> {
        if self.rest().is_empty() {
            Ok(())
        } else {
            Err(ManifestError::Parse(format!(
                "trailing bytes after manifest object at byte {}",
                self.pos
            )))
        }
    }
}

/// A [`Probe`] that records (or verifies) a run's canonical hash chain and
/// executor configuration. Attach with [`LoopSpec::record`]; multi-pass
/// runs (pfp bouts) reuse one recorder across every pass, chaining the
/// rounds into one monotone sequence.
///
/// Two modes:
///
/// - **Record** ([`ManifestRecorder::new`]): accumulate hashes, then
///   [`finish`](Self::finish) into a [`RunManifest`].
/// - **Replay** ([`ManifestRecorder::replaying`]): carry the expected chain
///   and flag the first divergent round *as it streams past* (fail fast);
///   [`verify`](Self::verify) renders the verdict.
///
/// The recorder asks for no conflict attribution and no timing
/// ([`Probe::wants_conflicts`]/[`Probe::wants_timing`] are `false`), so
/// recording adds no observable cost beyond the round-record fan-out.
///
/// [`LoopSpec::record`]: crate::LoopSpec::record
pub struct ManifestRecorder {
    exec: Option<ExecConfig>,
    chain: RoundChain,
    committed: u64,
    aborted: u64,
    expected: Option<Vec<u64>>,
    divergence: Option<ReplayDivergence>,
    on_round_hash: Option<Box<dyn FnMut(u64, u64) + Send>>,
}

impl fmt::Debug for ManifestRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ManifestRecorder")
            .field("rounds", &self.chain.rounds())
            .field("replay", &self.expected.is_some())
            .field("divergence", &self.divergence)
            .finish()
    }
}

impl Default for ManifestRecorder {
    fn default() -> Self {
        ManifestRecorder {
            exec: None,
            chain: RoundChain::new(),
            committed: 0,
            aborted: 0,
            expected: None,
            divergence: None,
            on_round_hash: None,
        }
    }
}

impl ManifestRecorder {
    /// A recorder in record mode.
    pub fn new() -> Self {
        ManifestRecorder::default()
    }

    /// A recorder in replay mode, verifying against `manifest`'s chain.
    pub fn replaying(manifest: &RunManifest) -> Self {
        ManifestRecorder {
            expected: Some(manifest.round_hashes.clone()),
            ..ManifestRecorder::default()
        }
    }

    /// Installs a hook called with `(sequence index, prefix hash)` for
    /// every round — the lockstep replication cross-check seam.
    pub fn on_round_hash(mut self, hook: impl FnMut(u64, u64) + Send + 'static) -> Self {
        self.on_round_hash = Some(Box::new(hook));
        self
    }

    /// Whether this recorder verifies a replay (vs. records a fresh run).
    pub fn is_replay(&self) -> bool {
        self.expected.is_some()
    }

    /// Snapshots the executor configuration. Called by
    /// [`LoopSpec::record`](crate::LoopSpec::record); the first pass of a
    /// multi-pass run wins (every pass runs the same executor).
    pub fn capture(&mut self, exec: &Executor) {
        if self.exec.is_none() {
            self.exec = Some(ExecConfig::from_executor(exec));
        }
    }

    /// The canonical per-round prefix hashes accumulated so far.
    pub fn round_hashes(&self) -> &[u64] {
        self.chain.hashes()
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> u64 {
        self.chain.rounds()
    }

    /// The first divergence flagged while streaming (replay mode only).
    pub fn divergence(&self) -> Option<ReplayDivergence> {
        self.divergence
    }

    /// The final run fingerprint for output hash `output_hash`, folding the
    /// chain and the accumulated commit/abort counters.
    pub fn fingerprint(&self, output_hash: u64) -> u64 {
        run_fingerprint(
            output_hash,
            self.chain.log_hash(),
            self.chain.rounds(),
            self.committed,
            self.aborted,
        )
    }

    /// Finishes a **record**-mode run into a manifest.
    ///
    /// `app`, `input_key`, `input_seed` and `size` identify the run;
    /// `output_hash` is the application-level output hash (the manifest's
    /// final fingerprint folds it in).
    ///
    /// # Panics
    ///
    /// Panics if no run was recorded (no [`capture`](Self::capture) call).
    pub fn finish(
        self,
        app: &str,
        input_key: &str,
        input_seed: u64,
        size: u64,
        output_hash: u64,
    ) -> RunManifest {
        let final_fingerprint = self.fingerprint(output_hash);
        RunManifest {
            version: MANIFEST_VERSION,
            app: app.to_string(),
            input_key: input_key.to_string(),
            input_seed,
            size,
            exec: self.exec.expect("no run recorded: capture() never ran"),
            round_hashes: self.chain.into_hashes(),
            final_fingerprint,
        }
    }

    /// Renders a **replay**-mode verdict against `manifest`: the streamed
    /// chain must match every recorded prefix hash, agree on the round
    /// count, and reproduce the final fingerprint given `output_hash`.
    pub fn verify(&self, manifest: &RunManifest, output_hash: u64) -> Result<(), ReplayDivergence> {
        if let Some(d) = self.divergence {
            return Err(d);
        }
        manifest.verify_chain(self.chain.hashes())?;
        let actual = self.fingerprint(output_hash);
        if actual != manifest.final_fingerprint {
            // Every round hash agreed but the folded fingerprint did not:
            // the output (or a counter) diverged after the last barrier.
            return Err(ReplayDivergence {
                round: self.chain.rounds(),
                expected: manifest.final_fingerprint,
                actual,
            });
        }
        Ok(())
    }
}

impl Probe for ManifestRecorder {
    fn wants_conflicts(&self) -> bool {
        false
    }

    fn wants_timing(&self) -> bool {
        false
    }

    fn conflict_top_k(&self) -> usize {
        0
    }

    fn on_round(&mut self, record: RoundRecord) {
        let seq = self.chain.rounds();
        let hash = self.chain.push(&record);
        if self.divergence.is_none() {
            if let Some(expected) = &self.expected {
                let want = expected.get(seq as usize).copied().unwrap_or(0);
                if want != hash {
                    self.divergence = Some(ReplayDivergence {
                        round: seq,
                        expected: want,
                        actual: hash,
                    });
                }
            }
        }
        if let Some(hook) = &mut self.on_round_hash {
            hook(seq, hash);
        }
    }

    fn on_finish(&mut self, stats: &ExecStats) {
        // Multi-pass runs finish once per pass; counters accumulate.
        self.committed += stats.committed;
        self.aborted += stats.aborted;
    }
}

/// Lockstep report format version this build writes and accepts.
pub const LOCKSTEP_REPORT_VERSION: u64 = 1;

/// How a distributed lockstep run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockstepOutcome {
    /// Every surviving replica reproduced the reference chain and agreed on
    /// the final fingerprint.
    Agreed,
    /// At least one replica diverged and was evicted, but a quorum of
    /// survivors matching the reference chain completed the run.
    Diverged,
    /// The coordinator refused to emit a result: quorum was lost, or a
    /// majority of replicas contradicted the recorded reference chain.
    NoQuorum,
}

impl LockstepOutcome {
    /// The stable wire/report spelling of this outcome.
    pub fn name(self) -> &'static str {
        match self {
            LockstepOutcome::Agreed => "agreed",
            LockstepOutcome::Diverged => "diverged",
            LockstepOutcome::NoQuorum => "no_quorum",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "agreed" => Some(LockstepOutcome::Agreed),
            "diverged" => Some(LockstepOutcome::Diverged),
            "no_quorum" => Some(LockstepOutcome::NoQuorum),
            _ => None,
        }
    }
}

/// What a [`LockstepEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockstepEventKind {
    /// A replica's prefix hash contradicted the settled majority chain.
    Divergence,
    /// A minority replica was removed from the vote after diverging.
    Eviction,
    /// A replica's connection dropped (process death, socket close).
    Death,
    /// A replica went silent past the coordinator's timeout.
    Timeout,
    /// A replica reported a structured execution fault instead of finishing.
    Fault,
    /// The coordinator refused to settle: no trustworthy majority remained.
    Refusal,
}

impl LockstepEventKind {
    /// The stable wire/report spelling of this event kind.
    pub fn name(self) -> &'static str {
        match self {
            LockstepEventKind::Divergence => "divergence",
            LockstepEventKind::Eviction => "eviction",
            LockstepEventKind::Death => "death",
            LockstepEventKind::Timeout => "timeout",
            LockstepEventKind::Fault => "fault",
            LockstepEventKind::Refusal => "refusal",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "divergence" => Some(LockstepEventKind::Divergence),
            "eviction" => Some(LockstepEventKind::Eviction),
            "death" => Some(LockstepEventKind::Death),
            "timeout" => Some(LockstepEventKind::Timeout),
            "fault" => Some(LockstepEventKind::Fault),
            "refusal" => Some(LockstepEventKind::Refusal),
            _ => None,
        }
    }
}

/// One structured entry in a lockstep run's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockstepEvent {
    /// Chain sequence index the event is anchored to (0 when the event is
    /// not about a specific round, e.g. a pre-run death).
    pub round: u64,
    /// Replica the event concerns; `None` for coordinator-level events.
    pub replica: Option<u64>,
    /// Event classification.
    pub kind: LockstepEventKind,
    /// Reference prefix hash at `round` (0 when not applicable).
    pub expected: u64,
    /// The offending replica's prefix hash (0 when not applicable).
    pub actual: u64,
    /// Human-readable detail. Serialized without escapes, so
    /// [`LockstepReport::to_json`] sanitizes quotes, backslashes and
    /// control bytes to spaces.
    pub detail: String,
}

fn sanitize_detail(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c == '"' || c == '\\' || (c as u32) < 0x20 {
                ' '
            } else {
                c
            }
        })
        .collect()
}

/// The coordinator's structured account of one distributed lockstep run:
/// identity, quorum geometry, the event log (divergences, evictions,
/// deaths), and the agreed result hashes. Same on-disk discipline as
/// [`RunManifest`]: versioned, checksummed, fixed-order single-line JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockstepReport {
    /// Format version ([`LOCKSTEP_REPORT_VERSION`]).
    pub version: u64,
    /// Application name of the replicated run.
    pub app: String,
    /// Input identity key of the replicated run.
    pub input_key: String,
    /// Replicas that joined at the start.
    pub replicas: u64,
    /// Round-count comparison window (coordinator buffer bound).
    pub window: u64,
    /// Rounds settled against the reference chain.
    pub rounds: u64,
    /// How the run ended.
    pub outcome: LockstepOutcome,
    /// Replica ids still in the vote at the end.
    pub survivors: Vec<u64>,
    /// High-water mark of any replica's buffered (unsettled) hash count —
    /// bounded by `window` by construction.
    pub max_buffered: u64,
    /// Agreed application output hash (0 when the run was refused).
    pub output_hash: u64,
    /// Agreed final run fingerprint (0 when the run was refused).
    pub final_fingerprint: u64,
    /// Structured event log, in detection order.
    pub events: Vec<LockstepEvent>,
}

impl LockstepReport {
    /// Serializes to the versioned, checksummed single-line JSON format.
    pub fn to_json(&self) -> String {
        let survivors: Vec<String> = self.survivors.iter().map(|r| r.to_string()).collect();
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                let replica = match e.replica {
                    Some(r) => r.to_string(),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"round\":{},\"replica\":{},\"kind\":\"{}\",\"expected\":\"{:016x}\",\
                     \"actual\":\"{:016x}\",\"detail\":\"{}\"}}",
                    e.round,
                    replica,
                    e.kind.name(),
                    e.expected,
                    e.actual,
                    sanitize_detail(&e.detail),
                )
            })
            .collect();
        let body = format!(
            "{{\"version\":{},\"app\":\"{}\",\"input_key\":\"{}\",\"replicas\":{},\
             \"window\":{},\"rounds\":{},\"outcome\":\"{}\",\"survivors\":[{}],\
             \"max_buffered\":{},\"output_hash\":\"{:016x}\",\
             \"final_fingerprint\":\"{:016x}\",\"events\":[{}]}}",
            self.version,
            self.app,
            self.input_key,
            self.replicas,
            self.window,
            self.rounds,
            self.outcome.name(),
            survivors.join(","),
            self.max_buffered,
            self.output_hash,
            self.final_fingerprint,
            events.join(","),
        );
        let mut h = Fnv64::new();
        h.write_bytes(body.as_bytes());
        format!(
            "{},\"checksum\":\"{:016x}\"}}\n",
            &body[..body.len() - 1],
            h.finish()
        )
    }

    /// Parses the format written by [`LockstepReport::to_json`], rejecting
    /// version mismatches and any corruption.
    pub fn from_json(text: &str) -> Result<LockstepReport, ManifestError> {
        let text = text.trim_end();
        let marker = ",\"checksum\":\"";
        let at = text
            .rfind(marker)
            .ok_or_else(|| ManifestError::Parse("missing checksum field".into()))?;
        let tail = &text[at + marker.len()..];
        let stored = tail
            .strip_suffix("\"}")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| ManifestError::Parse("malformed checksum field".into()))?;
        let body = format!("{}}}", &text[..at]);
        let mut h = Fnv64::new();
        h.write_bytes(body.as_bytes());
        let actual = h.finish();
        if actual != stored {
            return Err(ManifestError::Checksum { stored, actual });
        }

        let mut p = Parser::new(&body);
        p.expect("{")?;
        let version = p.key_u64("version")?;
        if version != LOCKSTEP_REPORT_VERSION {
            return Err(ManifestError::Version(version));
        }
        p.expect(",")?;
        let app = p.key_string("app")?;
        p.expect(",")?;
        let input_key = p.key_string("input_key")?;
        p.expect(",")?;
        let replicas = p.key_u64("replicas")?;
        p.expect(",")?;
        let window = p.key_u64("window")?;
        p.expect(",")?;
        let rounds = p.key_u64("rounds")?;
        p.expect(",")?;
        let outcome = LockstepOutcome::from_name(&p.key_string("outcome")?)
            .ok_or_else(|| ManifestError::Parse("unknown lockstep outcome".into()))?;
        p.expect(",")?;
        let survivors = p.key_u64_array("survivors")?;
        p.expect(",")?;
        let max_buffered = p.key_u64("max_buffered")?;
        p.expect(",")?;
        let output_hash = p.key_hex("output_hash")?;
        p.expect(",")?;
        let final_fingerprint = p.key_hex("final_fingerprint")?;
        p.expect(",")?;
        p.key("events")?;
        p.expect("[")?;
        let mut events = Vec::new();
        if p.rest().starts_with(']') {
            p.pos += 1;
        } else {
            loop {
                p.expect("{")?;
                let round = p.key_u64("round")?;
                p.expect(",")?;
                let replica = p.key_u64_or_null("replica")?;
                p.expect(",")?;
                let kind = LockstepEventKind::from_name(&p.key_string("kind")?)
                    .ok_or_else(|| ManifestError::Parse("unknown event kind".into()))?;
                p.expect(",")?;
                let expected = p.key_hex("expected")?;
                p.expect(",")?;
                let actual = p.key_hex("actual")?;
                p.expect(",")?;
                let detail = p.key_string("detail")?;
                p.expect("}")?;
                events.push(LockstepEvent {
                    round,
                    replica,
                    kind,
                    expected,
                    actual,
                    detail,
                });
                if p.rest().starts_with(',') {
                    p.pos += 1;
                } else {
                    break;
                }
            }
            p.expect("]")?;
        }
        p.expect("}")?;
        p.end()?;

        Ok(LockstepReport {
            version,
            app,
            input_key,
            replicas,
            window,
            rounds,
            outcome,
            survivors,
            max_buffered,
            output_hash,
            final_fingerprint,
            events,
        })
    }

    /// Writes the report to `path`.
    pub fn save(&self, path: &Path) -> Result<(), ManifestError> {
        std::fs::write(path, self.to_json())
            .map_err(|e| ManifestError::Io(format!("{}: {e}", path.display())))
    }

    /// Loads and validates a report from `path`.
    pub fn load(path: &Path) -> Result<LockstepReport, ManifestError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ManifestError::Io(format!("{}: {e}", path.display())))?;
        LockstepReport::from_json(&text)
    }

    /// Events of one kind, in detection order.
    pub fn events_of(&self, kind: LockstepEventKind) -> Vec<&LockstepEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> RunManifest {
        RunManifest {
            version: MANIFEST_VERSION,
            app: "bfs".into(),
            input_key: "uniform-n2000-d5-s42".into(),
            input_seed: 42,
            size: 0,
            exec: ExecConfig {
                threads: 2,
                schedule: ScheduleKind::Deterministic,
                continuation: true,
                locality_spread: 1,
                worklist: WorklistPolicy::Fifo,
                chaos_seed: None,
                chaos_panics: false,
                max_stalled_rounds: 4096,
            },
            round_hashes: vec![0xdead_beef, 0xcafe_f00d, 17],
            final_fingerprint: 0x0123_4567_89ab_cdef,
        }
    }

    #[test]
    fn json_round_trips() {
        let m = manifest();
        let text = m.to_json();
        assert!(text.ends_with("\"}\n"));
        let back = RunManifest::from_json(&text).unwrap();
        assert_eq!(back, m);
        // Chaos seed present round-trips too.
        let mut m2 = manifest();
        m2.exec.chaos_seed = Some(7);
        m2.exec.chaos_panics = true;
        assert_eq!(RunManifest::from_json(&m2.to_json()).unwrap(), m2);
        // Empty hash chain round-trips.
        let mut m3 = manifest();
        m3.round_hashes.clear();
        assert_eq!(RunManifest::from_json(&m3.to_json()).unwrap(), m3);
    }

    #[test]
    fn corruption_is_rejected() {
        let m = manifest();
        let text = m.to_json();

        // Single-byte flip in the body: checksum mismatch.
        let flipped = text.replacen("n2000", "n2001", 1);
        assert!(matches!(
            RunManifest::from_json(&flipped),
            Err(ManifestError::Checksum { .. })
        ));

        // Truncation: missing checksum marker entirely.
        let truncated = &text[..text.len() / 2];
        assert!(matches!(
            RunManifest::from_json(truncated),
            Err(ManifestError::Parse(_))
        ));

        // Tampered checksum digits: mismatch against the intact body.
        let at = text.rfind(":\"").unwrap() + 2;
        let mut tampered = text.clone();
        let old = tampered.as_bytes()[at];
        let new = if old == b'0' { b'1' } else { b'0' };
        unsafe { tampered.as_bytes_mut()[at] = new };
        assert!(matches!(
            RunManifest::from_json(&tampered),
            Err(ManifestError::Checksum { .. })
        ));

        // Garbage: parse error, not a panic.
        assert!(RunManifest::from_json("not json").is_err());
        assert!(RunManifest::from_json("").is_err());
    }

    #[test]
    fn version_mismatch_is_rejected_with_intact_checksum() {
        // Re-serialize with a bumped version and a *correct* checksum: the
        // rejection must be about the version, not the checksum.
        let mut m = manifest();
        m.version = MANIFEST_VERSION + 1;
        assert_eq!(
            RunManifest::from_json(&m.to_json()),
            Err(ManifestError::Version(MANIFEST_VERSION + 1))
        );
    }

    #[test]
    fn exec_config_round_trips_through_executor() {
        let exec = Executor::new()
            .threads(5)
            .schedule(Schedule::Deterministic(DetOptions {
                locality_spread: 16,
                ..Default::default()
            }))
            .worklist(WorklistPolicy::Fifo)
            .max_stalled_rounds(99)
            .chaos(1234);
        let cfg = ExecConfig::from_executor(&exec);
        assert_eq!(cfg.threads, 5);
        assert_eq!(cfg.schedule, ScheduleKind::Deterministic);
        assert_eq!(cfg.locality_spread, 16);
        assert_eq!(cfg.chaos_seed, Some(1234));
        assert!(!cfg.chaos_panics);
        // Rebuild at a different thread count: identical but for threads.
        let rebuilt = cfg.to_executor(8);
        assert_eq!(ExecConfig::from_executor(&rebuilt).threads, 8);
        assert_eq!(
            ExecConfig {
                threads: 5,
                ..ExecConfig::from_executor(&rebuilt)
            },
            cfg
        );
    }

    #[test]
    fn verify_chain_pinpoints_first_divergence() {
        let mut m = manifest();
        m.round_hashes = vec![10, 20, 30];
        assert!(m.verify_chain(&[10, 20, 30]).is_ok());
        assert_eq!(
            m.verify_chain(&[10, 99, 30]),
            Err(ReplayDivergence {
                round: 1,
                expected: 20,
                actual: 99
            })
        );
        // Count mismatch after an agreeing prefix.
        assert_eq!(
            m.verify_chain(&[10, 20]),
            Err(ReplayDivergence {
                round: 2,
                expected: 30,
                actual: 0
            })
        );
        assert_eq!(
            m.verify_chain(&[10, 20, 30, 40]),
            Err(ReplayDivergence {
                round: 3,
                expected: 0,
                actual: 40
            })
        );
    }

    #[test]
    fn recorder_streams_divergence_fail_fast() {
        let mut m = manifest();
        // Expected chain for rounds of (window=8, attempted=8, committed=8).
        let mut chain = RoundChain::new();
        let good = RoundRecord {
            window: 8,
            attempted: 8,
            committed: 8,
            ..Default::default()
        };
        m.round_hashes = vec![chain.push(&good), chain.push(&good)];

        let mut rec = ManifestRecorder::replaying(&m);
        assert!(rec.is_replay());
        rec.on_round(good.clone());
        assert!(rec.divergence().is_none());
        let bad = RoundRecord {
            window: 8,
            attempted: 8,
            committed: 7,
            failed: 1,
            ..Default::default()
        };
        rec.on_round(bad);
        let d = rec
            .divergence()
            .expect("divergence flagged while streaming");
        assert_eq!(d.round, 1);
        assert_eq!(d.expected, m.round_hashes[1]);
    }

    fn report() -> LockstepReport {
        LockstepReport {
            version: LOCKSTEP_REPORT_VERSION,
            app: "bfs".into(),
            input_key: "uniform-n2000-d5-s42".into(),
            replicas: 3,
            window: 64,
            rounds: 17,
            outcome: LockstepOutcome::Diverged,
            survivors: vec![0, 2],
            max_buffered: 5,
            output_hash: 0xfeed_face,
            final_fingerprint: 0x0123_4567_89ab_cdef,
            events: vec![
                LockstepEvent {
                    round: 9,
                    replica: Some(1),
                    kind: LockstepEventKind::Divergence,
                    expected: 0xaaaa,
                    actual: 0xbbbb,
                    detail: "replica 1 contradicted the reference at round 9".into(),
                },
                LockstepEvent {
                    round: 9,
                    replica: Some(1),
                    kind: LockstepEventKind::Eviction,
                    expected: 0,
                    actual: 0,
                    detail: "minority of 1 evicted".into(),
                },
            ],
        }
    }

    #[test]
    fn lockstep_report_round_trips() {
        let r = report();
        let text = r.to_json();
        assert!(text.ends_with("\"}\n"));
        assert_eq!(LockstepReport::from_json(&text).unwrap(), r);
        // Empty survivors/events and a null replica round-trip too.
        let mut r2 = report();
        r2.survivors.clear();
        r2.events = vec![LockstepEvent {
            round: 0,
            replica: None,
            kind: LockstepEventKind::Refusal,
            expected: 0,
            actual: 0,
            detail: "no strict majority".into(),
        }];
        r2.outcome = LockstepOutcome::NoQuorum;
        assert_eq!(LockstepReport::from_json(&r2.to_json()).unwrap(), r2);
    }

    #[test]
    fn lockstep_report_rejects_corruption_and_versions() {
        let r = report();
        let text = r.to_json();
        let flipped = text.replacen("\"replicas\":3", "\"replicas\":4", 1);
        assert!(matches!(
            LockstepReport::from_json(&flipped),
            Err(ManifestError::Checksum { .. })
        ));
        assert!(matches!(
            LockstepReport::from_json(&text[..text.len() / 2]),
            Err(ManifestError::Parse(_))
        ));
        let mut bumped = report();
        bumped.version = LOCKSTEP_REPORT_VERSION + 1;
        assert_eq!(
            LockstepReport::from_json(&bumped.to_json()),
            Err(ManifestError::Version(LOCKSTEP_REPORT_VERSION + 1))
        );
        assert!(LockstepReport::from_json("not json").is_err());
        assert!(LockstepReport::from_json("").is_err());
    }

    #[test]
    fn lockstep_detail_is_sanitized_to_stay_parseable() {
        let mut r = report();
        r.events[0].detail = "quote \" backslash \\ newline \n done".into();
        let back = LockstepReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.events[0].detail, "quote   backslash   newline   done");
    }

    #[test]
    fn recorder_hook_sees_every_round() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut rec = ManifestRecorder::new()
            .on_round_hash(move |seq, h| sink.lock().unwrap().push((seq, h)));
        let r = RoundRecord {
            window: 4,
            attempted: 4,
            committed: 4,
            ..Default::default()
        };
        rec.on_round(r.clone());
        rec.on_round(r);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[1].0, 1);
        assert_eq!(&[seen[0].1, seen[1].1], rec.round_hashes());
    }
}
