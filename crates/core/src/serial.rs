//! Serial reference executor.
//!
//! Executes the task pool on the calling thread in FIFO order, with no marks
//! and no conflicts. This is the semantic baseline: any correct parallel
//! schedule must be serializable to *some* such order (§2), and tests compare
//! parallel outputs against serial ones.

use crate::ctx::{Ctx, Mode};
use crate::executor::{Executor, RunReport};
use crate::marks::MarkTable;
use crate::ops::Operator;
use galois_runtime::simtime::ExecTrace;
use galois_runtime::stats::{ExecStats, ThreadStats};
use std::collections::VecDeque;
use std::time::Instant;

pub(crate) fn run<T, O>(cfg: &Executor, marks: &MarkTable, tasks: Vec<T>, op: &O) -> RunReport
where
    T: Send,
    O: Operator<T>,
{
    let start = Instant::now();
    let mut queue: VecDeque<T> = tasks.into();
    let mut stats = ThreadStats::default();
    let mut accesses = Vec::new();
    let mut neighborhood = Vec::new();
    let mut pushes = Vec::new();
    let mut stash = None;
    let mut total_ns = 0.0f64;

    while let Some(task) = queue.pop_front() {
        neighborhood.clear();
        pushes.clear();
        let task_start = cfg.record_trace.then(Instant::now);
        let mut ctx = Ctx {
            mode: Mode::Serial,
            mark_value: 1,
            tid: 0,
            marks,
            neighborhood: &mut neighborhood,
            pushes: &mut pushes,
            flags: None,
            stash: &mut stash,
            allow_stash: false,
            stats: &mut stats,
            recorder: cfg.record_access.then_some(&mut accesses),
            conflicts: None,
            past_failsafe: false,
            // The serial executor is the chaos-free oracle: never inject.
            inject_abort: false,
            inject_panic: None,
        };
        op.run(&task, &mut ctx)
            .expect("serial execution cannot abort");
        ctx.record_neighborhood_writes();
        if let Some(t0) = task_start {
            total_ns += t0.elapsed().as_nanos() as f64;
        }
        stats.committed += 1;
        queue.extend(pushes.drain(..));
    }

    let mut agg = ExecStats::from_threads([&stats]);
    agg.elapsed = start.elapsed();
    agg.threads = 1;
    RunReport {
        stats: agg,
        trace: cfg
            .record_trace
            .then_some(ExecTrace::Sequential { total_ns }),
        accesses: cfg.record_access.then(|| vec![accesses]),
        round_log: None,
        replay: false,
    }
}

#[cfg(test)]
mod tests {
    use crate::executor::{Executor, Schedule};
    use crate::marks::MarkTable;
    use crate::{Ctx, OpResult};
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn serial_runs_fifo_including_pushes() {
        // Each task < 3 pushes task*2+1 and task*2+2; record visit order.
        let order = std::sync::Mutex::new(Vec::new());
        let op = |t: &u32, ctx: &mut Ctx<'_, u32>| -> OpResult {
            ctx.failsafe()?;
            order.lock().unwrap().push(*t);
            if *t < 3 {
                ctx.push(*t * 2 + 1);
                ctx.push(*t * 2 + 2);
            }
            Ok(())
        };
        let marks = MarkTable::new(1);
        let report = Executor::new()
            .schedule(Schedule::Serial)
            .iterate(vec![0])
            .run(&marks, &op);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(report.stats.committed, 7);
        assert_eq!(report.stats.aborted, 0);
        assert_eq!(report.stats.atomic_updates, 0);
    }

    #[test]
    fn serial_trace_is_sequential() {
        let seen = AtomicU32::new(0);
        let op = |_t: &u32, _ctx: &mut Ctx<'_, u32>| -> OpResult {
            seen.fetch_add(1, Ordering::Relaxed);
            Ok(())
        };
        let marks = MarkTable::new(1);
        let report = Executor::new()
            .schedule(Schedule::Serial)
            .record_trace(true)
            .iterate(vec![1, 2, 3])
            .run(&marks, &op);
        match report.trace {
            Some(galois_runtime::simtime::ExecTrace::Sequential { total_ns }) => {
                assert!(total_ns >= 0.0);
            }
            other => panic!("expected sequential trace, got {other:?}"),
        }
        assert_eq!(seen.load(Ordering::Relaxed), 3);
    }
}
