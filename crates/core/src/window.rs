//! Adaptive window sizing (§3.2).
//!
//! "The performance of this scheduler depends critically on the window size,
//! so we implemented an adaptive algorithm that grows and shrinks the window
//! size each round depending on the number of tasks that successfully
//! committed in the previous round."
//!
//! The policy consumes only *committed-task counts* — never the thread count
//! or any timing — so the window sequence, and therefore the schedule and the
//! program output, are identical on every machine (**portability**) and there
//! is no user-facing knob whose value changes output (**parameter-freedom**;
//! the constants below are fixed parts of the algorithm).

/// Fixed constants of the adaptive policy.
///
/// These are deliberately not configurable at run time: per the paper's
/// parameter-freedom requirement, anything that changes the schedule is part
/// of the algorithm, not a tuning knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPolicy {
    /// Desired fraction of attempted tasks that commit per round.
    pub target_commit_ratio: f64,
    /// Window size floor.
    pub min_window: usize,
    /// Window size ceiling (bounds per-round memory).
    pub max_window: usize,
}

impl Default for WindowPolicy {
    fn default() -> Self {
        WindowPolicy {
            target_commit_ratio: 0.95,
            min_window: 16,
            max_window: 1 << 20,
        }
    }
}

/// Per-pass window state.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveWindow {
    policy: WindowPolicy,
    size: usize,
}

impl AdaptiveWindow {
    /// Initializes the window for a pass of `pass_size` tasks.
    ///
    /// The initial size is a fixed deterministic function of the pass size:
    /// a quarter of the pass, clamped to the policy bounds. Too-large initial
    /// windows self-correct within a round or two via `update`.
    pub fn for_pass(policy: WindowPolicy, pass_size: usize) -> Self {
        let initial = (pass_size / 4)
            .clamp(policy.min_window, policy.max_window)
            .max(1);
        AdaptiveWindow {
            policy,
            size: initial,
        }
    }

    /// Current window size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Adapts after a round in which `attempted` tasks were inspected and
    /// `committed` of them committed (Figure 2 `calculateWindow`).
    ///
    /// Commit ratio below target: shrink proportionally (next window sized so
    /// that, at the observed conflict density, roughly `target` of it
    /// commits). At or above target: double.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `committed > attempted`.
    pub fn update(&mut self, attempted: usize, committed: usize) {
        debug_assert!(committed <= attempted);
        if attempted == 0 {
            return;
        }
        let ratio = committed as f64 / attempted as f64;
        if ratio < self.policy.target_commit_ratio {
            let scaled = (committed as f64 / self.policy.target_commit_ratio).floor() as usize;
            self.size = scaled
                .clamp(self.policy.min_window, self.policy.max_window)
                .max(1);
        } else {
            self.size = (self.size * 2)
                .clamp(self.policy.min_window, self.policy.max_window)
                .max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(pass: usize) -> AdaptiveWindow {
        AdaptiveWindow::for_pass(WindowPolicy::default(), pass)
    }

    #[test]
    fn initial_size_scales_with_pass() {
        assert_eq!(window(0).size(), 16, "floor applies");
        assert_eq!(window(400).size(), 100);
        assert_eq!(window(1 << 24).size(), 1 << 20, "ceiling applies");
    }

    #[test]
    fn high_commit_ratio_doubles() {
        let mut w = window(400);
        let before = w.size();
        w.update(before, before); // 100% commit
        assert_eq!(w.size(), before * 2);
    }

    #[test]
    fn low_commit_ratio_shrinks_proportionally() {
        let mut w = window(40_000);
        let before = w.size();
        assert_eq!(before, 10_000);
        w.update(before, 1_000); // 10% commit, far below 95%
                                 // New window ≈ committed / target = 1052.
        assert!(w.size() < before / 8, "window {} should shrink", w.size());
        assert!(w.size() >= 1_000);
    }

    #[test]
    fn never_below_one() {
        let mut w = window(100);
        for _ in 0..20 {
            let s = w.size();
            w.update(s, 0); // nothing commits
        }
        assert!(w.size() >= 1);
        assert_eq!(w.size(), WindowPolicy::default().min_window);
    }

    #[test]
    fn update_sequence_is_deterministic() {
        // Same commit history ⇒ same window trajectory, regardless of when
        // or where it runs — the portability property.
        let drive = |history: &[(usize, usize)]| {
            let mut w = window(10_000);
            let mut sizes = vec![w.size()];
            for &(a, c) in history {
                w.update(a, c);
                sizes.push(w.size());
            }
            sizes
        };
        let h = [(2500usize, 2500usize), (5000, 400), (421, 421), (842, 800)];
        assert_eq!(drive(&h), drive(&h));
    }

    #[test]
    fn empty_round_is_ignored() {
        let mut w = window(1000);
        let s = w.size();
        w.update(0, 0);
        assert_eq!(w.size(), s);
    }
}
