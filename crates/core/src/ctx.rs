//! The operator context: how tasks interact with the runtime.
//!
//! A Galois operator is a *cautious* function over a task: it must read
//! (acquire) every abstract location in its neighborhood before writing any
//! of them (§2). The point between the last acquire and the first write is
//! the **failsafe point**. Operators express this protocol through [`Ctx`]:
//!
//! ```ignore
//! |task: &Node, ctx: &mut Ctx<'_, Node>| {
//!     ctx.acquire(lock_of(*task))?;           // neighborhood reads
//!     for n in neighbors(*task) { ctx.acquire(lock_of(n))?; }
//!     ctx.failsafe()?;                        // last acquire ... first write
//!     update(*task);                          // writes to acquired locations
//!     ctx.push(successor(*task));             // create new tasks
//!     Ok(())
//! }
//! ```
//!
//! The same operator runs under every scheduler; only the semantics of
//! `acquire`/`failsafe` change (Figure 1b vs Figures 2–3):
//!
//! | mode      | `acquire`                            | `failsafe`        |
//! |-----------|--------------------------------------|-------------------|
//! | serial    | no-op                                | `Ok`              |
//! | speculative | CAS mark; conflict ⇒ `Err`         | `Ok`              |
//! | inspect   | `writeMarkMax`; never fails          | `Err(Inspected)`  |
//! | commit    | verify mark (debug)                  | `Ok`              |

use crate::flags::AbortFlags;
use crate::marks::{LockId, MarkTable, UNOWNED};
use galois_runtime::stats::ThreadStats;
use std::any::Any;

/// Why an operator invocation stopped before completing.
///
/// Operators propagate this with `?`; they never construct it directly
/// except when returning early from helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// A neighborhood location is owned by another task (speculative mode).
    Conflict,
    /// The inspect phase reached the failsafe point; the neighborhood is now
    /// known and execution stops by design (deterministic mode).
    Inspected,
    /// A chaos policy forced a spurious abort at the failsafe point (test
    /// machinery; never produced without a
    /// [`ChaosPolicy`](galois_runtime::chaos::ChaosPolicy) installed).
    Injected,
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Abort::Conflict => write!(f, "task aborted: neighborhood conflict"),
            Abort::Inspected => write!(f, "task paused at failsafe point (inspect phase)"),
            Abort::Injected => write!(f, "task aborted: chaos-injected spurious abort"),
        }
    }
}

impl std::error::Error for Abort {}

/// Result type returned by operators.
pub type OpResult = Result<(), Abort>;

/// Execution mode of one operator invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    Serial,
    Speculative,
    Inspect,
    Commit,
}

/// One recorded abstract-memory access, for the locality study (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The abstract location.
    pub loc: u32,
    /// Whether this models a write (commit-time) or a read (acquire-time).
    pub write: bool,
}

/// The per-invocation context handed to operators.
///
/// `T` is the task type; pushes create new `T`s.
pub struct Ctx<'a, T> {
    pub(crate) mode: Mode,
    /// Mark value of this task: pass-local id + 1 (so 0 stays UNOWNED).
    pub(crate) mark_value: u64,
    pub(crate) tid: usize,
    pub(crate) marks: &'a MarkTable,
    pub(crate) neighborhood: &'a mut Vec<LockId>,
    pub(crate) pushes: &'a mut Vec<T>,
    /// Abort flags of the current deterministic round (inspect mode only).
    pub(crate) flags: Option<&'a AbortFlags>,
    /// Continuation storage (§3.3 first optimization).
    pub(crate) stash: &'a mut Option<Box<dyn Any + Send>>,
    /// Whether the continuation optimization is enabled; when disabled the
    /// commit phase re-executes the operator prefix (the baseline scheduler).
    pub(crate) allow_stash: bool,
    pub(crate) stats: &'a mut ThreadStats,
    pub(crate) recorder: Option<&'a mut Vec<Access>>,
    /// Collector of conflicting abstract locations for abort attribution
    /// (probe layer). `None` unless a probe requesting conflicts is attached,
    /// so the disabled path costs one branch on a plain pointer-sized field —
    /// no atomics.
    pub(crate) conflicts: Option<&'a mut Vec<u32>>,
    /// Set once `failsafe`/`checkpoint` has been crossed; used to detect
    /// operators that violate the cautious contract.
    pub(crate) past_failsafe: bool,
    /// Chaos hook: when set, the first `failsafe`/`checkpoint` crossing
    /// returns [`Abort::Injected`] instead of proceeding. By the cautious
    /// contract no shared state has been written at that point, so the forced
    /// abort is a free rollback — exactly like a real conflict, minus the
    /// conflict. Executors arm this per attempt from their
    /// [`ChaosPolicy`](galois_runtime::chaos::ChaosPolicy); it is never set
    /// in serial or inspect invocations (inspect must mark deterministically).
    pub(crate) inject_abort: bool,
    /// Chaos hook: when `Some(id)`, the first `failsafe`/`checkpoint`
    /// crossing *panics* with a canonical message naming `id`, exercising
    /// the fault-containment layer. By the cautious contract the panic
    /// happens before any shared write, so containment quarantines the task
    /// with a free rollback. In det mode `id` is the canonical task id, so
    /// the panic message is byte-identical at any thread count; never set
    /// in serial or inspect invocations.
    pub(crate) inject_panic: Option<u64>,
}

/// Prefix of every chaos-injected panic message (see
/// [`ChaosPolicy::with_panics`](galois_runtime::chaos::ChaosPolicy::with_panics)).
/// Harnesses use it to tell injected faults from genuine operator bugs.
pub const INJECTED_PANIC_PREFIX: &str = "chaos-injected operator panic: task ";

impl<T> std::fmt::Debug for Ctx<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("mode", &self.mode)
            .field("mark_value", &self.mark_value)
            .field("tid", &self.tid)
            .field("neighborhood_len", &self.neighborhood.len())
            .finish()
    }
}

impl<'a, T> Ctx<'a, T> {
    /// Acquires the abstract location `loc` into this task's neighborhood.
    ///
    /// Call once per location read or written; duplicate acquires are free.
    /// Must precede [`failsafe`](Self::failsafe).
    ///
    /// # Errors
    ///
    /// Returns [`Abort::Conflict`] in speculative mode when another task owns
    /// `loc`. Deterministic inspect never errors here: per §3.2, a task must
    /// attempt *all* its mark writes even after losing one, or the computed
    /// maxima (and hence the schedule) would be non-deterministic.
    #[inline]
    pub fn acquire(&mut self, loc: impl Into<LockId>) -> OpResult {
        debug_assert!(
            !self.past_failsafe || self.mode == Mode::Commit,
            "operator is not cautious: acquire after the failsafe point"
        );
        let loc = loc.into();
        match self.mode {
            Mode::Serial => {
                if !self.neighborhood.contains(&loc) {
                    self.neighborhood.push(loc);
                    self.record(loc, false);
                }
                Ok(())
            }
            Mode::Speculative => {
                if self.neighborhood.contains(&loc) {
                    return Ok(());
                }
                self.stats.atomic_updates += 1;
                self.record(loc, false);
                if self.marks.try_acquire(loc, self.mark_value) {
                    self.neighborhood.push(loc);
                    Ok(())
                } else {
                    if let Some(c) = self.conflicts.as_deref_mut() {
                        c.push(loc.0);
                    }
                    Err(Abort::Conflict)
                }
            }
            Mode::Inspect => {
                if self.neighborhood.contains(&loc) {
                    return Ok(());
                }
                self.neighborhood.push(loc);
                self.stats.atomic_updates += 1;
                self.record(loc, false);
                let prev = self.marks.write_max(loc, self.mark_value);
                let flags = self.flags.expect("inspect mode always carries abort flags");
                if prev > self.mark_value {
                    // A higher-priority task owns `loc`: this task cannot be
                    // in the independent set. Keep marking the rest anyway.
                    flags.set((self.mark_value - 1) as usize);
                    if let Some(c) = self.conflicts.as_deref_mut() {
                        c.push(loc.0);
                    }
                } else if prev != UNOWNED && prev != self.mark_value {
                    // We displaced task `prev - 1`; it must not commit.
                    flags.set((prev - 1) as usize);
                    if let Some(c) = self.conflicts.as_deref_mut() {
                        c.push(loc.0);
                    }
                }
                Ok(())
            }
            Mode::Commit => {
                debug_assert_eq!(
                    self.marks.load(loc),
                    self.mark_value,
                    "commit-phase acquire of a location not owned by this task"
                );
                self.record(loc, false);
                Ok(())
            }
        }
    }

    /// Marks the failsafe point: all neighborhood acquires are complete and
    /// writes may begin.
    ///
    /// # Errors
    ///
    /// Returns [`Abort::Inspected`] in the deterministic inspect phase, which
    /// ends the invocation — by the cautious contract no shared state has
    /// been written yet, so stopping here is a free rollback. Returns
    /// [`Abort::Injected`] when a chaos policy armed this invocation.
    #[inline]
    pub fn failsafe(&mut self) -> OpResult {
        self.past_failsafe = true;
        match self.mode {
            Mode::Inspect => Err(Abort::Inspected),
            _ => {
                if self.inject_abort {
                    self.inject_abort = false;
                    self.stats.injected_aborts += 1;
                    return Err(Abort::Injected);
                }
                if let Some(id) = self.inject_panic.take() {
                    panic!("{INJECTED_PANIC_PREFIX}{id}");
                }
                Ok(())
            }
        }
    }

    /// Saves inspect-phase state and crosses the failsafe point in one step
    /// (the continuation optimization, §3.3).
    ///
    /// - Inspect mode: stores `v` for the commit phase (when the optimization
    ///   is enabled) and returns `Err(Inspected)`.
    /// - All other modes: returns `Ok(v)` unchanged.
    ///
    /// Pair with [`take`](Self::take):
    ///
    /// ```ignore
    /// let cavity = match ctx.take::<Cavity>() {
    ///     Some(c) => c,                    // commit resumes here
    ///     None => {
    ///         let c = grow_cavity(task, ctx)?; // acquires
    ///         ctx.checkpoint(c)?               // inspect stops here
    ///     }
    /// };
    /// apply(cavity);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`Abort::Inspected`] in inspect mode (by design).
    pub fn checkpoint<V: Any + Send>(&mut self, v: V) -> Result<V, Abort> {
        self.past_failsafe = true;
        if self.mode == Mode::Inspect {
            if self.allow_stash {
                *self.stash = Some(Box::new(v));
            }
            Err(Abort::Inspected)
        } else if self.inject_abort {
            self.inject_abort = false;
            self.stats.injected_aborts += 1;
            Err(Abort::Injected)
        } else if let Some(id) = self.inject_panic.take() {
            panic!("{INJECTED_PANIC_PREFIX}{id}");
        } else {
            Ok(v)
        }
    }

    /// Recalls state saved by [`checkpoint`](Self::checkpoint) during this
    /// task's inspect phase.
    ///
    /// Returns `Some` only in the commit phase of a deterministic round whose
    /// inspect phase checkpointed a `V`; otherwise `None`, and the operator
    /// recomputes (which is exactly the baseline scheduler of §3.2).
    pub fn take<V: Any + Send>(&mut self) -> Option<V> {
        if self.mode != Mode::Commit {
            return None;
        }
        let boxed = self.stash.take()?;
        match boxed.downcast::<V>() {
            Ok(v) => Some(*v),
            Err(other) => {
                // Type mismatch: put it back so a later take of the right
                // type still works, and report none.
                *self.stash = Some(other);
                None
            }
        }
    }

    /// Creates a new task (Figure 1a `enqueue(S(t))`).
    ///
    /// Call after [`failsafe`](Self::failsafe). Pushes during the inspect
    /// phase are discarded: the commit phase re-issues them.
    #[inline]
    pub fn push(&mut self, task: T) {
        if self.mode != Mode::Inspect {
            self.pushes.push(task);
        }
    }

    /// Whether this invocation is a deterministic inspect pass.
    ///
    /// Operators rarely need this — [`checkpoint`](Self::checkpoint) covers
    /// the common pattern — but it allows phase-specific instrumentation.
    pub fn is_inspect(&self) -> bool {
        self.mode == Mode::Inspect
    }

    /// The worker thread running this invocation (`0..threads`).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Records `n` application-level atomic updates for the Figure 5
    /// accounting (e.g. a CAS the application performs on its own data).
    #[inline]
    pub fn count_atomics(&mut self, n: u64) {
        self.stats.atomic_updates += n;
    }

    #[inline]
    fn record(&mut self, loc: LockId, write: bool) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.push(Access { loc: loc.0, write });
        }
    }

    /// Records commit-time writes for the whole neighborhood (executor use).
    pub(crate) fn record_neighborhood_writes(&mut self) {
        if self.recorder.is_some() {
            let locs: Vec<LockId> = self.neighborhood.clone();
            for loc in locs {
                self.record(loc, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn fresh<'a>(
        mode: Mode,
        mark_value: u64,
        marks: &'a MarkTable,
        neighborhood: &'a mut Vec<LockId>,
        pushes: &'a mut Vec<u32>,
        flags: Option<&'a AbortFlags>,
        stash: &'a mut Option<Box<dyn Any + Send>>,
        stats: &'a mut ThreadStats,
    ) -> Ctx<'a, u32> {
        Ctx {
            mode,
            mark_value,
            tid: 0,
            marks,
            neighborhood,
            pushes,
            flags,
            stash,
            allow_stash: true,
            stats,
            recorder: None,
            conflicts: None,
            past_failsafe: false,
            inject_abort: false,
            inject_panic: None,
        }
    }

    #[test]
    fn injected_abort_fires_once_and_counts_separately() {
        let marks = MarkTable::new(2);
        let mut stats = ThreadStats::default();
        let (mut nb, mut ps, mut st) = (vec![], vec![], None);
        let mut ctx = Ctx {
            inject_abort: true,
            inject_panic: None,
            ..fresh(
                Mode::Speculative,
                1,
                &marks,
                &mut nb,
                &mut ps,
                None,
                &mut st,
                &mut stats,
            )
        };
        assert_eq!(ctx.acquire(LockId(0)), Ok(()), "acquires are untouched");
        assert_eq!(ctx.failsafe(), Err(Abort::Injected));
        assert_eq!(ctx.failsafe(), Ok(()), "the armed abort fires only once");
        assert_eq!(stats.injected_aborts, 1);
        assert_eq!(stats.aborted, 0, "injected aborts are not real conflicts");
    }

    #[test]
    fn injected_abort_fires_at_checkpoint_too() {
        let marks = MarkTable::new(1);
        let mut stats = ThreadStats::default();
        let (mut nb, mut ps, mut st) = (vec![], vec![], None);
        let mut ctx = Ctx {
            inject_abort: true,
            inject_panic: None,
            ..fresh(
                Mode::Commit,
                1,
                &marks,
                &mut nb,
                &mut ps,
                None,
                &mut st,
                &mut stats,
            )
        };
        assert_eq!(ctx.checkpoint(5u8).unwrap_err(), Abort::Injected);
        assert_eq!(ctx.checkpoint(5u8), Ok(5));
        assert_eq!(stats.injected_aborts, 1);
    }

    #[test]
    fn conflicts_collected_when_requested() {
        // Inspect: loser and displacer both record the contested location.
        let marks = MarkTable::new(2);
        let flags = AbortFlags::new(10);
        let mut stats = ThreadStats::default();
        let mut locs: Vec<u32> = Vec::new();
        let (mut nb, mut ps, mut st) = (vec![], vec![], None);
        {
            let mut ctx = fresh(
                Mode::Inspect,
                8,
                &marks,
                &mut nb,
                &mut ps,
                Some(&flags),
                &mut st,
                &mut stats,
            );
            ctx.conflicts = Some(&mut locs);
            ctx.acquire(LockId(0)).unwrap(); // first toucher: no conflict
        }
        assert!(locs.is_empty());
        let (mut nb2, mut ps2, mut st2) = (vec![], vec![], None);
        {
            let mut ctx = fresh(
                Mode::Inspect,
                4,
                &marks,
                &mut nb2,
                &mut ps2,
                Some(&flags),
                &mut st2,
                &mut stats,
            );
            ctx.conflicts = Some(&mut locs);
            ctx.acquire(LockId(0)).unwrap(); // loses to mark 8: one event
            ctx.acquire(LockId(1)).unwrap(); // uncontested: no event
        }
        assert_eq!(locs, vec![0]);
        // Speculative: a failed try_acquire records the location too.
        let smarks = MarkTable::new(2);
        smarks.try_acquire(LockId(1), 99);
        let (mut nb3, mut ps3, mut st3) = (vec![], vec![], None);
        {
            let mut ctx = fresh(
                Mode::Speculative,
                5,
                &smarks,
                &mut nb3,
                &mut ps3,
                None,
                &mut st3,
                &mut stats,
            );
            ctx.conflicts = Some(&mut locs);
            assert_eq!(ctx.acquire(LockId(1)), Err(Abort::Conflict));
        }
        assert_eq!(locs, vec![0, 1]);
    }

    #[test]
    fn speculative_acquire_conflicts() {
        let marks = MarkTable::new(4);
        marks.try_acquire(LockId(1), 99);
        let (mut nb, mut ps, mut st) = (vec![], vec![], None);
        let mut stats = ThreadStats::default();
        let mut ctx = fresh(
            Mode::Speculative,
            5,
            &marks,
            &mut nb,
            &mut ps,
            None,
            &mut st,
            &mut stats,
        );
        assert_eq!(ctx.acquire(LockId(0)), Ok(()));
        assert_eq!(ctx.acquire(LockId(0)), Ok(()), "duplicate acquire is free");
        assert_eq!(ctx.acquire(LockId(1)), Err(Abort::Conflict));
        assert_eq!(nb, vec![LockId(0)]);
        assert_eq!(stats.atomic_updates, 2, "dup acquire costs nothing");
    }

    #[test]
    fn inspect_never_fails_and_flags_loser() {
        let marks = MarkTable::new(2);
        let flags = AbortFlags::new(10);
        let (mut nb, mut ps, mut st) = (vec![], vec![], None);
        let mut stats = ThreadStats::default();
        // Task id 7 (mark value 8) marks loc 0.
        {
            let mut ctx = fresh(
                Mode::Inspect,
                8,
                &marks,
                &mut nb,
                &mut ps,
                Some(&flags),
                &mut st,
                &mut stats,
            );
            assert_eq!(ctx.acquire(LockId(0)), Ok(()));
            assert_eq!(ctx.failsafe(), Err(Abort::Inspected));
        }
        // Task id 3 (mark value 4) also touches loc 0 and loses, but acquire
        // still returns Ok so it continues marking loc 1.
        let (mut nb2, mut ps2, mut st2) = (vec![], vec![], None);
        let mut stats2 = ThreadStats::default();
        {
            let mut ctx = fresh(
                Mode::Inspect,
                4,
                &marks,
                &mut nb2,
                &mut ps2,
                Some(&flags),
                &mut st2,
                &mut stats2,
            );
            assert_eq!(ctx.acquire(LockId(0)), Ok(()));
            assert_eq!(ctx.acquire(LockId(1)), Ok(()));
        }
        assert!(flags.get(3), "losing task flags itself");
        assert!(!flags.get(7), "winner not flagged");
        assert_eq!(marks.load(LockId(0)), 8);
        assert_eq!(marks.load(LockId(1)), 4);
    }

    #[test]
    fn inspect_flags_displaced_task() {
        let marks = MarkTable::new(1);
        let flags = AbortFlags::new(10);
        let mut stats = ThreadStats::default();
        // Low-id task 2 marks first...
        let (mut nb, mut ps, mut st) = (vec![], vec![], None);
        {
            let mut ctx = fresh(
                Mode::Inspect,
                3,
                &marks,
                &mut nb,
                &mut ps,
                Some(&flags),
                &mut st,
                &mut stats,
            );
            ctx.acquire(LockId(0)).unwrap();
        }
        // ...then high-id task 6 displaces it.
        let (mut nb2, mut ps2, mut st2) = (vec![], vec![], None);
        {
            let mut ctx = fresh(
                Mode::Inspect,
                7,
                &marks,
                &mut nb2,
                &mut ps2,
                Some(&flags),
                &mut st2,
                &mut stats,
            );
            ctx.acquire(LockId(0)).unwrap();
        }
        assert!(flags.get(2), "displaced task is flagged by the displacer");
        assert!(!flags.get(6));
    }

    #[test]
    fn checkpoint_roundtrip_through_commit() {
        let marks = MarkTable::new(1);
        let mut stats = ThreadStats::default();
        let mut stash: Option<Box<dyn Any + Send>> = None;
        let flags = AbortFlags::new(4);
        // Inspect: checkpoint stores and aborts.
        {
            let (mut nb, mut ps) = (vec![], vec![]);
            let mut ctx = fresh(
                Mode::Inspect,
                1,
                &marks,
                &mut nb,
                &mut ps,
                Some(&flags),
                &mut stash,
                &mut stats,
            );
            assert_eq!(
                ctx.checkpoint(vec![1u32, 2, 3]).unwrap_err(),
                Abort::Inspected
            );
        }
        assert!(stash.is_some());
        // Commit: take returns it.
        {
            let (mut nb, mut ps) = (vec![], vec![]);
            let mut ctx = fresh(
                Mode::Commit,
                1,
                &marks,
                &mut nb,
                &mut ps,
                None,
                &mut stash,
                &mut stats,
            );
            assert_eq!(ctx.take::<Vec<u32>>(), Some(vec![1, 2, 3]));
            assert_eq!(ctx.take::<Vec<u32>>(), None, "take consumes");
        }
    }

    #[test]
    fn take_wrong_type_preserves_stash() {
        let marks = MarkTable::new(1);
        let mut stats = ThreadStats::default();
        let mut stash: Option<Box<dyn Any + Send>> = Some(Box::new(42u64));
        let (mut nb, mut ps) = (vec![], vec![]);
        let mut ctx = fresh(
            Mode::Commit,
            1,
            &marks,
            &mut nb,
            &mut ps,
            None,
            &mut stash,
            &mut stats,
        );
        assert_eq!(ctx.take::<String>(), None);
        assert_eq!(ctx.take::<u64>(), Some(42));
    }

    #[test]
    fn stash_disabled_models_baseline() {
        let marks = MarkTable::new(1);
        let mut stats = ThreadStats::default();
        let mut stash: Option<Box<dyn Any + Send>> = None;
        let flags = AbortFlags::new(4);
        let (mut nb, mut ps) = (vec![], vec![]);
        let mut ctx: Ctx<'_, u32> = Ctx {
            allow_stash: false,
            ..fresh(
                Mode::Inspect,
                1,
                &marks,
                &mut nb,
                &mut ps,
                Some(&flags),
                &mut stash,
                &mut stats,
            )
        };
        assert!(ctx.checkpoint(7u8).is_err());
        assert!(stash.is_none(), "baseline never stores continuations");
    }

    #[test]
    fn pushes_ignored_during_inspect() {
        let marks = MarkTable::new(1);
        let mut stats = ThreadStats::default();
        let mut stash = None;
        let flags = AbortFlags::new(4);
        let (mut nb, mut ps) = (vec![], vec![]);
        {
            let mut ctx = fresh(
                Mode::Inspect,
                1,
                &marks,
                &mut nb,
                &mut ps,
                Some(&flags),
                &mut stash,
                &mut stats,
            );
            ctx.push(11);
        }
        assert!(ps.is_empty());
        let (mut nb2, mut ps2) = (vec![], vec![]);
        {
            let mut ctx = fresh(
                Mode::Commit,
                1,
                &marks,
                &mut nb2,
                &mut ps2,
                None,
                &mut stash,
                &mut stats,
            );
            ctx.push(11);
        }
        assert_eq!(ps2, vec![11]);
    }

    #[test]
    #[should_panic(expected = "not cautious")]
    #[cfg(debug_assertions)]
    fn acquire_after_failsafe_is_detected() {
        let marks = MarkTable::new(2);
        let mut stats = ThreadStats::default();
        let (mut nb, mut ps, mut st) = (vec![], vec![], None);
        let mut ctx = fresh(
            Mode::Speculative,
            1,
            &marks,
            &mut nb,
            &mut ps,
            None,
            &mut st,
            &mut stats,
        );
        ctx.acquire(LockId(0)).unwrap();
        ctx.failsafe().unwrap();
        let _ = ctx.acquire(LockId(1)); // write-phase acquire: contract bug
    }

    #[test]
    fn serial_mode_tracks_neighborhood_without_atomics() {
        let marks = MarkTable::new(4);
        let mut stats = ThreadStats::default();
        let mut stash = None;
        let (mut nb, mut ps) = (vec![], vec![]);
        let mut ctx = fresh(
            Mode::Serial,
            1,
            &marks,
            &mut nb,
            &mut ps,
            None,
            &mut stash,
            &mut stats,
        );
        ctx.acquire(LockId(2)).unwrap();
        ctx.acquire(LockId(2)).unwrap();
        ctx.failsafe().unwrap();
        assert_eq!(stats.atomic_updates, 0);
        assert_eq!(nb, vec![LockId(2)]);
        assert!(marks.all_unowned());
    }
}
