//! Structured execution errors: the deterministic fault surface.
//!
//! The paper's portability property — identical behavior at any thread
//! count — is only worth anything if it also holds for runs that *fail*.
//! This module defines the error type returned by
//! [`LoopSpec::try_run`](crate::LoopSpec::try_run): an operator panic
//! before the failsafe point is contained like an abort (marks rolled
//! back, task quarantined with its payload and panic message) and
//! reported as [`ExecError::OperatorPanic`]; under the deterministic
//! scheduler the reported task id and message are byte-identical at any
//! thread count, because the quarantine set of a round is a pure function
//! of committed-task history, exactly like the schedule itself.

/// Why a parallel loop failed to drain.
///
/// Returned by [`LoopSpec::try_run`](crate::LoopSpec::try_run);
/// [`LoopSpec::run`](crate::LoopSpec::run) panics with the [`Display`]
/// rendering instead. Each variant maps to a distinct process exit code
/// via [`exit_code`](Self::exit_code) for CLI use.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An operator invocation panicked before its failsafe point and the
    /// task was quarantined.
    ///
    /// Under [`Schedule::Deterministic`](crate::Schedule::Deterministic)
    /// the reported task is the **lowest-id faulted task of the first
    /// faulting round**, and both `task_id` and `message` are
    /// byte-identical at any thread count. Under
    /// [`Schedule::Speculative`](crate::Schedule::Speculative) the fields
    /// identify the first fault a worker happened to hit (the id is the
    /// per-attempt mark value) — non-canonical by design, but the run
    /// still drains without deadlocking.
    OperatorPanic {
        /// Deterministic task id (det) or per-attempt mark value (spec).
        task_id: u64,
        /// The captured panic message (payload if it was a string, a fixed
        /// placeholder otherwise). Canonical in det mode.
        message: String,
        /// Round in which the fault surfaced (0 for speculative runs,
        /// which have no rounds).
        round: u64,
    },
    /// The stall watchdog fired: `rounds` consecutive deterministic
    /// rounds (or speculative attempts on one worker) made no commit
    /// progress anywhere. The threshold is counted in rounds, never
    /// wall-clock, so the verdict is thread-count independent; see
    /// [`Executor::max_stalled_rounds`](crate::Executor::max_stalled_rounds).
    Stalled {
        /// Consecutive zero-progress rounds observed when the watchdog
        /// fired.
        rounds: u64,
    },
    /// More tasks were quarantined than the containment layer is willing
    /// to hold: the fault is systemic (e.g. every task panics), not a
    /// stray bad input.
    QuarantineOverflow {
        /// Tasks quarantined when the cap was exceeded.
        quarantined: u64,
        /// The cap ([`QUARANTINE_CAP`]).
        limit: u64,
    },
}

/// Most quarantined tasks a run tolerates before giving up with
/// [`ExecError::QuarantineOverflow`]. Generous: quarantine exists to
/// survive stray faulty tasks, not operators that fault wholesale.
pub const QUARANTINE_CAP: u64 = 4096;

impl ExecError {
    /// A distinct nonzero process exit code per variant, shared by the
    /// `galois` CLI and the differential harness so scripted callers can
    /// tell fault classes apart: 10 operator panic, 11 stall, 12
    /// quarantine overflow.
    pub fn exit_code(&self) -> i32 {
        match self {
            ExecError::OperatorPanic { .. } => 10,
            ExecError::Stalled { .. } => 11,
            ExecError::QuarantineOverflow { .. } => 12,
        }
    }

    /// Stable machine-readable variant name, used by structured error
    /// surfaces (the `galois-serve` JSON fault responses) where an exit
    /// code alone is too opaque: `operator_panic`, `stalled`,
    /// `quarantine_overflow`.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecError::OperatorPanic { .. } => "operator_panic",
            ExecError::Stalled { .. } => "stalled",
            ExecError::QuarantineOverflow { .. } => "quarantine_overflow",
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OperatorPanic {
                task_id,
                message,
                round,
            } => write!(
                f,
                "operator panicked: task {task_id} quarantined in round {round}: {message}"
            ),
            ExecError::Stalled { rounds } => write!(
                f,
                "stalled: {rounds} consecutive rounds made no commit progress"
            ),
            ExecError::QuarantineOverflow { quarantined, limit } => write!(
                f,
                "quarantine overflow: {quarantined} tasks faulted (cap {limit})"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

thread_local! {
    /// True while this thread runs an operator under containment: the
    /// process-wide hook below skips the default "thread panicked" print
    /// for panics that are about to be caught and quarantined.
    static CONTAINED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: std::sync::Once = std::sync::Once::new();

/// Runs an operator invocation under panic containment.
///
/// Semantically `catch_unwind(AssertUnwindSafe(f))` — the unwind-safety
/// assertion is justified by the cautious-operator contract: a pre-failsafe
/// panic has written nothing shared, so the state the closure touched is
/// discarded wholesale (marks retire by epoch / release, the task is
/// quarantined). Additionally, the first use chains a process-wide panic
/// hook that suppresses the default stderr report *only* for panics caught
/// here (tracked per-thread); every other panic — user threads, scheduler
/// invariant violations — still reports through the previously installed
/// hook. Without this, a quarantined task would print a full backtrace
/// despite being handled, and a systemic fault would print thousands.
pub(crate) fn contain_panic<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn std::any::Any + Send>> {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CONTAINED.with(|c| c.get()) {
                prev(info);
            }
        }));
    });
    CONTAINED.with(|c| c.set(true));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    CONTAINED.with(|c| c.set(false));
    result
}

/// Renders a `catch_unwind` payload as the canonical fault message:
/// `panic!` with a string payload reproduces its bytes exactly, anything
/// else collapses to a fixed placeholder (so exotic payloads cannot leak
/// nondeterminism into the det-mode fault report).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errs = [
            ExecError::OperatorPanic {
                task_id: 1,
                message: "m".into(),
                round: 2,
            },
            ExecError::Stalled { rounds: 3 },
            ExecError::QuarantineOverflow {
                quarantined: 9,
                limit: QUARANTINE_CAP,
            },
        ];
        let codes: Vec<i32> = errs.iter().map(|e| e.exit_code()).collect();
        let mut uniq = codes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), errs.len());
        assert!(codes.iter().all(|&c| c != 0 && c != 1 && c != 2));
        let mut kinds: Vec<&str> = errs.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), errs.len());
    }

    #[test]
    fn display_names_the_task_and_round() {
        let e = ExecError::OperatorPanic {
            task_id: 17,
            message: "boom".into(),
            round: 4,
        };
        let text = e.to_string();
        assert!(text.contains("task 17"));
        assert!(text.contains("round 4"));
        assert!(text.contains("boom"));
    }

    #[test]
    fn panic_message_reproduces_string_payloads() {
        assert_eq!(panic_message(Box::new(String::from("abc"))), "abc");
        assert_eq!(panic_message(Box::new("static")), "static");
        assert_eq!(panic_message(Box::new(42u32)), "non-string panic payload");
    }
}
