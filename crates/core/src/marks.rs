//! Mark table: abstract locks over abstract locations.
//!
//! The Galois runtime synchronizes tasks by associating a **mark** with each
//! abstract location (a graph node, a triangle, ...) rather than with concrete
//! memory (§2 of the paper). A mark holds either [`UNOWNED`] or the id of the
//! task that currently owns the location.
//!
//! Two protocols operate on marks:
//!
//! - [`MarkTable::try_acquire`]: the non-deterministic protocol of Figure 1b —
//!   compare-and-set from unowned, failing fast on conflict.
//! - [`MarkTable::write_max`]: the deterministic `writeMarksMax` of Figure 3 —
//!   an atomic maximum. Crucially it never "fails": every task attempts every
//!   location of its neighborhood, because skipping locations would make the
//!   computed maxima depend on scheduling order (§3.2).
//!
//! # Epoch-tagged words
//!
//! Each 64-bit mark word packs a **round epoch** next to the owner id:
//!
//! ```text
//!   63            40 39                            0
//!  +----------------+-------------------------------+
//!  |  epoch (24 b)  |           id (40 b)           |
//!  +----------------+-------------------------------+
//! ```
//!
//! The table carries a monotonically increasing epoch counter
//! ([`MarkTable::epoch`], advanced by [`MarkTable::bump_epoch`]). Every
//! operation encodes and decodes words relative to the *current* epoch: a
//! word whose epoch field differs from the current one is a leftover from an
//! earlier round and reads as [`UNOWNED`].
//!
//! This turns the end-of-round mark release into a **single counter
//! increment** instead of a sweep in which every task CASes every location of
//! its neighborhood back to zero. Order-insensitivity (§3.2) is preserved:
//! within one round the epoch is constant, so `write_max` still computes the
//! per-location maximum id over exactly the same set of writers, and because
//! the epoch occupies the high bits and only ever increases, a plain unsigned
//! CAS-max on the raw word *is* the lexicographic maximum on
//! `(epoch, id)` — stale words always lose to current-epoch words.
//!
//! **Rollover bound.** The epoch field is 24 bits wide. When the counter
//! wraps that field (once every 2²⁴ ≈ 16.7 M bumps), [`MarkTable::bump_epoch`]
//! sweeps the table back to zero so that words stamped in the previous cycle
//! cannot alias the new one. `bump_epoch` must therefore only be called from
//! quiescent contexts (the DIG leader between round barriers does this); the
//! sweep is amortized to well under one store per location per million
//! rounds.
//!
//! The speculative executor keeps the explicit CAS-release protocol on the
//! same table (the epoch simply stays fixed while it runs), which is what
//! lets deterministic and speculative phases interleave **on demand** over
//! one `MarkTable`: marks retired by a deterministic round decode as unowned
//! for a later speculative `try_acquire`, and speculative releases write the
//! raw zero that every epoch decodes as unowned.

use std::sync::atomic::{AtomicU64, Ordering};

/// The id stored in an unowned mark. Less than every task id (§2.1).
pub const UNOWNED: u64 = 0;

/// Number of low bits of a mark word that hold the owner id.
pub const ID_BITS: u32 = 40;

/// Largest task id a mark can hold (the id field is [`ID_BITS`] wide).
pub const MAX_ID: u64 = (1 << ID_BITS) - 1;

/// Width of the epoch field in the high bits of a mark word.
const EPOCH_BITS: u32 = 64 - ID_BITS;

/// Mask selecting the in-word epoch field of the full epoch counter.
const EPOCH_FIELD_MASK: u64 = (1 << EPOCH_BITS) - 1;

/// An abstract location: an index into a [`MarkTable`].
///
/// Applications define the mapping from their abstract data items (nodes,
/// triangles, array cells) to lock ids; the runtime never interprets them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

impl From<u32> for LockId {
    fn from(i: u32) -> Self {
        LockId(i)
    }
}

impl From<usize> for LockId {
    fn from(i: usize) -> Self {
        LockId(u32::try_from(i).expect("lock index exceeds u32"))
    }
}

/// A table of marks, one `AtomicU64` per abstract location, plus the current
/// round epoch.
///
/// # Example
///
/// ```
/// use galois_core::marks::{LockId, MarkTable, UNOWNED};
///
/// let marks = MarkTable::new(4);
/// assert!(marks.try_acquire(LockId(2), 7));
/// assert!(!marks.try_acquire(LockId(2), 9)); // owned by 7
/// marks.release(LockId(2), 7);
/// assert_eq!(marks.load(LockId(2)), UNOWNED);
///
/// // Epoch release: one bump retires every mark at once.
/// marks.write_max(LockId(0), 3);
/// marks.write_max(LockId(1), 5);
/// marks.bump_epoch();
/// assert!(marks.all_unowned());
/// ```
pub struct MarkTable {
    slots: Box<[AtomicU64]>,
    /// Full (unwrapped) epoch counter; the low [`EPOCH_BITS`] bits are the
    /// in-word field.
    epoch: AtomicU64,
}

impl std::fmt::Debug for MarkTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarkTable")
            .field("len", &self.slots.len())
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish()
    }
}

impl MarkTable {
    /// Creates a table of `len` unowned marks at epoch 0.
    pub fn new(len: usize) -> Self {
        let slots: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        MarkTable {
            slots: slots.into_boxed_slice(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of abstract locations.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no locations.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current epoch counter value.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// In-word epoch field for the current epoch.
    #[inline]
    fn field(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed) & EPOCH_FIELD_MASK
    }

    /// Encodes `id` as a raw word stamped with the current epoch.
    #[inline]
    fn encode(field: u64, id: u64) -> u64 {
        (field << ID_BITS) | id
    }

    /// Decodes a raw word relative to the current epoch field: words stamped
    /// by an earlier epoch read as [`UNOWNED`].
    #[inline]
    fn decode(field: u64, raw: u64) -> u64 {
        if raw >> ID_BITS == field {
            raw & MAX_ID
        } else {
            UNOWNED
        }
    }

    /// Current mark of `loc` (racy snapshot), decoded against the current
    /// epoch.
    pub fn load(&self, loc: LockId) -> u64 {
        let raw = self.slots[loc.0 as usize].load(Ordering::Acquire);
        Self::decode(self.field(), raw)
    }

    /// Non-deterministic acquisition (Figure 1b `writeMarks`).
    ///
    /// Atomically sets the mark from [`UNOWNED`] to `id`. Returns `true` if
    /// the mark is now (or was already) owned by `id`. A mark stamped by an
    /// earlier epoch counts as unowned and is overwritten.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `id == UNOWNED` or `id > MAX_ID`.
    pub fn try_acquire(&self, loc: LockId, id: u64) -> bool {
        debug_assert_ne!(id, UNOWNED);
        debug_assert!(id <= MAX_ID, "task id {id} exceeds the 40-bit mark field");
        let field = self.field();
        let word = Self::encode(field, id);
        let slot = &self.slots[loc.0 as usize];
        let mut current = slot.load(Ordering::Acquire);
        loop {
            let owner = Self::decode(field, current);
            if owner == id {
                return true;
            }
            if owner != UNOWNED {
                return false;
            }
            match slot.compare_exchange_weak(current, word, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }

    /// Deterministic marking (Figure 3 `writeMarkMax`).
    ///
    /// Atomically raises the mark to `max(mark, id)` within the current
    /// epoch and returns the (decoded) value the mark held immediately before
    /// this call took effect:
    ///
    /// - returned value `< id`: this task now owns the mark (it displaced
    ///   the returned previous owner, or [`UNOWNED`]);
    /// - returned value `== id`: the task already owned it;
    /// - returned value `> id`: a higher-priority task owns it; the mark is
    ///   unchanged.
    ///
    /// Because max is order-insensitive, the final mark of every location is
    /// independent of the interleaving of `write_max` calls — the property
    /// that makes the implicit interference graph deterministic. With the
    /// epoch in the high bits, the raw unsigned CAS-max below is exactly the
    /// lexicographic max on `(epoch, id)`: stale words always compare below
    /// current-epoch words and decode as [`UNOWNED`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `id == UNOWNED` or `id > MAX_ID`.
    pub fn write_max(&self, loc: LockId, id: u64) -> u64 {
        debug_assert_ne!(id, UNOWNED);
        debug_assert!(id <= MAX_ID, "task id {id} exceeds the 40-bit mark field");
        let field = self.field();
        let word = Self::encode(field, id);
        let slot = &self.slots[loc.0 as usize];
        let mut current = slot.load(Ordering::Acquire);
        loop {
            if current >= word {
                return Self::decode(field, current);
            }
            match slot.compare_exchange_weak(current, word, Ordering::AcqRel, Ordering::Acquire) {
                Ok(prev) => return Self::decode(field, prev),
                Err(now) => current = now,
            }
        }
    }

    /// Releases `loc` if it is owned by `id` in the current epoch
    /// (CAS `id → 0`).
    ///
    /// This is the speculative executor's per-location release. The
    /// deterministic scheduler does not call it: a round retires all of its
    /// marks at once via [`MarkTable::bump_epoch`].
    pub fn release(&self, loc: LockId, id: u64) {
        let word = Self::encode(self.field(), id);
        let _ = self.slots[loc.0 as usize].compare_exchange(
            word,
            0,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Advances the epoch, logically releasing **every** mark in O(1).
    ///
    /// This replaces the deterministic round's release sweep (one CAS per
    /// neighborhood location per task) with a single counter increment.
    ///
    /// # Quiescence
    ///
    /// Callers must guarantee no concurrent mark operations: the DIG leader
    /// calls this between round barriers while the workers are parked. When
    /// the 24-bit in-word field wraps (once every 2²⁴ bumps) the table is
    /// swept back to zero so words from the previous cycle cannot alias the
    /// new one; the quiescence requirement makes that sweep safe.
    pub fn bump_epoch(&self) {
        let new = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        if new & EPOCH_FIELD_MASK == 0 {
            for s in self.slots.iter() {
                s.store(0, Ordering::Release);
            }
        }
    }

    /// Whether every mark is unowned in the current epoch — the executors'
    /// postcondition.
    pub fn all_unowned(&self) -> bool {
        let field = self.field();
        self.slots
            .iter()
            .all(|s| Self::decode(field, s.load(Ordering::Acquire)) == UNOWNED)
    }

    /// Resets every mark to unowned (test/diagnostic helper). Keeps the
    /// epoch.
    pub fn clear(&self) {
        for s in self.slots.iter() {
            s.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_runtime::run_on_threads;

    #[test]
    fn try_acquire_is_exclusive() {
        let t = MarkTable::new(1);
        assert!(t.try_acquire(LockId(0), 5));
        assert!(t.try_acquire(LockId(0), 5), "reacquire by owner succeeds");
        assert!(!t.try_acquire(LockId(0), 6));
        t.release(LockId(0), 6); // wrong owner: no effect
        assert_eq!(t.load(LockId(0)), 5);
        t.release(LockId(0), 5);
        assert!(t.try_acquire(LockId(0), 6));
    }

    #[test]
    fn write_max_keeps_maximum() {
        let t = MarkTable::new(1);
        assert_eq!(t.write_max(LockId(0), 3), UNOWNED);
        assert_eq!(t.write_max(LockId(0), 7), 3);
        assert_eq!(t.write_max(LockId(0), 5), 7, "lower id loses");
        assert_eq!(t.load(LockId(0)), 7);
        assert_eq!(t.write_max(LockId(0), 7), 7, "same id is idempotent");
    }

    #[test]
    fn write_max_result_independent_of_order() {
        // All permutations of three writers leave the same final mark.
        use std::collections::HashSet;
        let ids = [2u64, 9, 4];
        let mut finals = HashSet::new();
        let perms = [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for perm in perms {
            let t = MarkTable::new(1);
            for &i in &perm {
                t.write_max(LockId(0), ids[i]);
            }
            finals.insert(t.load(LockId(0)));
        }
        assert_eq!(finals.len(), 1);
        assert!(finals.contains(&9));
    }

    #[test]
    fn concurrent_write_max_settles_on_max() {
        const THREADS: usize = 8;
        const LOCS: usize = 128;
        let t = MarkTable::new(LOCS);
        run_on_threads(THREADS, |tid| {
            for l in 0..LOCS {
                t.write_max(LockId(l as u32), (tid as u64 + 1) * 10 + (l as u64 % 3));
            }
        });
        for l in 0..LOCS {
            assert_eq!(t.load(LockId(l as u32)), 80 + (l as u64 % 3));
        }
    }

    #[test]
    fn concurrent_try_acquire_has_one_winner() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let t = MarkTable::new(1);
        let winners = AtomicU64::new(0);
        run_on_threads(8, |tid| {
            if t.try_acquire(LockId(0), tid as u64 + 1) {
                winners.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn release_only_by_owner_then_all_unowned() {
        let t = MarkTable::new(3);
        t.write_max(LockId(0), 4);
        t.write_max(LockId(1), 2);
        // Every "task" releases its whole neighborhood.
        for id in [2u64, 4] {
            t.release(LockId(0), id);
            t.release(LockId(1), id);
        }
        assert!(t.all_unowned());
    }

    #[test]
    fn lock_id_conversions() {
        assert_eq!(LockId::from(5u32), LockId(5));
        assert_eq!(LockId::from(5usize), LockId(5));
    }

    #[test]
    fn clear_resets() {
        let t = MarkTable::new(2);
        t.try_acquire(LockId(0), 1);
        t.try_acquire(LockId(1), 2);
        t.clear();
        assert!(t.all_unowned());
    }

    #[test]
    fn bump_epoch_releases_everything_at_once() {
        let t = MarkTable::new(3);
        t.write_max(LockId(0), 9);
        t.write_max(LockId(1), 4);
        t.try_acquire(LockId(2), 11);
        assert!(!t.all_unowned());
        t.bump_epoch();
        assert!(t.all_unowned());
        assert_eq!(t.load(LockId(0)), UNOWNED);
        assert_eq!(t.epoch(), 1);
    }

    #[test]
    fn stale_epoch_marks_lose_to_current_ones() {
        let t = MarkTable::new(1);
        t.write_max(LockId(0), 9);
        t.bump_epoch();
        // A stale 9 must not beat a current-epoch 3.
        assert_eq!(t.write_max(LockId(0), 3), UNOWNED);
        assert_eq!(t.load(LockId(0)), 3);
        t.bump_epoch();
        // And try_acquire treats the stale 3 as free.
        assert!(t.try_acquire(LockId(0), 7));
        assert_eq!(t.load(LockId(0)), 7);
    }

    #[test]
    fn on_demand_handoff_between_protocols() {
        // Deterministic-style marks retired by an epoch bump are invisible
        // to a subsequent speculative try_acquire/release on the same table.
        let t = MarkTable::new(2);
        t.write_max(LockId(0), 5);
        t.write_max(LockId(1), 8);
        t.bump_epoch();
        assert!(t.try_acquire(LockId(0), 2));
        t.release(LockId(0), 2);
        assert!(t.all_unowned());
        // A raw zero from a speculative release stays unowned after bumps.
        t.bump_epoch();
        assert!(t.all_unowned());
    }

    #[test]
    fn epoch_field_rollover_sweeps_the_table() {
        let t = MarkTable::new(2);
        t.write_max(LockId(0), 6);
        let raw_before = t.slots[0].load(Ordering::Relaxed);
        assert_ne!(raw_before, 0);
        // Wrap the 24-bit in-word field exactly once.
        for _ in 0..(1u64 << EPOCH_BITS) {
            t.bump_epoch();
        }
        assert_eq!(t.epoch(), 1 << EPOCH_BITS);
        assert_eq!(t.epoch() & EPOCH_FIELD_MASK, 0, "field wrapped to zero");
        // The sweep zeroed the stale word, so it cannot alias the new cycle.
        assert_eq!(t.slots[0].load(Ordering::Relaxed), 0);
        assert!(t.all_unowned());
        assert!(t.try_acquire(LockId(0), 6));
        assert_eq!(t.load(LockId(0)), 6);
    }
}
