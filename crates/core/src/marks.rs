//! Mark table: abstract locks over abstract locations.
//!
//! The Galois runtime synchronizes tasks by associating a **mark** with each
//! abstract location (a graph node, a triangle, ...) rather than with concrete
//! memory (§2 of the paper). A mark holds either 0 (unowned) or the id of the
//! task that currently owns the location.
//!
//! Two protocols operate on marks:
//!
//! - [`MarkTable::try_acquire`]: the non-deterministic protocol of Figure 1b —
//!   compare-and-set from 0, failing fast on conflict.
//! - [`MarkTable::write_max`]: the deterministic `writeMarksMax` of Figure 3 —
//!   an atomic maximum. Crucially it never "fails": every task attempts every
//!   location of its neighborhood, because skipping locations would make the
//!   computed maxima depend on scheduling order (§3.2).

use std::sync::atomic::{AtomicU64, Ordering};

/// The id stored in an unowned mark. Less than every task id (§2.1).
pub const UNOWNED: u64 = 0;

/// An abstract location: an index into a [`MarkTable`].
///
/// Applications define the mapping from their abstract data items (nodes,
/// triangles, array cells) to lock ids; the runtime never interprets them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

impl From<u32> for LockId {
    fn from(i: u32) -> Self {
        LockId(i)
    }
}

impl From<usize> for LockId {
    fn from(i: usize) -> Self {
        LockId(u32::try_from(i).expect("lock index exceeds u32"))
    }
}

/// A table of marks, one `AtomicU64` per abstract location.
///
/// # Example
///
/// ```
/// use galois_core::marks::{LockId, MarkTable, UNOWNED};
///
/// let marks = MarkTable::new(4);
/// assert!(marks.try_acquire(LockId(2), 7));
/// assert!(!marks.try_acquire(LockId(2), 9)); // owned by 7
/// marks.release(LockId(2), 7);
/// assert_eq!(marks.load(LockId(2)), UNOWNED);
/// ```
pub struct MarkTable {
    slots: Box<[AtomicU64]>,
}

impl std::fmt::Debug for MarkTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarkTable").field("len", &self.slots.len()).finish()
    }
}

impl MarkTable {
    /// Creates a table of `len` unowned marks.
    pub fn new(len: usize) -> Self {
        let slots: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(UNOWNED)).collect();
        MarkTable {
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of abstract locations.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no locations.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current mark of `loc` (racy snapshot).
    pub fn load(&self, loc: LockId) -> u64 {
        self.slots[loc.0 as usize].load(Ordering::Acquire)
    }

    /// Non-deterministic acquisition (Figure 1b `writeMarks`).
    ///
    /// Atomically sets the mark from [`UNOWNED`] to `id`. Returns `true` if
    /// the mark is now (or was already) owned by `id`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `id == UNOWNED`.
    pub fn try_acquire(&self, loc: LockId, id: u64) -> bool {
        debug_assert_ne!(id, UNOWNED);
        let slot = &self.slots[loc.0 as usize];
        match slot.compare_exchange(UNOWNED, id, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => true,
            Err(current) => current == id,
        }
    }

    /// Deterministic marking (Figure 3 `writeMarkMax`).
    ///
    /// Atomically raises the mark to `max(mark, id)` and returns the value
    /// the mark held immediately before this call took effect:
    ///
    /// - returned value `< id`: this task now owns the mark (it displaced
    ///   the returned previous owner, or [`UNOWNED`]);
    /// - returned value `== id`: the task already owned it;
    /// - returned value `> id`: a higher-priority task owns it; the mark is
    ///   unchanged.
    ///
    /// Because max is order-insensitive, the final mark of every location is
    /// independent of the interleaving of `write_max` calls — the property
    /// that makes the implicit interference graph deterministic.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `id == UNOWNED`.
    pub fn write_max(&self, loc: LockId, id: u64) -> u64 {
        debug_assert_ne!(id, UNOWNED);
        let slot = &self.slots[loc.0 as usize];
        let mut current = slot.load(Ordering::Acquire);
        loop {
            if current >= id {
                return current;
            }
            match slot.compare_exchange_weak(current, id, Ordering::AcqRel, Ordering::Acquire) {
                Ok(prev) => return prev,
                Err(now) => current = now,
            }
        }
    }

    /// Releases `loc` if it is owned by `id` (CAS `id → 0`).
    ///
    /// Deterministic rounds clear marks this way: every task releases its
    /// whole neighborhood, but only the final (maximum-id) owner's release
    /// takes effect, so the table returns to all-unowned without a race.
    pub fn release(&self, loc: LockId, id: u64) {
        let _ = self.slots[loc.0 as usize].compare_exchange(
            id,
            UNOWNED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Whether every mark is unowned — the executors' postcondition.
    pub fn all_unowned(&self) -> bool {
        self.slots.iter().all(|s| s.load(Ordering::Acquire) == UNOWNED)
    }

    /// Resets every mark to unowned (test/diagnostic helper).
    pub fn clear(&self) {
        for s in self.slots.iter() {
            s.store(UNOWNED, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use galois_runtime::run_on_threads;

    #[test]
    fn try_acquire_is_exclusive() {
        let t = MarkTable::new(1);
        assert!(t.try_acquire(LockId(0), 5));
        assert!(t.try_acquire(LockId(0), 5), "reacquire by owner succeeds");
        assert!(!t.try_acquire(LockId(0), 6));
        t.release(LockId(0), 6); // wrong owner: no effect
        assert_eq!(t.load(LockId(0)), 5);
        t.release(LockId(0), 5);
        assert!(t.try_acquire(LockId(0), 6));
    }

    #[test]
    fn write_max_keeps_maximum() {
        let t = MarkTable::new(1);
        assert_eq!(t.write_max(LockId(0), 3), UNOWNED);
        assert_eq!(t.write_max(LockId(0), 7), 3);
        assert_eq!(t.write_max(LockId(0), 5), 7, "lower id loses");
        assert_eq!(t.load(LockId(0)), 7);
        assert_eq!(t.write_max(LockId(0), 7), 7, "same id is idempotent");
    }

    #[test]
    fn write_max_result_independent_of_order() {
        // All permutations of three writers leave the same final mark.
        use std::collections::HashSet;
        let ids = [2u64, 9, 4];
        let mut finals = HashSet::new();
        let perms = [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for perm in perms {
            let t = MarkTable::new(1);
            for &i in &perm {
                t.write_max(LockId(0), ids[i]);
            }
            finals.insert(t.load(LockId(0)));
        }
        assert_eq!(finals.len(), 1);
        assert!(finals.contains(&9));
    }

    #[test]
    fn concurrent_write_max_settles_on_max() {
        const THREADS: usize = 8;
        const LOCS: usize = 128;
        let t = MarkTable::new(LOCS);
        run_on_threads(THREADS, |tid| {
            for l in 0..LOCS {
                t.write_max(LockId(l as u32), (tid as u64 + 1) * 10 + (l as u64 % 3));
            }
        });
        for l in 0..LOCS {
            assert_eq!(t.load(LockId(l as u32)), 80 + (l as u64 % 3));
        }
    }

    #[test]
    fn concurrent_try_acquire_has_one_winner() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let t = MarkTable::new(1);
        let winners = AtomicU64::new(0);
        run_on_threads(8, |tid| {
            if t.try_acquire(LockId(0), tid as u64 + 1) {
                winners.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn release_only_by_owner_then_all_unowned() {
        let t = MarkTable::new(3);
        t.write_max(LockId(0), 4);
        t.write_max(LockId(1), 2);
        // Every "task" releases its whole neighborhood.
        for id in [2u64, 4] {
            t.release(LockId(0), id);
            t.release(LockId(1), id);
        }
        assert!(t.all_unowned());
    }

    #[test]
    fn lock_id_conversions() {
        assert_eq!(LockId::from(5u32), LockId(5));
        assert_eq!(LockId::from(5usize), LockId(5));
    }

    #[test]
    fn clear_resets() {
        let t = MarkTable::new(2);
        t.try_acquire(LockId(0), 1);
        t.try_acquire(LockId(1), 2);
        t.clear();
        assert!(t.all_unowned());
    }
}
