//! # Deterministic Galois: on-demand, portable, parameterless
//!
//! A reproduction of the runtime system from *"Deterministic Galois:
//! On-demand, Portable and Parameterless"* (Nguyen, Lenharth, Pingali —
//! ASPLOS 2014).
//!
//! Programs are written once, in the (non-deterministic) Galois programming
//! model: an unordered pool of *cautious* tasks that acquire abstract
//! locations before writing them ([`Ctx`], [`Operator`]). The scheduler is
//! then chosen at run time ([`Executor`], [`Schedule`]):
//!
//! - [`Schedule::Speculative`] — the classic Galois speculative executor:
//!   optimistic mark acquisition, abort-and-retry on conflict. Fast,
//!   non-deterministic.
//! - [`Schedule::Deterministic`] — **DIG scheduling**: rounds of
//!   inspect / select / execute over an implicitly constructed interference
//!   graph, with an adaptive (parameterless) window. The schedule — and
//!   therefore the program output — is bit-identical for any thread count
//!   (portable).
//! - [`Schedule::Serial`] — single-threaded reference semantics.
//!
//! ## Example: on-demand determinism
//!
//! ```
//! use galois_core::{Executor, MarkTable, Schedule, Ctx, OpResult};
//! use std::sync::Mutex;
//!
//! // A toy "last writer wins" register per bucket. The final values depend
//! // on the schedule, so deterministic and speculative runs may differ —
//! // but deterministic runs never differ from each other.
//! fn run(schedule: Schedule, threads: usize) -> Vec<u64> {
//!     let regs: Vec<Mutex<u64>> = (0..8).map(|_| Mutex::new(0)).collect();
//!     let op = |t: &u64, ctx: &mut Ctx<'_, u64>| -> OpResult {
//!         let bucket = (*t % 8) as u32;
//!         ctx.acquire(bucket)?;
//!         ctx.failsafe()?;
//!         *regs[bucket as usize].lock().unwrap() = *t;
//!         Ok(())
//!     };
//!     let marks = MarkTable::new(8);
//!     Executor::new()
//!         .threads(threads)
//!         .schedule(schedule)
//!         .iterate((0..512).collect())
//!         .run(&marks, &op);
//!     regs.into_iter().map(|m| m.into_inner().unwrap()).collect()
//! }
//!
//! // Portability: deterministic output is thread-count independent.
//! assert_eq!(run(Schedule::deterministic(), 1), run(Schedule::deterministic(), 4));
//! ```
//!
//! ## Crate map
//!
//! | module | paper section | content |
//! |--------|---------------|---------|
//! | [`marks`] | §2.1, Fig. 1b & 3 | mark table: `writeMarks` (CAS) and `writeMarksMax` |
//! | [`ctx`] | §2, §3.3 | cautious-operator API: acquire, failsafe, checkpoint |
//! | [`task`] | §3.2–3.3 | deterministic id assignment, locality spreading |
//! | [`window`] | §3.2 | adaptive window policy |
//! | [`flags`] | §3.3 | order-insensitive abort-flag protocol |
//! | [`executor`] | §1 | the on-demand scheduler switch |
//! | [`manifest`] | — | record/replay: run manifests, replay verification |
//! | `det` (internal) | §3 | the DIG scheduler |
//! | `spec` (internal) | §2.1 | the speculative scheduler |

#![warn(missing_docs)]

pub mod ctx;
mod det;
pub mod error;
pub mod executor;
pub mod flags;
pub mod manifest;
pub mod marks;
pub mod ops;
mod serial;
mod spec;
pub mod task;
pub mod window;

pub use ctx::{Abort, Access, Ctx, OpResult, INJECTED_PANIC_PREFIX};
pub use error::{ExecError, QUARANTINE_CAP};
pub use executor::{
    DetOptions, Executor, LoopSpec, RunReport, Schedule, WorklistPolicy, DEFAULT_MAX_STALLED_ROUNDS,
};
pub use galois_runtime::chaos::ChaosPolicy;
pub use galois_runtime::probe::{Probe, RoundLog, RoundRecord};
pub use manifest::{
    LockstepEvent, LockstepEventKind, LockstepOutcome, LockstepReport, ManifestError,
    ManifestRecorder, ReplayDivergence, RunManifest,
};
pub use marks::{LockId, MarkTable};
pub use ops::Operator;
pub use window::WindowPolicy;

/// One coherent import surface for programs written against the Galois
/// model: the executor switch, the operator API, and the record/replay
/// layer, in one `use galois_core::prelude::*`.
pub mod prelude {
    pub use crate::ctx::{Ctx, OpResult};
    pub use crate::error::ExecError;
    pub use crate::executor::{
        DetOptions, Executor, LoopSpec, RunReport, Schedule, WorklistPolicy,
    };
    pub use crate::manifest::{
        ExecConfig, LockstepEvent, LockstepEventKind, LockstepOutcome, LockstepReport,
        ManifestError, ManifestRecorder, ReplayDivergence, RunManifest,
    };
    pub use crate::marks::{LockId, MarkTable};
    pub use crate::ops::Operator;
    pub use galois_runtime::fingerprint::{hash_u32s, run_fingerprint, Fnv64, RoundChain};
    pub use galois_runtime::probe::{Probe, RoundLog, RoundRecord};
}
