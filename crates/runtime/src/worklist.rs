//! Concurrent chunked work bags.
//!
//! The non-deterministic Galois executor pulls tasks from an *unordered* pool
//! (Figure 1a of the paper: "a pool of tasks that can be performed in any
//! order"). The classic Galois worklist is a **chunked bag**: each thread
//! pushes and pops 64-task chunks LIFO for locality, and spills or refills
//! whole chunks through a shared list. Moving work chunk-at-a-time amortizes
//! synchronization to one lock operation per 64 tasks, which matters for the
//! microsecond-scale tasks of irregular applications (§5.1).

use parking_lot::Mutex;

use crate::chaos::ChaosPolicy;
use crate::padded::{CachePadded, PerThread};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const CHUNK_CAPACITY: usize = 64;

#[derive(Debug)]
struct Chunk<T> {
    items: Vec<T>,
}

impl<T> Chunk<T> {
    fn new() -> Self {
        Chunk {
            items: Vec::with_capacity(CHUNK_CAPACITY),
        }
    }
}

#[derive(Debug)]
struct Local<T> {
    /// Chunk currently being filled by pushes.
    push: Chunk<T>,
    /// Chunk currently being drained by pops.
    pop: Chunk<T>,
}

/// An unordered concurrent task pool with per-thread chunk caching.
///
/// Each thread owns a private push chunk and pop chunk; full chunks spill to a
/// shared lock-protected list, and empty threads refill from it. Ordering is
/// deliberately unspecified — this is the pool `P` of the non-deterministic
/// programming model.
///
/// # Example
///
/// ```
/// use galois_runtime::worklist::ChunkedBag;
///
/// let bag: ChunkedBag<u32> = ChunkedBag::new(2);
/// bag.push(0, 10);
/// bag.push(0, 20);
/// let mut seen = vec![bag.pop(1).unwrap(), bag.pop(1).unwrap()];
/// seen.sort();
/// assert_eq!(seen, vec![10, 20]);
/// assert!(bag.pop(0).is_none());
/// ```
pub struct ChunkedBag<T> {
    locals: PerThread<Mutex<Local<T>>>,
    shared: CachePadded<Mutex<Vec<Chunk<T>>>>,
    /// Approximate number of items, used only for sizing hints.
    approx_len: AtomicUsize,
    /// Optional adversarial spill/refill/steal-order perturbation. The bag
    /// is unordered, so no perturbation can break correctness — only expose
    /// schedules the OS never produces.
    chaos: Option<Arc<ChaosPolicy>>,
}

impl<T> std::fmt::Debug for ChunkedBag<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedBag")
            .field("threads", &self.locals.len())
            .field("approx_len", &self.approx_len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Send> ChunkedBag<T> {
    /// Creates an empty bag for `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self::with_chaos(threads, None)
    }

    /// Creates an empty bag whose spill position, refill choice and
    /// steal-victim order are perturbed by `chaos` (when `Some`).
    pub fn with_chaos(threads: usize, chaos: Option<Arc<ChaosPolicy>>) -> Self {
        ChunkedBag {
            locals: PerThread::new(threads, |_| {
                Mutex::new(Local {
                    push: Chunk::new(),
                    pop: Chunk::new(),
                })
            }),
            shared: CachePadded::new(Mutex::new(Vec::new())),
            approx_len: AtomicUsize::new(0),
            chaos,
        }
    }

    /// Inserts `item` from thread `tid`.
    pub fn push(&self, tid: usize, item: T) {
        self.approx_len.fetch_add(1, Ordering::Relaxed);
        let mut local = self.locals.get(tid).lock();
        if local.push.items.len() == CHUNK_CAPACITY {
            let full = std::mem::replace(&mut local.push, Chunk::new());
            let mut shared = self.shared.lock();
            shared.push(full);
            if let Some(c) = &self.chaos {
                // Land the spilled chunk at a drawn position instead of the
                // tail, perturbing which chunk the next refill sees.
                let last = shared.len() - 1;
                shared.swap(c.spill_index(last + 1), last);
            }
        }
        local.push.items.push(item);
    }

    /// Bulk-inserts items from thread `tid`.
    pub fn push_all(&self, tid: usize, items: impl IntoIterator<Item = T>) {
        for item in items {
            self.push(tid, item);
        }
    }

    /// Removes some item, preferring thread `tid`'s local chunks.
    ///
    /// Returns `None` only when the bag appeared empty; in a concurrent
    /// setting the caller must combine this with a termination detector
    /// (see [`crate::worklist::Terminator`]).
    pub fn pop(&self, tid: usize) -> Option<T> {
        {
            let mut local = self.locals.get(tid).lock();
            if let Some(item) = local.pop.items.pop() {
                self.approx_len.fetch_sub(1, Ordering::Relaxed);
                return Some(item);
            }
            if let Some(item) = local.push.items.pop() {
                self.approx_len.fetch_sub(1, Ordering::Relaxed);
                return Some(item);
            }
            let refilled = {
                let mut shared = self.shared.lock();
                match &self.chaos {
                    // Take a drawn chunk instead of the newest one.
                    Some(c) if !shared.is_empty() => {
                        let k = c.refill_index(shared.len());
                        Some(shared.swap_remove(k))
                    }
                    Some(_) => None,
                    None => shared.pop(),
                }
            };
            if let Some(chunk) = refilled {
                local.pop = chunk;
                let item = local.pop.items.pop();
                if item.is_some() {
                    self.approx_len.fetch_sub(1, Ordering::Relaxed);
                }
                return item;
            }
        }
        // Steal: scan other threads' chunks.
        let threads = self.locals.len();
        if let Some(c) = &self.chaos {
            for victim in c.steal_order(tid, threads) {
                if let Some(item) = self.steal_from(victim) {
                    return Some(item);
                }
            }
        } else {
            for victim in (tid + 1..threads).chain(0..tid) {
                if let Some(item) = self.steal_from(victim) {
                    return Some(item);
                }
            }
        }
        None
    }

    /// One steal attempt against `victim`'s local chunks (`None` when the
    /// victim is busy or empty).
    fn steal_from(&self, victim: usize) -> Option<T> {
        let mut other = self.locals.get(victim).try_lock()?;
        if let Some(item) = other.push.items.pop() {
            self.approx_len.fetch_sub(1, Ordering::Relaxed);
            return Some(item);
        }
        if let Some(item) = other.pop.items.pop() {
            self.approx_len.fetch_sub(1, Ordering::Relaxed);
            return Some(item);
        }
        None
    }

    /// Approximate number of items (racy; for sizing hints only).
    pub fn approx_len(&self) -> usize {
        self.approx_len.load(Ordering::Relaxed)
    }
}

/// A roughly-FIFO concurrent task pool.
///
/// Like [`ChunkedBag`] but chunks drain oldest-first, giving breadth-first
/// processing order. Data-driven label-correcting algorithms (bfs, sssp)
/// need this: LIFO order explores deep stale paths first and multiplies the
/// work by orders of magnitude. This mirrors the original Galois system's
/// selectable worklist policies.
pub struct ChunkedFifo<T> {
    locals: PerThread<Mutex<Local<T>>>,
    shared: CachePadded<Mutex<std::collections::VecDeque<Chunk<T>>>>,
    approx_len: AtomicUsize,
    /// Optional adversarial perturbation; the queue is only *roughly* FIFO,
    /// so chaos stretches "roughly" without breaking the pool contract.
    chaos: Option<Arc<ChaosPolicy>>,
}

impl<T> std::fmt::Debug for ChunkedFifo<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedFifo")
            .field("threads", &self.locals.len())
            .field("approx_len", &self.approx_len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Send> ChunkedFifo<T> {
    /// Creates an empty queue for `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self::with_chaos(threads, None)
    }

    /// Creates an empty queue whose spill side, refill side and steal-victim
    /// order are perturbed by `chaos` (when `Some`).
    pub fn with_chaos(threads: usize, chaos: Option<Arc<ChaosPolicy>>) -> Self {
        ChunkedFifo {
            locals: PerThread::new(threads, |_| {
                Mutex::new(Local {
                    push: Chunk::new(),
                    pop: Chunk::new(),
                })
            }),
            shared: CachePadded::new(Mutex::new(std::collections::VecDeque::new())),
            approx_len: AtomicUsize::new(0),
            chaos,
        }
    }

    /// Inserts `item` from thread `tid`.
    pub fn push(&self, tid: usize, item: T) {
        self.approx_len.fetch_add(1, Ordering::Relaxed);
        let mut local = self.locals.get(tid).lock();
        local.push.items.push(item);
        if local.push.items.len() == CHUNK_CAPACITY {
            let full = std::mem::replace(&mut local.push, Chunk::new());
            let mut shared = self.shared.lock();
            // Chaos: spill to the front sometimes, jumping the FIFO line.
            match &self.chaos {
                Some(c) if c.spill_index(2) == 0 => shared.push_front(full),
                _ => shared.push_back(full),
            }
        }
    }

    /// Removes an item in roughly-FIFO order.
    pub fn pop(&self, tid: usize) -> Option<T> {
        let mut local = self.locals.get(tid).lock();
        loop {
            if !local.pop.items.is_empty() {
                // Chunks were filled front-to-back; drain front-to-back by
                // reversing once at refill time (items are stored reversed).
                let item = local.pop.items.pop();
                if item.is_some() {
                    self.approx_len.fetch_sub(1, Ordering::Relaxed);
                }
                return item;
            }
            let refilled = {
                let mut shared = self.shared.lock();
                // Chaos: refill from the back sometimes, reversing the
                // rough-FIFO drain order for a whole chunk.
                match &self.chaos {
                    Some(c) if c.refill_index(2) == 0 => shared.pop_back(),
                    _ => shared.pop_front(),
                }
            };
            if let Some(mut chunk) = refilled {
                chunk.items.reverse();
                local.pop = chunk;
                continue;
            }
            // Fall back to this thread's partially filled push chunk.
            if !local.push.items.is_empty() {
                let mut chunk = std::mem::replace(&mut local.push, Chunk::new());
                chunk.items.reverse();
                local.pop = chunk;
                continue;
            }
            drop(local);
            // Steal a partially filled chunk from another thread.
            let threads = self.locals.len();
            if let Some(c) = &self.chaos {
                for victim in c.steal_order(tid, threads) {
                    if let Some(item) = self.steal_from(victim) {
                        return Some(item);
                    }
                }
            } else {
                for victim in (tid + 1..threads).chain(0..tid) {
                    if let Some(item) = self.steal_from(victim) {
                        return Some(item);
                    }
                }
            }
            return None;
        }
    }

    /// One steal attempt against `victim`'s local chunks (`None` when the
    /// victim is busy or empty).
    fn steal_from(&self, victim: usize) -> Option<T> {
        let mut other = self.locals.get(victim).try_lock()?;
        if let Some(item) = other.pop.items.pop() {
            self.approx_len.fetch_sub(1, Ordering::Relaxed);
            return Some(item);
        }
        if !other.push.items.is_empty() {
            let item = other.push.items.remove(0);
            self.approx_len.fetch_sub(1, Ordering::Relaxed);
            return Some(item);
        }
        None
    }

    /// Approximate number of items (racy; for sizing hints only).
    pub fn approx_len(&self) -> usize {
        self.approx_len.load(Ordering::Relaxed)
    }
}

/// A bucketed priority worklist (a simplified OBIM, the "ordered by
/// integer metric" scheduler of the Galois runtime).
///
/// Tasks carry a small integer priority; pops prefer the lowest non-empty
/// bucket. Priorities are *scheduling hints*, not ordering guarantees:
/// under concurrency a pop may return work from a slightly higher bucket —
/// exactly OBIM's contract, and why label-correcting algorithms (sssp,
/// bfs-by-level) run near their sequential work bound without determinism.
pub struct BucketedQueue<T> {
    buckets: Vec<ChunkedFifo<T>>,
    /// Lower bound on the first non-empty bucket (monotone hint).
    cursor: AtomicUsize,
}

impl<T> std::fmt::Debug for BucketedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BucketedQueue")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

impl<T: Send> BucketedQueue<T> {
    /// Creates a queue with `buckets` priority levels for `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn new(threads: usize, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        BucketedQueue {
            buckets: (0..buckets).map(|_| ChunkedFifo::new(threads)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Number of priority levels.
    pub fn levels(&self) -> usize {
        self.buckets.len()
    }

    /// Inserts `item` at `priority` (clamped to the last bucket).
    pub fn push(&self, tid: usize, priority: usize, item: T) {
        let b = priority.min(self.buckets.len() - 1);
        self.buckets[b].push(tid, item);
        // Lower the cursor hint if we pushed below it.
        let mut cur = self.cursor.load(Ordering::Relaxed);
        while b < cur {
            match self
                .cursor
                .compare_exchange_weak(cur, b, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Removes an item from the lowest non-empty bucket found.
    pub fn pop(&self, tid: usize) -> Option<T> {
        let start = self
            .cursor
            .load(Ordering::Relaxed)
            .min(self.buckets.len() - 1);
        for b in start..self.buckets.len() {
            if let Some(item) = self.buckets[b].pop(tid) {
                // Advance the hint past drained buckets (racy; a lower push
                // will pull it back down).
                if b > start {
                    let _ = self.cursor.compare_exchange(
                        start,
                        b,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                }
                return Some(item);
            }
        }
        // The hint may have skipped buckets that were refilled below it.
        for b in 0..start {
            if let Some(item) = self.buckets[b].pop(tid) {
                return Some(item);
            }
        }
        None
    }
}

/// Termination detection for speculative executors.
///
/// Tracks the number of *uncommitted* tasks: a task is registered when pushed
/// and deregistered only when it commits. Conflicted tasks are re-pushed
/// without deregistering, so the count reaches zero exactly when every task
/// has committed — the termination condition of Figure 1a.
///
/// # Example
///
/// ```
/// use galois_runtime::worklist::Terminator;
/// let t = Terminator::new();
/// t.register(2);
/// t.finish_one();
/// assert!(!t.is_done());
/// t.finish_one();
/// assert!(t.is_done());
/// ```
#[derive(Debug, Default)]
pub struct Terminator {
    pending: AtomicUsize,
}

impl Terminator {
    /// Creates a detector with zero pending tasks.
    pub fn new() -> Self {
        Terminator::default()
    }

    /// Records `n` new pending tasks.
    pub fn register(&self, n: usize) {
        self.pending.fetch_add(n, Ordering::AcqRel);
    }

    /// Records one committed task.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if there was no pending task.
    pub fn finish_one(&self) {
        let prev = self.pending.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "finish_one without matching register");
    }

    /// Whether all registered tasks have committed.
    pub fn is_done(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }

    /// Current number of uncommitted tasks (racy snapshot).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_on_threads;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn push_pop_round_trips_all_items() {
        let bag: ChunkedBag<usize> = ChunkedBag::new(1);
        for i in 0..1000 {
            bag.push(0, i);
        }
        let mut seen = HashSet::new();
        while let Some(x) = bag.pop(0) {
            assert!(seen.insert(x), "duplicate item {x}");
        }
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn cross_thread_stealing_finds_items() {
        let bag: ChunkedBag<usize> = ChunkedBag::new(4);
        // All pushed from thread 0, popped from thread 3.
        for i in 0..200 {
            bag.push(0, i);
        }
        let mut n = 0;
        while bag.pop(3).is_some() {
            n += 1;
        }
        assert_eq!(n, 200);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 500;
        let bag: ChunkedBag<usize> = ChunkedBag::new(THREADS);
        let seen = StdMutex::new(HashSet::new());
        run_on_threads(THREADS, |tid| {
            for i in 0..PER_THREAD {
                bag.push(tid, tid * PER_THREAD + i);
            }
            // Everyone also consumes.
            while let Some(x) = bag.pop(tid) {
                assert!(seen.lock().unwrap().insert(x));
            }
        });
        // Drain any remainder left by racy pops returning None early.
        while let Some(x) = bag.pop(0) {
            assert!(seen.lock().unwrap().insert(x));
        }
        assert_eq!(seen.lock().unwrap().len(), THREADS * PER_THREAD);
    }

    #[test]
    fn approx_len_tracks_roughly() {
        let bag: ChunkedBag<u8> = ChunkedBag::new(1);
        assert_eq!(bag.approx_len(), 0);
        bag.push_all(0, [1, 2, 3]);
        assert_eq!(bag.approx_len(), 3);
        bag.pop(0);
        assert_eq!(bag.approx_len(), 2);
    }

    #[test]
    fn fifo_preserves_rough_order_single_thread() {
        let q: ChunkedFifo<usize> = ChunkedFifo::new(1);
        for i in 0..300 {
            q.push(0, i);
        }
        let mut out = Vec::new();
        while let Some(x) = q.pop(0) {
            out.push(x);
        }
        assert_eq!(out.len(), 300);
        // Exactly FIFO for a single producer/consumer.
        assert_eq!(out, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_concurrent_loses_nothing() {
        const THREADS: usize = 4;
        let q: ChunkedFifo<usize> = ChunkedFifo::new(THREADS);
        let seen = StdMutex::new(HashSet::new());
        run_on_threads(THREADS, |tid| {
            for i in 0..500 {
                q.push(tid, tid * 500 + i);
            }
            while let Some(x) = q.pop(tid) {
                assert!(seen.lock().unwrap().insert(x));
            }
        });
        while let Some(x) = q.pop(0) {
            assert!(seen.lock().unwrap().insert(x));
        }
        assert_eq!(seen.lock().unwrap().len(), THREADS * 500);
    }

    #[test]
    fn bucketed_prefers_low_priorities() {
        let q: BucketedQueue<u32> = BucketedQueue::new(1, 8);
        q.push(0, 5, 50);
        q.push(0, 1, 10);
        q.push(0, 3, 30);
        assert_eq!(q.pop(0), Some(10));
        assert_eq!(q.pop(0), Some(30));
        assert_eq!(q.pop(0), Some(50));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn bucketed_clamps_and_refills_below_cursor() {
        let q: BucketedQueue<u32> = BucketedQueue::new(1, 4);
        q.push(0, 99, 1); // clamped to bucket 3
        assert_eq!(q.pop(0), Some(1));
        // Cursor advanced; a new low-priority push must still be found.
        q.push(0, 0, 2);
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.levels(), 4);
    }

    #[test]
    fn bucketed_concurrent_drains_everything() {
        const THREADS: usize = 4;
        let q: BucketedQueue<usize> = BucketedQueue::new(THREADS, 16);
        let seen = StdMutex::new(HashSet::new());
        run_on_threads(THREADS, |tid| {
            for i in 0..400 {
                q.push(tid, i % 16, tid * 400 + i);
            }
            while let Some(x) = q.pop(tid) {
                assert!(seen.lock().unwrap().insert(x));
            }
        });
        while let Some(x) = q.pop(0) {
            assert!(seen.lock().unwrap().insert(x));
        }
        assert_eq!(seen.lock().unwrap().len(), THREADS * 400);
    }

    #[test]
    fn chaos_bag_loses_nothing() {
        const THREADS: usize = 4;
        let chaos = Arc::new(ChaosPolicy::new(2024));
        let bag: ChunkedBag<usize> = ChunkedBag::with_chaos(THREADS, Some(chaos));
        let seen = StdMutex::new(HashSet::new());
        run_on_threads(THREADS, |tid| {
            for i in 0..500 {
                bag.push(tid, tid * 500 + i);
            }
            while let Some(x) = bag.pop(tid) {
                assert!(seen.lock().unwrap().insert(x));
            }
        });
        while let Some(x) = bag.pop(0) {
            assert!(seen.lock().unwrap().insert(x));
        }
        assert_eq!(seen.lock().unwrap().len(), THREADS * 500);
    }

    #[test]
    fn chaos_fifo_loses_nothing() {
        const THREADS: usize = 4;
        let chaos = Arc::new(ChaosPolicy::new(31));
        let q: ChunkedFifo<usize> = ChunkedFifo::with_chaos(THREADS, Some(chaos));
        let seen = StdMutex::new(HashSet::new());
        run_on_threads(THREADS, |tid| {
            for i in 0..500 {
                q.push(tid, tid * 500 + i);
            }
            while let Some(x) = q.pop(tid) {
                assert!(seen.lock().unwrap().insert(x));
            }
        });
        while let Some(x) = q.pop(0) {
            assert!(seen.lock().unwrap().insert(x));
        }
        assert_eq!(seen.lock().unwrap().len(), THREADS * 500);
    }

    #[test]
    fn terminator_lifecycle() {
        let t = Terminator::new();
        assert!(t.is_done());
        t.register(3);
        assert_eq!(t.pending(), 3);
        t.finish_one();
        t.finish_one();
        assert!(!t.is_done());
        t.finish_one();
        assert!(t.is_done());
    }
}
