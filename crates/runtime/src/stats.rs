//! Execution statistics.
//!
//! The paper's characterization figures (4 and 5) report committed tasks per
//! microsecond, abort ratios, atomic-update rates and round counts. Executors
//! accumulate these in per-thread [`ThreadStats`] (no cross-thread traffic on
//! the hot path) and merge them into an [`ExecStats`] at the end of a run.

use std::time::Duration;

/// Per-thread statistics, owned exclusively by one worker during execution.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ThreadStats {
    /// Tasks that executed to completion and committed.
    pub committed: u64,
    /// Task attempts abandoned due to a conflict.
    pub aborted: u64,
    /// Atomic read-modify-write operations issued (mark CASes, priority
    /// writes, application-level atomics routed through the runtime).
    pub atomic_updates: u64,
    /// Inspect-phase executions (deterministic scheduler only).
    pub inspected: u64,
    /// Per-location mark-release CASes issued (speculative executor only;
    /// deterministic rounds retire marks by epoch and must report zero).
    pub mark_releases: u64,
    /// Per-location release CASes the deterministic scheduler *avoided* by
    /// retiring whole rounds with an epoch bump (one tally per neighborhood
    /// location per attempted task).
    pub releases_avoided: u64,
    /// Spurious aborts forced by a chaos policy at the failsafe point. Kept
    /// separate from [`aborted`](Self::aborted), which counts only *real*
    /// conflicts, so abort-ratio assertions and the Figure 4 tables stay
    /// truthful under chaos injection.
    pub injected_aborts: u64,
    /// Tasks quarantined because their operator panicked before the
    /// failsafe point (fault containment). A quarantined task is rolled
    /// back like an abort but never retried; its payload and panic message
    /// are reported through the executor's error surface instead.
    pub quarantined: u64,
}

impl ThreadStats {
    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &ThreadStats) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.atomic_updates += other.atomic_updates;
        self.inspected += other.inspected;
        self.mark_releases += other.mark_releases;
        self.releases_avoided += other.releases_avoided;
        self.injected_aborts += other.injected_aborts;
        self.quarantined += other.quarantined;
    }
}

/// Aggregate statistics for one parallel execution.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ExecStats {
    /// Sum of all threads' committed counts.
    pub committed: u64,
    /// Sum of all threads' aborted counts.
    pub aborted: u64,
    /// Sum of all threads' atomic update counts.
    pub atomic_updates: u64,
    /// Inspect-phase executions (zero for non-deterministic runs).
    pub inspected: u64,
    /// Rounds executed (zero for non-deterministic runs).
    pub rounds: u64,
    /// Per-location mark-release CASes issued (speculative executor only;
    /// zero for deterministic runs — their acceptance criterion).
    pub mark_releases: u64,
    /// Release CASes avoided by epoch-retiring whole rounds (deterministic
    /// runs only).
    pub releases_avoided: u64,
    /// Chaos-forced spurious aborts, excluded from [`abort_ratio`]
    /// (see [`Self::abort_ratio`]): `aborted` stays real-conflicts-only.
    /// Seed-dependent, so excluded from canonical fingerprints too.
    pub injected_aborts: u64,
    /// Initial tasks silently dropped because their pre-assigned id
    /// duplicated an earlier task's (see `Executor::run_with_ids`). Non-zero
    /// values usually indicate an unintended id collision in the caller's id
    /// function.
    pub dedup_dropped: u64,
    /// Tasks quarantined after an operator panic (fault containment). A run
    /// with a non-zero quarantine count surfaces `ExecError::OperatorPanic`
    /// through `try_run`; the counter records how many tasks were contained
    /// before the run drained.
    pub quarantined: u64,
    /// Barrier poisonings observed: non-zero only when a panic escaped the
    /// containment layer (an executor bug or a post-failsafe fault) and the
    /// pool had to poison the round barrier to release peer workers.
    pub barrier_poisons: u64,
    /// Wall-clock duration of the parallel section.
    pub elapsed: Duration,
    /// Number of worker threads used.
    pub threads: usize,
}

impl ExecStats {
    /// Builds aggregate stats from per-thread stats.
    pub fn from_threads<'a>(threads: impl IntoIterator<Item = &'a ThreadStats>) -> Self {
        let mut total = ThreadStats::default();
        let mut n = 0;
        for t in threads {
            total.merge(t);
            n += 1;
        }
        ExecStats {
            committed: total.committed,
            aborted: total.aborted,
            atomic_updates: total.atomic_updates,
            inspected: total.inspected,
            rounds: 0,
            mark_releases: total.mark_releases,
            releases_avoided: total.releases_avoided,
            injected_aborts: total.injected_aborts,
            dedup_dropped: 0,
            quarantined: total.quarantined,
            barrier_poisons: 0,
            elapsed: Duration::ZERO,
            threads: n,
        }
    }

    /// Fraction of task attempts that aborted: `aborted / (aborted + committed)`.
    ///
    /// Returns 0.0 when no tasks ran. This is the "abort ratio" of Figure 4.
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.aborted + self.committed;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// Committed tasks per microsecond of wall-clock time (Figure 4).
    pub fn commit_rate_per_us(&self) -> f64 {
        let us = self.elapsed.as_secs_f64() * 1e6;
        if us == 0.0 {
            0.0
        } else {
            self.committed as f64 / us
        }
    }

    /// Atomic updates per microsecond of wall-clock time (Figure 5).
    pub fn atomic_rate_per_us(&self) -> f64 {
        let us = self.elapsed.as_secs_f64() * 1e6;
        if us == 0.0 {
            0.0
        } else {
            self.atomic_updates as f64 / us
        }
    }
}

impl std::fmt::Display for ExecStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "committed={} aborted={} (ratio {:.4}) atomics={} rounds={} \
             mark_releases={} releases_avoided={} injected_aborts={} \
             dedup_dropped={} quarantined={} barrier_poisons={} \
             threads={} elapsed={:?}",
            self.committed,
            self.aborted,
            self.abort_ratio(),
            self.atomic_updates,
            self.rounds,
            self.mark_releases,
            self.releases_avoided,
            self.injected_aborts,
            self.dedup_dropped,
            self.quarantined,
            self.barrier_poisons,
            self.threads,
            self.elapsed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = ThreadStats {
            committed: 1,
            aborted: 2,
            atomic_updates: 3,
            inspected: 4,
            mark_releases: 5,
            releases_avoided: 6,
            injected_aborts: 7,
            quarantined: 8,
        };
        let b = ThreadStats {
            committed: 10,
            aborted: 20,
            atomic_updates: 30,
            inspected: 40,
            mark_releases: 50,
            releases_avoided: 60,
            injected_aborts: 70,
            quarantined: 80,
        };
        a.merge(&b);
        assert_eq!(a.committed, 11);
        assert_eq!(a.aborted, 22);
        assert_eq!(a.atomic_updates, 33);
        assert_eq!(a.inspected, 44);
        assert_eq!(a.mark_releases, 55);
        assert_eq!(a.releases_avoided, 66);
        assert_eq!(a.injected_aborts, 77);
        assert_eq!(a.quarantined, 88);
    }

    #[test]
    fn from_threads_aggregates() {
        let per = [
            ThreadStats {
                committed: 5,
                aborted: 1,
                ..Default::default()
            },
            ThreadStats {
                committed: 7,
                aborted: 0,
                ..Default::default()
            },
        ];
        let agg = ExecStats::from_threads(per.iter());
        assert_eq!(agg.committed, 12);
        assert_eq!(agg.aborted, 1);
        assert_eq!(agg.threads, 2);
    }

    #[test]
    fn abort_ratio_edges() {
        let mut s = ExecStats::default();
        assert_eq!(s.abort_ratio(), 0.0);
        s.committed = 3;
        s.aborted = 1;
        assert!((s.abort_ratio() - 0.25).abs() < 1e-12);
        // Injected aborts are spurious: they must not move the ratio.
        s.injected_aborts = 1_000;
        assert!((s.abort_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rates_use_elapsed() {
        let s = ExecStats {
            committed: 1_000,
            atomic_updates: 2_000,
            elapsed: Duration::from_millis(1),
            ..Default::default()
        };
        assert!((s.commit_rate_per_us() - 1.0).abs() < 1e-9);
        assert!((s.atomic_rate_per_us() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elapsed_rates_are_zero() {
        let s = ExecStats {
            committed: 10,
            ..Default::default()
        };
        assert_eq!(s.commit_rate_per_us(), 0.0);
        assert_eq!(s.atomic_rate_per_us(), 0.0);
    }

    #[test]
    fn display_reports_every_counter() {
        let s = ExecStats {
            mark_releases: 7,
            releases_avoided: 11,
            injected_aborts: 5,
            dedup_dropped: 3,
            quarantined: 2,
            barrier_poisons: 1,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("committed=0"));
        assert!(text.contains("mark_releases=7"));
        assert!(text.contains("releases_avoided=11"));
        assert!(text.contains("injected_aborts=5"));
        assert!(text.contains("dedup_dropped=3"));
        assert!(text.contains("quarantined=2"));
        assert!(text.contains("barrier_poisons=1"));
    }

    #[test]
    fn from_threads_sums_quarantined() {
        let per = [
            ThreadStats {
                quarantined: 2,
                ..Default::default()
            },
            ThreadStats {
                quarantined: 3,
                ..Default::default()
            },
        ];
        let agg = ExecStats::from_threads(per.iter());
        assert_eq!(agg.quarantined, 5);
        assert_eq!(agg.barrier_poisons, 0);
    }
}
