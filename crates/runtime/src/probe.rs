//! Round-level observability: the [`Probe`] trait and the [`RoundLog`]
//! recorder.
//!
//! The paper's entire evaluation (§4, Figures 4–10) is built from
//! *per-round* quantities — commit ratio per round, adaptive window size,
//! inspect/commit phase costs, serial leader fraction — and deterministic
//! execution's headline payoff is that this schedule is worth observing: it
//! is the same schedule on every machine. A [`Probe`] receives one
//! [`RoundRecord`] per deterministic round (or per speculative epoch) and
//! may do anything with it; [`RoundLog`] is the standard implementation that
//! stores records and serializes them.
//!
//! # Zero cost when off
//!
//! Executors carry an `Option<&mut dyn Probe>`. When it is `None`:
//!
//! - no `RoundRecord` is built and no probe method is called;
//! - no conflict locations are collected (collection is gated on
//!   [`Probe::wants_conflicts`], which is only consulted when a probe is
//!   attached);
//! - no extra timers run and — the tested invariant — **no atomic
//!   operations are added to the hot path**: a run with no probe reports
//!   the same `atomic_updates` count as one that predates this layer.
//!
//! # The round log as a portability oracle
//!
//! Every schedule-derived field of a [`RoundRecord`] (round index, window
//! size, attempted/committed/failed counts, conflict attribution) is a pure
//! function of committed-task history under deterministic scheduling, so the
//! **canonical serialization** ([`RoundLog::canonical_jsonl`]) is
//! byte-identical for every thread count. Two runs that should agree can be
//! compared log line by log line: the first differing line names the exact
//! round — and the exact abstract locations — where they diverged. Timing
//! fields are wall-clock and therefore excluded from the canonical form;
//! [`RoundLog::jsonl_with_timing`] includes them for profiling.
//!
//! # Abort attribution
//!
//! During the deterministic inspect phase, every `writeMarkMax` that loses
//! to (or displaces) another task pinpoints one abstract location on an
//! interference-graph edge. For `k` round-mates touching a location, exactly
//! `k - 1` such events occur regardless of interleaving, so per-location
//! conflict counts are schedule-deterministic. The top-K locations by count
//! are recorded per round — the abstract locations that serialized the
//! round — with truncation at a count-class boundary (see
//! [`attribute_conflicts`]) so the reported set stays deterministic even
//! when location ids themselves are allocation-ordered arena names.

use crate::stats::ExecStats;

/// Default number of top conflicting locations attributed per round.
pub const DEFAULT_CONFLICT_TOP_K: usize = 8;

/// One deterministic round (or speculative epoch) as observed by a probe.
///
/// Schedule-derived fields (everything except the `*_ns` timings) are
/// deterministic under DIG scheduling: identical for every thread count and
/// machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundRecord {
    /// Round index within the run (epoch index for speculative runs).
    pub round: u64,
    /// Adaptive window size when the round was carved (may exceed
    /// `attempted` when the pending sequence ran short). For speculative
    /// epochs this is the epoch quantum.
    pub window: u64,
    /// Tasks inspected/attempted in the round.
    pub attempted: u64,
    /// Tasks that belonged to the deterministic independent set and
    /// committed.
    pub committed: u64,
    /// Tasks deferred to a later round (`attempted - committed`).
    pub failed: u64,
    /// Top-K `(location, conflict count)` pairs, ordered by count
    /// descending then location ascending — the abort attribution.
    pub conflicts: Vec<(u32, u64)>,
    /// Inspect-phase wall-clock work, summed over threads (0 when timing is
    /// off).
    pub inspect_ns: f64,
    /// Commit-phase wall-clock work, summed over threads (0 when timing is
    /// off).
    pub commit_ns: f64,
    /// Leader-serial time closing this round: output merge, failed-task
    /// write-back, window carve (0 when timing is off).
    pub serial_ns: f64,
}

impl RoundRecord {
    /// Commit ratio of the round (1.0 for an empty round).
    pub fn commit_ratio(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.committed as f64 / self.attempted as f64
        }
    }

    /// Canonical JSON object: schedule-derived fields only, fixed key
    /// order, no whitespace — byte-identical across thread counts for
    /// deterministic runs.
    pub fn canonical_json(&self) -> String {
        let mut s = format!(
            "{{\"round\":{},\"window\":{},\"attempted\":{},\"committed\":{},\"failed\":{},\"conflicts\":[",
            self.round, self.window, self.attempted, self.committed, self.failed
        );
        for (i, (loc, n)) in self.conflicts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{loc},{n}]"));
        }
        s.push_str("]}");
        s
    }

    /// JSON object including wall-clock timing fields (not canonical: the
    /// timings differ run to run).
    pub fn json_with_timing(&self) -> String {
        let canon = self.canonical_json();
        let body = &canon[..canon.len() - 1]; // strip the closing brace
        format!(
            "{body},\"inspect_ns\":{:.0},\"commit_ns\":{:.0},\"serial_ns\":{:.0}}}",
            self.inspect_ns, self.commit_ns, self.serial_ns
        )
    }
}

/// Observer of per-round scheduler behavior.
///
/// Implementations receive one [`RoundRecord`] per deterministic round (in
/// round order, from the leader thread between barriers) or per speculative
/// epoch (after the parallel section, in epoch order). All methods have
/// defaults so a probe can implement only what it needs.
pub trait Probe: Send {
    /// Whether the executor should collect per-conflict abstract locations
    /// (one `Vec` push per losing mark write). Return `false` to skip
    /// attribution and keep only the counts.
    fn wants_conflicts(&self) -> bool {
        true
    }

    /// Whether the executor should run per-phase wall-clock timers.
    fn wants_timing(&self) -> bool {
        true
    }

    /// How many top conflicting locations to attribute per round.
    fn conflict_top_k(&self) -> usize {
        DEFAULT_CONFLICT_TOP_K
    }

    /// Called once per completed round/epoch, in order.
    fn on_round(&mut self, record: RoundRecord);

    /// Called once when the run finishes, with the aggregated stats.
    fn on_finish(&mut self, _stats: &ExecStats) {}
}

/// The standard probe: records every round into memory.
///
/// Serialize with [`RoundLog::canonical_jsonl`] (the portability oracle) or
/// [`RoundLog::jsonl_with_timing`] (profiling).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundLog {
    records: Vec<RoundRecord>,
    final_stats: Option<ExecStats>,
}

impl RoundLog {
    /// An empty log.
    pub fn new() -> Self {
        RoundLog::default()
    }

    /// The recorded rounds, in round order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Consumes the log, yielding the recorded rounds (for merging logs
    /// from multi-pass runs into one).
    pub fn into_records(self) -> Vec<RoundRecord> {
        self.records
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Aggregated run stats, when the run has finished.
    pub fn final_stats(&self) -> Option<&ExecStats> {
        self.final_stats.as_ref()
    }

    /// Clears the log for reuse across runs.
    pub fn clear(&mut self) {
        self.records.clear();
        self.final_stats = None;
    }

    /// One canonical JSON line per round (schedule-derived fields only):
    /// byte-identical across thread counts for deterministic runs.
    pub fn canonical_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.canonical_json());
            out.push('\n');
        }
        out
    }

    /// One JSON line per round including wall-clock timings.
    pub fn jsonl_with_timing(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.json_with_timing());
            out.push('\n');
        }
        out
    }

    /// Sum of leader-serial nanoseconds over all rounds.
    pub fn total_serial_ns(&self) -> f64 {
        self.records.iter().map(|r| r.serial_ns).sum()
    }
}

impl Probe for RoundLog {
    fn on_round(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    fn on_finish(&mut self, stats: &ExecStats) {
        self.final_stats = Some(stats.clone());
    }
}

/// Folds a flat list of conflict locations into the deterministic top-K
/// `(location, count)` attribution: counts per location, ordered by count
/// descending then location ascending, truncated to at most `k`.
///
/// The input order is irrelevant (counts are order-insensitive), which is
/// what keeps the attribution thread-count independent. Sorts `locs` in
/// place as scratch.
///
/// Truncation happens at a *count-class boundary*: when more than `k`
/// locations conflicted, every location tied with the first excluded one is
/// excluded too. Cutting mid-tie would have to pick survivors by location
/// id — and applications whose locations are arena slots (dmr, dt) assign
/// those ids by allocation order, so a mid-tie cut would make the reported
/// set depend on the thread count. Class-boundary truncation keeps the
/// attribution a pure function of the per-location counts, invariant under
/// any renaming of the location space.
pub fn attribute_conflicts(locs: &mut [u32], k: usize) -> Vec<(u32, u64)> {
    if locs.is_empty() || k == 0 {
        return Vec::new();
    }
    locs.sort_unstable();
    let mut counts: Vec<(u32, u64)> = Vec::new();
    for &loc in locs.iter() {
        match counts.last_mut() {
            Some((l, n)) if *l == loc => *n += 1,
            _ => counts.push((loc, 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    if counts.len() > k {
        let cutoff = counts[k].1;
        counts.retain(|&(_, n)| n > cutoff);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RoundRecord {
        RoundRecord {
            round: 3,
            window: 32,
            attempted: 32,
            committed: 30,
            failed: 2,
            conflicts: vec![(7, 4), (2, 1)],
            inspect_ns: 1234.5,
            commit_ns: 2345.5,
            serial_ns: 99.9,
        }
    }

    #[test]
    fn canonical_json_is_fixed_order_and_timing_free() {
        let j = record().canonical_json();
        assert_eq!(
            j,
            "{\"round\":3,\"window\":32,\"attempted\":32,\"committed\":30,\
             \"failed\":2,\"conflicts\":[[7,4],[2,1]]}"
                .replace(" ", "")
        );
        assert!(!j.contains("ns"));
    }

    #[test]
    fn timing_json_extends_canonical() {
        let r = record();
        let j = r.json_with_timing();
        assert!(j.starts_with(&r.canonical_json()[..r.canonical_json().len() - 1]));
        assert!(j.contains("\"commit_ns\":2346"));
        assert!(j.contains("\"serial_ns\":100"));
    }

    #[test]
    fn commit_ratio_edges() {
        assert_eq!(RoundRecord::default().commit_ratio(), 1.0);
        let r = record();
        assert!((r.commit_ratio() - 30.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn round_log_records_in_order() {
        let mut log = RoundLog::new();
        assert!(log.is_empty());
        for i in 0..3 {
            log.on_round(RoundRecord {
                round: i,
                ..Default::default()
            });
        }
        log.on_finish(&ExecStats::default());
        assert_eq!(log.len(), 3);
        assert!(log.final_stats().is_some());
        let jsonl = log.canonical_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].starts_with("{\"round\":2,"));
        log.clear();
        assert!(log.is_empty() && log.final_stats().is_none());
    }

    #[test]
    fn attribution_counts_sorts_and_truncates() {
        let mut locs = vec![5u32, 1, 5, 9, 1, 5, 9, 2];
        let top = attribute_conflicts(&mut locs, 3);
        assert_eq!(top, vec![(5, 3), (1, 2), (9, 2)]);
        let mut empty = Vec::new();
        assert!(attribute_conflicts(&mut empty, 3).is_empty());
        let mut some = vec![1u32];
        assert!(attribute_conflicts(&mut some, 0).is_empty());
    }

    #[test]
    fn attribution_is_order_insensitive() {
        let mut a = vec![3u32, 1, 3, 2, 1, 3];
        let mut b = vec![1u32, 3, 2, 3, 1, 3];
        assert_eq!(
            attribute_conflicts(&mut a, 8),
            attribute_conflicts(&mut b, 8)
        );
    }

    #[test]
    fn tie_break_is_by_location_id() {
        let mut locs = vec![9u32, 4, 9, 4];
        assert_eq!(attribute_conflicts(&mut locs, 2), vec![(4, 2), (9, 2)]);
    }

    #[test]
    fn truncation_drops_partial_count_classes() {
        // counts: 7 -> 3, then four locations tied at count 1; k = 2 would
        // cut the count-1 class mid-tie, so the whole class is dropped.
        let mut locs = vec![7u32, 7, 7, 1, 2, 3, 4];
        assert_eq!(attribute_conflicts(&mut locs, 2), vec![(7, 3)]);
        // A clean class boundary at k keeps exactly k.
        let mut locs = vec![7u32, 7, 7, 5, 5, 1];
        assert_eq!(attribute_conflicts(&mut locs, 2), vec![(7, 3), (5, 2)]);
    }
}
