//! Scoped thread pool.
//!
//! The Galois executors are bulk-synchronous: a parallel phase consists of the
//! same worker closure running once on every thread, with the thread id
//! (`tid`) selecting that thread's share of the work. [`run_on_threads`] is
//! the only primitive needed; it is a thin wrapper over [`std::thread::scope`]
//! so workers may borrow from the caller's stack.

use crate::chaos::ChaosPolicy;

/// Runs `f(tid)` once on each of `threads` threads and waits for all of them.
///
/// Thread ids are `0..threads`. With `threads == 1` the closure runs on the
/// calling thread, which keeps single-threaded runs free of spawn overhead
/// (and makes them easy to profile and trace).
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates the first worker panic — with its
/// original payload — after all workers have been joined.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let sum = AtomicU64::new(0);
/// galois_runtime::pool::run_on_threads(3, |tid| {
///     sum.fetch_add(tid as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 0 + 1 + 2);
/// ```
pub fn run_on_threads<F>(threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    run_on_threads_chaos(threads, None, f)
}

/// [`run_on_threads`] with an optional per-thread start skew drawn from a
/// [`ChaosPolicy`].
///
/// With a policy installed, each worker burns a drawn spin budget before
/// entering `f`, staggering thread start order adversarially (schedulers that
/// are schedule-invariant must not care which thread reaches the first
/// barrier first). With `None` this is exactly [`run_on_threads`].
pub fn run_on_threads_chaos<F>(threads: usize, chaos: Option<&ChaosPolicy>, f: F)
where
    F: Fn(usize) + Sync,
{
    run_on_threads_fault(threads, chaos, None, f)
}

/// [`run_on_threads_chaos`] with a fault hook that fires *before* a
/// panicking worker starts unwinding out of the pool.
///
/// Each worker (including tid 0 on the calling thread) runs under
/// [`std::panic::catch_unwind`]; on a panic the pool invokes `on_panic`
/// and then resumes the unwind, so [`std::thread::scope`] still joins
/// every worker and propagates the first panic to the caller.
///
/// The hook is the pool's deadlock escape hatch: executors pass a closure
/// that poisons their [`crate::SenseBarrier`] (or trips a halt flag), so
/// peers blocked waiting for the dead worker release and drain instead of
/// spinning forever. The hook may run concurrently on several threads and
/// must be idempotent.
pub fn run_on_threads_fault<F>(
    threads: usize,
    chaos: Option<&ChaosPolicy>,
    on_panic: Option<&(dyn Fn() + Sync)>,
    f: F,
) where
    F: Fn(usize) + Sync,
{
    assert!(threads > 0, "thread count must be positive");
    let guarded = |tid: usize| {
        if on_panic.is_none() {
            return f(tid);
        }
        // AssertUnwindSafe: on panic the closure's borrows are only touched
        // again by the hook/drain path, which treats the run as faulted.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(tid))) {
            Ok(()) => {}
            Err(payload) => {
                if let Some(hook) = on_panic {
                    hook();
                }
                std::panic::resume_unwind(payload);
            }
        }
    };
    if threads == 1 {
        guarded(0);
        return;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..threads)
            .map(|tid| {
                let guarded = &guarded;
                scope.spawn(move || {
                    if let Some(c) = chaos {
                        ChaosPolicy::spin(c.start_skew_spins(tid));
                    }
                    guarded(tid)
                })
            })
            .collect();
        if let Some(c) = chaos {
            ChaosPolicy::spin(c.start_skew_spins(0));
        }
        guarded(0);
        // Join explicitly and re-raise the *original* payload of the first
        // (lowest-tid) faulted worker. Leaving the join to the scope's drop
        // would replace it with the opaque "a scoped thread panicked",
        // destroying the panic message that the fault-containment layer
        // promises to report. All workers are joined before re-raising, so
        // shutdown stays bounded even with several faults in flight.
        let mut first_fault = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_fault.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_fault {
            std::panic::resume_unwind(payload);
        }
    });
}

/// Splits `0..len` into `threads` near-equal contiguous ranges and returns the
/// range owned by `tid`.
///
/// The first `len % threads` ranges are one element longer, so the ranges
/// partition `0..len` exactly. This is the standard static work division used
/// by the bulk-synchronous phases of the deterministic executor; determinism
/// does not depend on it (any partition works), but static division keeps
/// single-thread traces reproducible.
///
/// # Example
///
/// ```
/// use galois_runtime::pool::chunk_range;
/// assert_eq!(chunk_range(10, 3, 0), 0..4);
/// assert_eq!(chunk_range(10, 3, 1), 4..7);
/// assert_eq!(chunk_range(10, 3, 2), 7..10);
/// ```
pub fn chunk_range(len: usize, threads: usize, tid: usize) -> std::ops::Range<usize> {
    assert!(
        tid < threads,
        "tid {tid} out of range for {threads} threads"
    );
    let base = len / threads;
    let extra = len % threads;
    let start = tid * base + tid.min(extra);
    let size = base + usize::from(tid < extra);
    start..(start + size).min(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_each_tid_once() {
        let seen = [const { AtomicUsize::new(0) }; 8];
        run_on_threads(8, |tid| {
            seen[tid].fetch_add(1, Ordering::Relaxed);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let here = std::thread::current().id();
        run_on_threads(1, |tid| {
            assert_eq!(tid, 0);
            assert_eq!(std::thread::current().id(), here);
        });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_panics() {
        run_on_threads(0, |_| {});
    }

    #[test]
    fn chaos_skew_still_runs_every_tid_once() {
        let chaos = crate::chaos::ChaosPolicy::new(1234);
        let seen = [const { AtomicUsize::new(0) }; 4];
        run_on_threads_chaos(4, Some(&chaos), |tid| {
            seen[tid].fetch_add(1, Ordering::Relaxed);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn fault_hook_fires_before_unwind_propagates() {
        let fired = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_on_threads_fault(
                4,
                None,
                Some(&|| {
                    fired.fetch_add(1, Ordering::Relaxed);
                }),
                |tid| {
                    if tid == 2 {
                        panic!("worker 2 dies");
                    }
                },
            );
        }));
        assert!(caught.is_err(), "the worker panic must propagate");
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fault_hook_fires_inline_on_one_thread() {
        let fired = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_on_threads_fault(
                1,
                None,
                Some(&|| {
                    fired.fetch_add(1, Ordering::Relaxed);
                }),
                |_| panic!("inline worker dies"),
            );
        }));
        assert!(caught.is_err());
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fault_runner_without_hook_matches_plain_runner() {
        let seen = [const { AtomicUsize::new(0) }; 4];
        run_on_threads_fault(4, None, None, |tid| {
            seen[tid].fetch_add(1, Ordering::Relaxed);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn chunks_partition_exactly() {
        for len in [0usize, 1, 5, 16, 17, 1000] {
            for threads in 1..=9 {
                let mut covered = 0;
                let mut prev_end = 0;
                for tid in 0..threads {
                    let r = chunk_range(len, threads, tid);
                    assert_eq!(r.start, prev_end, "ranges must be contiguous");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, len);
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        for len in [10usize, 100, 101, 7] {
            for threads in 1..=8 {
                let sizes: Vec<_> = (0..threads)
                    .map(|tid| chunk_range(len, threads, tid).len())
                    .collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "len={len} threads={threads}: {sizes:?}");
            }
        }
    }
}
