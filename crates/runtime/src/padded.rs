//! Cache-line padded cells and per-thread counters.
//!
//! Fine-grain parallel runtimes live and die by false sharing: a per-thread
//! counter that shares a cache line with its neighbor serializes the machine.
//! [`CachePadded`] aligns a value to a 128-byte boundary (two 64-byte lines,
//! covering adjacent-line prefetchers), and [`PerThread`] builds padded
//! per-thread slots on top of it.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Pads and aligns `T` to 128 bytes to avoid false sharing.
///
/// # Example
///
/// ```
/// use galois_runtime::padded::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// let c = CachePadded::new(AtomicU64::new(7));
/// assert_eq!(c.load(std::sync::atomic::Ordering::Relaxed), 7);
/// assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 128);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

/// One padded slot per thread.
///
/// This is the runtime's standard shape for per-thread mutable state that is
/// occasionally reduced across threads (statistics, push buffers, committed
/// counts). Each slot lives on its own cache line(s).
///
/// # Example
///
/// ```
/// use galois_runtime::padded::PerThread;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let counts: PerThread<AtomicU64> = PerThread::new(4, |_| AtomicU64::new(0));
/// counts.get(2).fetch_add(5, Ordering::Relaxed);
/// let total: u64 = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
/// assert_eq!(total, 5);
/// ```
#[derive(Debug)]
pub struct PerThread<T> {
    slots: Box<[CachePadded<T>]>,
}

impl<T> PerThread<T> {
    /// Creates `threads` slots, initializing slot `i` with `init(i)`.
    pub fn new(threads: usize, init: impl FnMut(usize) -> T) -> Self {
        let mut init = init;
        let slots: Vec<_> = (0..threads).map(|i| CachePadded::new(init(i))).collect();
        PerThread {
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Shared access to thread `tid`'s slot.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn get(&self, tid: usize) -> &T {
        &self.slots[tid]
    }

    /// Exclusive access to thread `tid`'s slot.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn get_mut(&mut self, tid: usize) -> &mut T {
        &mut self.slots[tid]
    }

    /// Iterates over all slots (by shared reference).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().map(|s| &s.value)
    }

    /// Iterates over all slots (by exclusive reference).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|s| &mut s.value)
    }
}

/// A relaxed, padded, per-thread event counter with a cross-thread total.
///
/// Used for the paper's atomic-update and commit/abort rates (Figures 4–5):
/// increments are thread-local relaxed stores, so counting does not perturb
/// the behaviour being measured.
#[derive(Debug)]
pub struct Counter {
    slots: PerThread<AtomicU64>,
}

impl Counter {
    /// Creates a counter with one padded slot per thread.
    pub fn new(threads: usize) -> Self {
        Counter {
            slots: PerThread::new(threads, |_| AtomicU64::new(0)),
        }
    }

    /// Adds `n` to thread `tid`'s slot.
    #[inline]
    pub fn add(&self, tid: usize, n: u64) {
        let slot = self.slots.get(tid);
        // Single-writer per slot: a relaxed read-modify-write never contends.
        slot.store(slot.load(Ordering::Relaxed) + n, Ordering::Relaxed);
    }

    /// Sums all slots.
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Resets all slots to zero.
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_on_threads;

    #[test]
    fn padding_alignment() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn per_thread_slots_are_independent() {
        let mut pt: PerThread<u64> = PerThread::new(3, |i| i as u64);
        assert_eq!(*pt.get(0), 0);
        assert_eq!(*pt.get(2), 2);
        *pt.get_mut(1) = 42;
        let all: Vec<_> = pt.iter().copied().collect();
        assert_eq!(all, vec![0, 42, 2]);
    }

    #[test]
    fn counter_totals_across_threads() {
        let c = Counter::new(4);
        run_on_threads(4, |tid| {
            for _ in 0..1000 {
                c.add(tid, 1);
            }
        });
        assert_eq!(c.total(), 4000);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn cache_padded_into_inner_roundtrip() {
        let p = CachePadded::new(String::from("x"));
        assert_eq!(p.into_inner(), "x");
    }

    #[test]
    #[should_panic]
    fn out_of_range_tid_panics() {
        let pt: PerThread<u64> = PerThread::new(2, |_| 0);
        let _ = pt.get(2);
    }
}
