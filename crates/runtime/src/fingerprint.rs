//! Canonical state fingerprints: the runtime's single hashing authority.
//!
//! Deterministic execution turns replication, record/replay and differential
//! testing into *hash comparison*: two runs that should agree are reduced to
//! one 64-bit value each, and disagreement names the exact round where the
//! schedules parted (Aviram & Ford, "Efficient System-Enforced Deterministic
//! Parallelism"). For that to work every consumer — the differential
//! harness, the `RunManifest` recorder, the replay verifier, the lockstep
//! cross-check — must hash **the same bytes the same way**. This module is
//! that one implementation; nothing else in the tree may define its own
//! run fingerprint.
//!
//! Three layers:
//!
//! - [`Fnv64`] — an incremental FNV-1a 64-bit hasher (no external crates,
//!   stable across platforms: everything is hashed as little-endian bytes).
//! - [`RoundChain`] — folds a stream of [`RoundRecord`]s into a *hash
//!   chain*: after round *i* the chain value digests rounds `0..=i`, so the
//!   per-round snapshots double as prefix fingerprints. Comparing two
//!   chains index by index pinpoints the first divergent round; comparing
//!   only the latest snapshots still detects any past divergence.
//! - [`run_fingerprint`] — the final run fingerprint: output hash + round
//!   chain + schedule-derived counters folded into one value.
//!
//! # What is (and is not) hashed
//!
//! A round contributes its **schedule-derived scalars** only: sequence
//! index, window, attempted, committed, failed. Conflict attribution is
//! excluded — conflict entries name abstract lock ids, and for the mesh
//! apps those are arena triangle ids whose allocation order is
//! thread-count-dependent even though the schedule is not. Wall-clock
//! timings are excluded for the obvious reason. The sequence index is the
//! chain's own counter, not [`RoundRecord::round`], so multi-pass runs
//! (pfp bouts, whose per-bout round indices restart at zero) fingerprint
//! as one monotone sequence.

use crate::probe::RoundRecord;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher — the tree's notion of
/// "byte-identical" without pulling in an external hashing crate.
///
/// All integer writes hash little-endian bytes, so fingerprints are
/// platform-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hashes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes a `u32` as little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes an `i64` as little-endian bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes a `u32` slice element by element (the common output-hash shape:
/// distances, flags, mate arrays).
pub fn hash_u32s(values: &[u32]) -> u64 {
    let mut h = Fnv64::new();
    for &v in values {
        h.write_u32(v);
    }
    h.finish()
}

/// Folds a stream of round records into per-round prefix hashes.
///
/// The chain value after `push`ing round *i* digests the schedule-derived
/// scalars of rounds `0..=i`; [`RoundChain::hashes`] keeps every snapshot so
/// two runs can be compared round by round. Under deterministic scheduling
/// every snapshot is byte-identical at any thread count; the first index
/// where two chains differ is the first round where the schedules diverged.
#[derive(Debug, Clone, Default)]
pub struct RoundChain {
    hasher: Fnv64,
    hashes: Vec<u64>,
}

impl RoundChain {
    /// An empty chain.
    pub fn new() -> Self {
        RoundChain::default()
    }

    /// Folds one round into the chain and returns its prefix hash.
    pub fn push(&mut self, rec: &RoundRecord) -> u64 {
        self.hasher.write_u64(self.hashes.len() as u64);
        self.hasher.write_u64(rec.window);
        self.hasher.write_u64(rec.attempted);
        self.hasher.write_u64(rec.committed);
        self.hasher.write_u64(rec.failed);
        let h = self.hasher.finish();
        self.hashes.push(h);
        h
    }

    /// Per-round prefix hashes, in sequence order.
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Consumes the chain, yielding the per-round prefix hashes.
    pub fn into_hashes(self) -> Vec<u64> {
        self.hashes
    }

    /// Rounds folded so far.
    pub fn rounds(&self) -> u64 {
        self.hashes.len() as u64
    }

    /// The chain value over every round pushed so far (the round-log hash;
    /// equals the last element of [`RoundChain::hashes`], or the FNV offset
    /// basis for an empty chain).
    pub fn log_hash(&self) -> u64 {
        self.hasher.finish()
    }
}

/// The final fingerprint of one run: everything that must be invariant for
/// a deterministic run, folded into one value — the output hash, the round
/// chain, and the schedule-derived counters.
///
/// Chaos-injected aborts are deliberately **not** an input: they are
/// seed-dependent by construction and must not move the fingerprint.
pub fn run_fingerprint(
    output_hash: u64,
    log_hash: u64,
    rounds: u64,
    committed: u64,
    aborted: u64,
) -> u64 {
    let mut fp = Fnv64::new();
    fp.write_u64(output_hash);
    fp.write_u64(log_hash);
    fp.write_u64(rounds);
    fp.write_u64(committed);
    fp.write_u64(aborted);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = Fnv64::new();
        h.write_bytes(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    fn rec(window: u64, attempted: u64, committed: u64) -> RoundRecord {
        RoundRecord {
            window,
            attempted,
            committed,
            failed: attempted - committed,
            ..Default::default()
        }
    }

    #[test]
    fn chain_snapshots_are_prefix_hashes() {
        let rounds = [rec(8, 8, 6), rec(12, 12, 12), rec(4, 3, 3)];
        let mut full = RoundChain::new();
        for r in &rounds {
            full.push(r);
        }
        // The snapshot at index i equals a fresh chain over rounds 0..=i.
        for i in 0..rounds.len() {
            let mut prefix = RoundChain::new();
            for r in &rounds[..=i] {
                prefix.push(r);
            }
            assert_eq!(full.hashes()[i], prefix.log_hash());
        }
        assert_eq!(full.rounds(), 3);
        assert_eq!(full.log_hash(), *full.hashes().last().unwrap());
    }

    #[test]
    fn chain_uses_its_own_sequence_index() {
        // Two records with different `round` fields but identical scalars
        // hash identically: multi-pass runs renumber implicitly.
        let mut a = RoundChain::new();
        let mut b = RoundChain::new();
        let mut ra = rec(8, 8, 8);
        let mut rb = rec(8, 8, 8);
        ra.round = 0;
        rb.round = 999;
        assert_eq!(a.push(&ra), b.push(&rb));
    }

    #[test]
    fn chain_ignores_conflicts_and_timing() {
        let mut plain = rec(8, 8, 7);
        let mut noisy = rec(8, 8, 7);
        noisy.conflicts = vec![(3, 2), (9, 1)];
        noisy.inspect_ns = 1e6;
        noisy.commit_ns = 2e6;
        plain.serial_ns = 0.0;
        let mut a = RoundChain::new();
        let mut b = RoundChain::new();
        assert_eq!(a.push(&plain), b.push(&noisy));
    }

    #[test]
    fn divergence_is_pinpointed_at_first_differing_round() {
        let mut a = RoundChain::new();
        let mut b = RoundChain::new();
        for r in [rec(8, 8, 8), rec(8, 8, 8)] {
            a.push(&r);
            b.push(&r);
        }
        a.push(&rec(8, 8, 8));
        b.push(&rec(8, 8, 7)); // diverges here
        a.push(&rec(4, 4, 4));
        b.push(&rec(4, 4, 4)); // same scalars, but chained past a divergence
        let first = a.hashes().iter().zip(b.hashes()).position(|(x, y)| x != y);
        assert_eq!(first, Some(2));
        // Chaining propagates: everything after the divergence differs too,
        // so the *latest* snapshot alone still detects it.
        assert_ne!(a.hashes()[3], b.hashes()[3]);
        assert_ne!(a.log_hash(), b.log_hash());
    }

    #[test]
    fn empty_chain_log_hash_is_offset_basis() {
        assert_eq!(RoundChain::new().log_hash(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(RoundChain::new().rounds(), 0);
    }

    #[test]
    fn run_fingerprint_folds_all_inputs() {
        let base = run_fingerprint(1, 2, 3, 4, 5);
        assert_ne!(base, run_fingerprint(9, 2, 3, 4, 5));
        assert_ne!(base, run_fingerprint(1, 9, 3, 4, 5));
        assert_ne!(base, run_fingerprint(1, 2, 9, 4, 5));
        assert_ne!(base, run_fingerprint(1, 2, 3, 9, 5));
        assert_ne!(base, run_fingerprint(1, 2, 3, 4, 9));
    }

    #[test]
    fn hash_u32s_matches_manual_loop() {
        let vals = [0u32, 7, u32::MAX];
        let mut h = Fnv64::new();
        for &v in &vals {
            h.write_u32(v);
        }
        assert_eq!(hash_u32s(&vals), h.finish());
    }
}
