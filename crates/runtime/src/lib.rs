//! Parallel runtime substrate for the Deterministic Galois reproduction.
//!
//! This crate provides the low-level machinery that the Galois executors in
//! `galois-core` are built on, mirroring the runtime layer of the original
//! C++ Galois system:
//!
//! - [`pool`]: a scoped thread pool that runs one worker closure per thread.
//! - [`barrier`]: a sense-reversing centralized barrier.
//! - [`worklist`]: concurrent chunked work bags with per-thread locality.
//! - [`chaos`]: seeded adversarial-schedule injection ([`ChaosPolicy`]) used
//!   by the differential test harness to prove schedule invariance.
//! - [`fingerprint`]: the canonical state-fingerprint implementation
//!   ([`Fnv64`], [`RoundChain`]) shared by the differential harness and the
//!   record/replay layer — one hashing authority for the whole tree.
//! - [`padded`]: cache-line padded cells and per-thread counter arrays.
//! - [`stats`]: mergeable per-thread execution statistics.
//! - [`probe`]: round-level observability — the [`Probe`] trait and the
//!   [`RoundLog`] recorder whose canonical serialization doubles as a
//!   portability oracle for deterministic runs.
//! - [`sort`]: a parallel stable merge sort used for deterministic task-id
//!   assignment.
//! - [`scan`]: parallel prefix sums used by the deterministic parallel
//!   input pipeline (CSR construction, chunk packing).
//! - [`simtime`]: a virtual-time scheduling model that replays recorded task
//!   traces on *p* simulated workers. On a single-core host this substitutes
//!   for the paper's multi-socket machines (see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use galois_runtime::pool::run_on_threads;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let hits = AtomicUsize::new(0);
//! run_on_threads(4, |tid| {
//!     assert!(tid < 4);
//!     hits.fetch_add(1, Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod barrier;
pub mod chaos;
pub mod fingerprint;
pub mod padded;
pub mod pool;
pub mod probe;
pub mod scan;
pub mod shared;
pub mod simtime;
pub mod sort;
pub mod stats;
pub mod worklist;

pub use barrier::{BarrierPoisoned, SenseBarrier};
pub use chaos::ChaosPolicy;
pub use fingerprint::{Fnv64, RoundChain};
pub use pool::{run_on_threads, run_on_threads_fault};
pub use probe::{Probe, RoundLog, RoundRecord};
pub use stats::ExecStats;
