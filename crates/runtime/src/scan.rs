//! Parallel prefix sums (scans).
//!
//! The parallel input pipeline (see `galois-graph`) turns per-node degree
//! counts into CSR offsets, and per-thread chunk lengths into write
//! positions, with prefix sums on the critical path of every build. Like the
//! [`sort`](crate::sort) module, the scans here are *deterministic by
//! construction*: integer addition is associative, so the classic
//! three-phase chunked scan (local reduce, sequential scan over chunk
//! totals, local rescan) produces bit-identical output for any thread
//! count — the same portability contract the schedulers guarantee for
//! execution, extended to input construction.

use crate::pool::{chunk_range, run_on_threads};
use crate::shared::SharedSlice;

/// Replaces `values` with its exclusive prefix sum and returns the total.
///
/// `values[i]` becomes `sum(values[..i])`; the grand total (what
/// `values[len]` would be) is returned. Uses up to `threads` threads and is
/// bit-identical to the sequential scan for every thread count.
///
/// # Example
///
/// ```
/// let mut v = vec![3u64, 1, 4, 1, 5];
/// let total = galois_runtime::scan::parallel_exclusive_scan(&mut v, 4);
/// assert_eq!(v, vec![0, 3, 4, 8, 9]);
/// assert_eq!(total, 14);
/// ```
pub fn parallel_exclusive_scan(values: &mut [u64], threads: usize) -> u64 {
    scan_impl(values, threads, false, &mut Vec::new())
}

/// [`parallel_exclusive_scan`] with a caller-owned scratch buffer for the
/// per-chunk totals, so multi-phase pipelines (generate → pack → CSR build)
/// pay the scratch allocation once instead of once per scan. The buffer is
/// resized as needed and its contents on entry are ignored.
pub fn parallel_exclusive_scan_with(
    values: &mut [u64],
    threads: usize,
    scratch: &mut Vec<u64>,
) -> u64 {
    scan_impl(values, threads, false, scratch)
}

/// Replaces `values` with its inclusive prefix sum and returns the total.
///
/// `values[i]` becomes `sum(values[..=i])`. Uses up to `threads` threads
/// and is bit-identical to the sequential scan for every thread count.
///
/// # Example
///
/// ```
/// let mut v = vec![3u64, 1, 4, 1, 5];
/// let total = galois_runtime::scan::parallel_inclusive_scan(&mut v, 4);
/// assert_eq!(v, vec![3, 4, 8, 9, 14]);
/// assert_eq!(total, 14);
/// ```
pub fn parallel_inclusive_scan(values: &mut [u64], threads: usize) -> u64 {
    scan_impl(values, threads, true, &mut Vec::new())
}

/// [`parallel_inclusive_scan`] with a caller-owned scratch buffer; see
/// [`parallel_exclusive_scan_with`].
pub fn parallel_inclusive_scan_with(
    values: &mut [u64],
    threads: usize,
    scratch: &mut Vec<u64>,
) -> u64 {
    scan_impl(values, threads, true, scratch)
}

/// Sequential inputs or one thread skip the spawn entirely; that path is
/// also the oracle the parallel path must match.
fn scan_impl(values: &mut [u64], threads: usize, inclusive: bool, scratch: &mut Vec<u64>) -> u64 {
    let n = values.len();
    // Below ~4k elements the spawn cost dominates any parallel win.
    let threads = threads.clamp(1, n.div_ceil(4096).max(1));
    if threads == 1 {
        let mut acc = 0u64;
        for v in values.iter_mut() {
            let x = *v;
            if inclusive {
                acc += x;
                *v = acc;
            } else {
                *v = acc;
                acc += x;
            }
        }
        return acc;
    }

    // Phase 1: each thread reduces its chunk to a total (into the reusable
    // scratch, so repeated scans allocate nothing once it's warm).
    scratch.clear();
    scratch.resize(threads, 0);
    let chunk_totals: &mut [u64] = scratch;
    {
        let totals = SharedSlice::new(chunk_totals);
        let totals = &totals;
        let values_ro: &[u64] = values;
        run_on_threads(threads, |tid| {
            let sum: u64 = values_ro[chunk_range(n, threads, tid)].iter().sum();
            // SAFETY: each tid writes only its own slot.
            unsafe { *totals.get_mut(tid) = sum };
        });
    }

    // Phase 2: sequential exclusive scan over the (tiny) chunk totals.
    let mut acc = 0u64;
    for t in chunk_totals.iter_mut() {
        let x = *t;
        *t = acc;
        acc += x;
    }
    let total = acc;

    // Phase 3: each thread rescans its chunk seeded with its chunk offset.
    {
        let shared = SharedSlice::new(values);
        let shared = &shared;
        let chunk_totals = &chunk_totals;
        run_on_threads(threads, |tid| {
            let mut acc = chunk_totals[tid];
            for i in chunk_range(n, threads, tid) {
                // SAFETY: chunk ranges are disjoint across tids.
                let slot = unsafe { shared.get_mut(i) };
                let x = *slot;
                if inclusive {
                    acc += x;
                    *slot = acc;
                } else {
                    *slot = acc;
                    acc += x;
                }
            }
        });
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s % 1000
            })
            .collect()
    }

    #[test]
    fn matches_sequential_oracle_across_thread_counts() {
        for n in [0usize, 1, 2, 100, 4096, 4097, 50_000] {
            let input = pseudo_random(n, 7 + n as u64);
            let mut expect_ex = input.clone();
            let total_ex = parallel_exclusive_scan(&mut expect_ex, 1);
            let mut expect_in = input.clone();
            let total_in = parallel_inclusive_scan(&mut expect_in, 1);
            for threads in [2usize, 3, 5, 8, 16] {
                let mut ours = input.clone();
                let t = parallel_exclusive_scan(&mut ours, threads);
                assert_eq!(ours, expect_ex, "exclusive n={n} threads={threads}");
                assert_eq!(t, total_ex);
                let mut ours = input.clone();
                let t = parallel_inclusive_scan(&mut ours, threads);
                assert_eq!(ours, expect_in, "inclusive n={n} threads={threads}");
                assert_eq!(t, total_in);
            }
        }
    }

    #[test]
    fn exclusive_scan_basics() {
        let mut v = vec![1u64; 10];
        let total = parallel_exclusive_scan(&mut v, 4);
        assert_eq!(v, (0..10).collect::<Vec<u64>>());
        assert_eq!(total, 10);
    }

    #[test]
    fn inclusive_scan_basics() {
        let mut v = vec![2u64; 5];
        let total = parallel_inclusive_scan(&mut v, 3);
        assert_eq!(v, vec![2, 4, 6, 8, 10]);
        assert_eq!(total, 10);
    }

    #[test]
    fn empty_and_singleton() {
        let mut v: Vec<u64> = vec![];
        assert_eq!(parallel_exclusive_scan(&mut v, 8), 0);
        let mut v = vec![9u64];
        assert_eq!(parallel_inclusive_scan(&mut v, 8), 9);
        assert_eq!(v, vec![9]);
    }
}
