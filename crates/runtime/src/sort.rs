//! Parallel stable merge sort.
//!
//! Deterministic id assignment (§3.2 of the paper) sorts newly created tasks
//! lexicographically by `(parent id, birth rank)` at every `todo → next`
//! boundary. That sort sits on the critical path between passes, so the
//! runtime provides a parallel *stable* merge sort: stability means tasks with
//! equal keys keep their (already deterministic) buffer order, so the result
//! is independent of the thread count.

use crate::pool::{chunk_range, run_on_threads};
use std::cell::UnsafeCell;

/// Sorts `items` stably by `key`, using up to `threads` threads.
///
/// Equivalent to `items.sort_by_key(key)` (same output, including stability),
/// but splits the slice into per-thread runs, sorts the runs in parallel, and
/// then merges pairs of runs in parallel rounds.
///
/// # Example
///
/// ```
/// let mut v = vec![(2, 'a'), (1, 'b'), (2, 'c'), (0, 'd')];
/// galois_runtime::sort::parallel_sort_by_key(&mut v, 2, |x| x.0);
/// assert_eq!(v, vec![(0, 'd'), (1, 'b'), (2, 'a'), (2, 'c')]);
/// ```
pub fn parallel_sort_by_key<T, K, F>(items: &mut [T], threads: usize, key: F)
where
    T: Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = items.len();
    if n < 2 {
        return;
    }
    // Small inputs or one thread: delegate to std's stable sort.
    let threads = threads.clamp(1, n.div_ceil(4096).max(1));
    if threads == 1 {
        items.sort_by_key(key);
        return;
    }

    // Phase 1: sort per-thread runs in parallel. The runs are the contiguous
    // chunk ranges, so `split_at_mut` hands each thread a disjoint sub-slice.
    let mut boundaries: Vec<usize> = (0..threads)
        .map(|t| chunk_range(n, threads, t).start)
        .collect();
    boundaries.push(n);
    {
        let mut rest: &mut [T] = items;
        let mut slices = Vec::with_capacity(threads);
        for t in 0..threads {
            let len = boundaries[t + 1] - boundaries[t];
            let (head, tail) = rest.split_at_mut(len);
            slices.push(UnsafeCell::new(head));
            rest = tail;
        }
        struct SyncSlices<'a, T>(&'a [UnsafeCell<&'a mut [T]>]);
        // SAFETY: each thread accesses exactly one distinct cell, so there is
        // no aliasing; the cells only exist to move &mut slices into the
        // closure shared by all threads.
        unsafe impl<T: Send> Sync for SyncSlices<'_, T> {}
        impl<'a, T> SyncSlices<'a, T> {
            fn slot(&self, i: usize) -> &UnsafeCell<&'a mut [T]> {
                &self.0[i]
            }
        }
        let wrapper = SyncSlices(&slices);
        let key_ref = &key;
        run_on_threads(threads, |tid| {
            // SAFETY: see SyncSlices above — tid indexes are disjoint.
            let slice: &mut [T] = unsafe { &mut *wrapper.slot(tid).get() };
            slice.sort_by_key(key_ref);
        });
    }

    // Phase 2: merge runs pairwise until one run remains. Each merge copies
    // into an auxiliary buffer and back; merges within a round are
    // independent and run in parallel.
    let mut runs = boundaries;
    while runs.len() > 2 {
        let mut next_runs = Vec::with_capacity(runs.len() / 2 + 2);
        let pairs: Vec<(usize, usize, usize)> = runs
            .windows(3)
            .step_by(2)
            .map(|w| (w[0], w[1], w[2]))
            .collect();
        // Merge each (lo, mid, hi) pair sequentially per pair, pairs in
        // parallel. Use index math over the single `items` slice.
        let items_ptr = SendPtr(items.as_mut_ptr());
        let nthreads = pairs.len().min(threads);
        let key_ref = &key;
        let pairs_ref = &pairs;
        run_on_threads(nthreads.max(1), |tid| {
            for (idx, &(lo, mid, hi)) in pairs_ref.iter().enumerate() {
                if idx % nthreads.max(1) != tid {
                    continue;
                }
                // SAFETY: pair ranges [lo, hi) are disjoint across the round,
                // so each thread has exclusive access to its sub-slice.
                let slice: &mut [T] =
                    unsafe { std::slice::from_raw_parts_mut(items_ptr.get().add(lo), hi - lo) };
                merge_in_place(slice, mid - lo, key_ref);
            }
        });
        next_runs.push(runs[0]);
        for w in runs.windows(3).step_by(2) {
            next_runs.push(w[2]);
        }
        // Odd run count: the trailing boundary carries over.
        if (runs.len() - 1) % 2 == 1 {
            let last = *runs.last().unwrap();
            if *next_runs.last().unwrap() != last {
                next_runs.push(last);
            }
        }
        runs = next_runs;
    }
    if runs.len() == 3 {
        merge_in_place(items, runs[1], &key);
    }
}

struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor method so closures capture the whole (Sync) wrapper rather
    /// than the raw-pointer field under edition-2021 disjoint capture.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Stable merge of the two sorted halves `[0, mid)` and `[mid, len)`.
fn merge_in_place<T, K: Ord>(slice: &mut [T], mid: usize, key: &impl Fn(&T) -> K) {
    if mid == 0 || mid == slice.len() {
        return;
    }
    // Fast path: already ordered across the seam.
    if key(&slice[mid - 1]) <= key(&slice[mid]) {
        return;
    }
    // Out-of-place merge through a scratch Vec. `T: Send` but not
    // necessarily `Clone`, so move elements with a swap-free take/write
    // sequence using raw copies guarded against drops.
    let len = slice.len();
    let mut scratch: Vec<T> = Vec::with_capacity(len);
    unsafe {
        // SAFETY: we move every element of `slice` into `scratch` exactly
        // once (ptr::read), then move merged elements back exactly once.
        // `scratch` is wrapped in ManuallyDrop before any `key` call, so a
        // panicking key function leaks elements instead of double-dropping.
        let src = slice.as_ptr();
        for i in 0..len {
            scratch.push(std::ptr::read(src.add(i)));
        }
        let scratch = std::mem::ManuallyDrop::new(scratch);
        let (left, right) = scratch.split_at(mid);
        let dst = slice.as_mut_ptr();
        let (mut i, mut j, mut k) = (0, 0, 0);
        while i < left.len() && j < right.len() {
            // `<=` keeps the merge stable: ties favor the left run.
            if key(&left[i]) <= key(&right[j]) {
                std::ptr::write(dst.add(k), std::ptr::read(&left[i]));
                i += 1;
            } else {
                std::ptr::write(dst.add(k), std::ptr::read(&right[j]));
                j += 1;
            }
            k += 1;
        }
        while i < left.len() {
            std::ptr::write(dst.add(k), std::ptr::read(&left[i]));
            i += 1;
            k += 1;
        }
        while j < right.len() {
            std::ptr::write(dst.add(k), std::ptr::read(&right[j]));
            j += 1;
            k += 1;
        }
        // All elements moved back into `slice`; ManuallyDrop drops nothing.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_sorted(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        v.sort_by_key(|x| x.0);
        v
    }

    fn pseudo_random(n: usize, seed: u64) -> Vec<(u64, u64)> {
        // xorshift64* to avoid a dev-dependency cycle.
        let mut s = seed.max(1);
        (0..n as u64)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 97, i)
            })
            .collect()
    }

    #[test]
    fn matches_std_stable_sort() {
        for n in [0usize, 1, 2, 63, 64, 1000, 10_000] {
            for threads in [1usize, 2, 3, 4, 7] {
                let input = pseudo_random(n, 42 + n as u64);
                let mut ours = input.clone();
                parallel_sort_by_key(&mut ours, threads, |x| x.0);
                assert_eq!(ours, reference_sorted(input), "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn stability_preserved() {
        // Many duplicate keys; payload records original position.
        let input: Vec<(u64, u64)> = (0..5000).map(|i| (i % 3, i)).collect();
        let mut ours = input.clone();
        parallel_sort_by_key(&mut ours, 4, |x| x.0);
        // Within each key, payloads must be increasing.
        for w in ours.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {w:?}");
            }
        }
    }

    #[test]
    fn works_with_non_copy_payloads() {
        let mut v: Vec<(u32, String)> = (0..300)
            .rev()
            .map(|i| (i % 10, format!("item{i}")))
            .collect();
        let mut expect = v.clone();
        expect.sort_by_key(|x| x.0);
        parallel_sort_by_key(&mut v, 3, |x| x.0);
        assert_eq!(v, expect);
    }

    #[test]
    fn already_sorted_fast_path() {
        let mut v: Vec<(u64, u64)> = (0..10_000).map(|i| (i, i)).collect();
        let expect = v.clone();
        parallel_sort_by_key(&mut v, 4, |x| x.0);
        assert_eq!(v, expect);
    }

    #[test]
    fn reverse_sorted() {
        let mut v: Vec<(u64, u64)> = (0..8192).rev().map(|i| (i, i)).collect();
        parallel_sort_by_key(&mut v, 5, |x| x.0);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(x.0, i as u64);
        }
    }
}
