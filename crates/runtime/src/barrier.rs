//! Sense-reversing centralized barrier.
//!
//! The deterministic scheduler of the paper (Figure 2) separates each round
//! into phases with global barriers. `std::sync::Barrier` would work, but the
//! Galois runtime uses a spinning sense-reversing barrier because rounds are
//! short (microseconds) and futex wake-ups would dominate. This implementation
//! spins briefly and then yields, which behaves sensibly both on dedicated
//! cores and on the oversubscribed single-core host used for testing.

use crate::chaos::ChaosPolicy;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A reusable barrier for a fixed set of threads.
///
/// Unlike [`std::sync::Barrier`], waiting threads spin (with exponential
/// yielding) instead of blocking, and the barrier reports which thread was the
/// last to arrive, which phase-based executors use to run serial pivot work.
///
/// # Example
///
/// ```
/// use galois_runtime::SenseBarrier;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let barrier = SenseBarrier::new(4);
/// let phase1 = AtomicUsize::new(0);
/// galois_runtime::run_on_threads(4, |_tid| {
///     phase1.fetch_add(1, Ordering::Relaxed);
///     barrier.wait();
///     // Every thread observes all four phase-1 increments.
///     assert_eq!(phase1.load(Ordering::Relaxed), 4);
/// });
/// ```
pub struct SenseBarrier {
    count: AtomicUsize,
    sense: AtomicBool,
    /// Set by [`SenseBarrier::poison`]; once true the barrier only errors.
    poisoned: AtomicBool,
    total: usize,
    /// Optional adversarial arrival jitter; `None` costs one branch.
    chaos: Option<Arc<ChaosPolicy>>,
}

/// Error returned by [`SenseBarrier::wait_checked`] after a participant
/// [`poison`](SenseBarrier::poison)ed the barrier instead of arriving.
///
/// A poisoned barrier never completes another phase; participants that see
/// this error must drain (stop waiting and unwind or return) rather than
/// retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPoisoned;

impl std::fmt::Display for BarrierPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("barrier poisoned by a panicking participant")
    }
}

impl std::error::Error for BarrierPoisoned {}

impl std::fmt::Debug for SenseBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SenseBarrier")
            .field("total", &self.total)
            .field("arrived", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl SenseBarrier {
    /// Creates a barrier for `total` threads.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(total: usize) -> Self {
        Self::with_chaos(total, None)
    }

    /// Creates a barrier that injects a drawn spin delay before each arrival
    /// when a [`ChaosPolicy`] is installed, perturbing arrival order (and
    /// therefore which thread is the leader of each phase).
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn with_chaos(total: usize, chaos: Option<Arc<ChaosPolicy>>) -> Self {
        assert!(total > 0, "barrier needs at least one participant");
        SenseBarrier {
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            total,
            chaos,
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Blocks until all `total` threads have called `wait`.
    ///
    /// Returns `true` on exactly one thread per phase (the last arriver),
    /// mirroring [`std::sync::BarrierWaitResult::is_leader`]. On a poisoned
    /// barrier this returns `false` immediately; fault-aware executors use
    /// [`wait_checked`](Self::wait_checked) to tell the two cases apart.
    pub fn wait(&self) -> bool {
        self.wait_checked().unwrap_or(false)
    }

    /// Marks the barrier as poisoned, releasing every current and future
    /// waiter with [`BarrierPoisoned`].
    ///
    /// Called by a worker that is about to unwind instead of reaching the
    /// next phase: without it, peers spinning in [`wait`](Self::wait) would
    /// wait forever for an arrival that never comes. Poisoning is permanent.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether [`poison`](Self::poison) has been called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// A barrier crossing with a serial section fused into its tail: one
    /// designated thread (always the same one per barrier) calls this while
    /// the other `total - 1` participants call [`wait_checked`](Self::wait_checked).
    ///
    /// The caller waits for every peer to arrive, runs `serial` while they
    /// spin, and only then releases the phase — so `serial` observes all
    /// writes the peers made before arriving, and every peer observes all of
    /// `serial`'s writes after release. This fuses what would otherwise be
    /// two full crossings (arrive → serial work → arrive again) into one.
    ///
    /// Protocol: peers `fetch_add` the count but can never reach `total`, so
    /// none of them takes the release branch; this thread never increments,
    /// spins until the count reads `total - 1`, runs `serial`, then resets
    /// the count and flips the sense exactly like the last arriver of a
    /// plain crossing. Plain [`wait_checked`](Self::wait_checked) crossings
    /// may be freely interleaved with fused ones on the same barrier.
    ///
    /// Returns `Err(BarrierPoisoned)` without running `serial` if the
    /// barrier is (or becomes) poisoned while waiting.
    pub fn wait_serial_checked<R>(&self, serial: impl FnOnce() -> R) -> Result<R, BarrierPoisoned> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(BarrierPoisoned);
        }
        if self.total == 1 {
            return Ok(serial());
        }
        if let Some(c) = &self.chaos {
            ChaosPolicy::spin(c.barrier_jitter_spins());
        }
        let my_sense = !self.sense.load(Ordering::Relaxed);
        let mut spins = 0u32;
        // Acquire pairs with the peers' AcqRel fetch_add: once the count
        // reads total-1, everything the peers wrote before arriving is
        // visible to the serial section.
        while self.count.load(Ordering::Acquire) != self.total - 1 {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(BarrierPoisoned);
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if self.poisoned.load(Ordering::Acquire) {
            return Err(BarrierPoisoned);
        }
        let out = serial();
        // Release on the sense flip publishes the serial section's writes to
        // every spinning peer.
        self.count.store(0, Ordering::Relaxed);
        self.sense.store(my_sense, Ordering::Release);
        Ok(out)
    }

    /// Like [`wait`](Self::wait), but releases with `Err(BarrierPoisoned)`
    /// (instead of completing the phase) once any participant has called
    /// [`poison`](Self::poison).
    ///
    /// The error can surface on any subset of participants: waiters already
    /// released by a completed phase return `Ok` and observe the poison on
    /// their *next* call. Callers must treat `Err` as terminal and drain.
    pub fn wait_checked(&self) -> Result<bool, BarrierPoisoned> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(BarrierPoisoned);
        }
        if self.total == 1 {
            return Ok(true);
        }
        if let Some(c) = &self.chaos {
            ChaosPolicy::spin(c.barrier_jitter_spins());
        }
        let my_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(BarrierPoisoned);
            }
            // Last arriver: reset the count and flip the sense to release.
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            Ok(true)
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                if self.poisoned.load(Ordering::Acquire) {
                    return Err(BarrierPoisoned);
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // On oversubscribed hosts the releasing thread may not be
                    // scheduled; yield so it can run.
                    std::thread::yield_now();
                }
            }
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_on_threads;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_is_leader() {
        let b = SenseBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        let b = SenseBarrier::new(4);
        let leaders = AtomicU64::new(0);
        run_on_threads(4, |_| {
            for _ in 0..100 {
                if b.wait() {
                    leaders.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn phases_are_synchronized() {
        // Classic check: a counter incremented before the barrier must be
        // fully visible after it, for many consecutive phases.
        const THREADS: usize = 4;
        const PHASES: u64 = 200;
        let b = SenseBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        run_on_threads(THREADS, |_| {
            for phase in 1..=PHASES {
                counter.fetch_add(1, Ordering::Relaxed);
                b.wait();
                assert_eq!(counter.load(Ordering::Relaxed), phase * THREADS as u64);
                b.wait();
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_participants_panics() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    fn debug_is_nonempty() {
        let b = SenseBarrier::new(2);
        assert!(format!("{b:?}").contains("SenseBarrier"));
    }

    #[test]
    fn poison_releases_spinning_waiters() {
        // Three of four participants arrive; the fourth poisons instead.
        // Without the poison check the three would spin forever.
        let b = SenseBarrier::new(4);
        let released = AtomicU64::new(0);
        run_on_threads(4, |tid| {
            if tid == 3 {
                b.poison();
            } else {
                assert_eq!(b.wait_checked(), Err(BarrierPoisoned));
                released.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(released.load(Ordering::Relaxed), 3);
        assert!(b.is_poisoned());
    }

    #[test]
    fn poisoned_barrier_errors_forever() {
        let b = SenseBarrier::new(2);
        b.poison();
        assert_eq!(b.wait_checked(), Err(BarrierPoisoned));
        assert_eq!(b.wait_checked(), Err(BarrierPoisoned));
        // The compatibility wrapper reports "not leader" instead of hanging.
        assert!(!b.wait());
    }

    #[test]
    fn single_thread_poison_errors() {
        let b = SenseBarrier::new(1);
        assert_eq!(b.wait_checked(), Ok(true));
        b.poison();
        assert_eq!(b.wait_checked(), Err(BarrierPoisoned));
    }

    #[test]
    fn fused_serial_section_is_exclusive_and_synchronized() {
        // Thread 0 runs the serial section of every crossing; the others use
        // the plain wait. The serial section must observe all pre-barrier
        // increments, and its own write must be visible to everyone after.
        const THREADS: usize = 4;
        const PHASES: u64 = 200;
        let b = SenseBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        let serial_val = AtomicU64::new(0);
        run_on_threads(THREADS, |tid| {
            for phase in 1..=PHASES {
                counter.fetch_add(1, Ordering::Relaxed);
                if tid == 0 {
                    let seen = b
                        .wait_serial_checked(|| {
                            // All peers arrived: every increment is visible.
                            let seen = counter.load(Ordering::Relaxed);
                            serial_val.store(phase, Ordering::Relaxed);
                            seen
                        })
                        .unwrap();
                    assert_eq!(seen, phase * THREADS as u64);
                } else {
                    b.wait_checked().unwrap();
                }
                // Everyone (including the peers) sees the serial write.
                assert_eq!(serial_val.load(Ordering::Relaxed), phase);
                b.wait(); // plain crossing interleaves fine with fused ones
            }
        });
    }

    #[test]
    fn fused_serial_single_thread_runs_inline() {
        let b = SenseBarrier::new(1);
        assert_eq!(b.wait_serial_checked(|| 42), Ok(42));
        b.poison();
        assert_eq!(b.wait_serial_checked(|| 42), Err(BarrierPoisoned));
    }

    #[test]
    fn fused_serial_poison_releases_all() {
        // One peer poisons instead of arriving: the serial caller must not
        // run its section, and the remaining peers must drain.
        let b = SenseBarrier::new(4);
        let ran = AtomicU64::new(0);
        run_on_threads(4, |tid| match tid {
            0 => {
                let r = b.wait_serial_checked(|| ran.fetch_add(1, Ordering::Relaxed));
                assert_eq!(r, Err(BarrierPoisoned));
            }
            3 => b.poison(),
            _ => {
                assert_eq!(b.wait_checked(), Err(BarrierPoisoned));
            }
        });
        assert_eq!(
            ran.load(Ordering::Relaxed),
            0,
            "serial section must not run"
        );
    }

    #[test]
    fn chaos_jitter_preserves_synchronization() {
        const THREADS: usize = 4;
        const PHASES: u64 = 50;
        let chaos = Arc::new(ChaosPolicy::new(77));
        let b = SenseBarrier::with_chaos(THREADS, Some(chaos));
        let counter = AtomicU64::new(0);
        run_on_threads(THREADS, |_| {
            for phase in 1..=PHASES {
                counter.fetch_add(1, Ordering::Relaxed);
                b.wait();
                assert_eq!(counter.load(Ordering::Relaxed), phase * THREADS as u64);
                b.wait();
            }
        });
    }
}
