//! Sense-reversing centralized barrier.
//!
//! The deterministic scheduler of the paper (Figure 2) separates each round
//! into phases with global barriers. `std::sync::Barrier` would work, but the
//! Galois runtime uses a spinning sense-reversing barrier because rounds are
//! short (microseconds) and futex wake-ups would dominate. This implementation
//! spins briefly and then yields, which behaves sensibly both on dedicated
//! cores and on the oversubscribed single-core host used for testing.

use crate::chaos::ChaosPolicy;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A reusable barrier for a fixed set of threads.
///
/// Unlike [`std::sync::Barrier`], waiting threads spin (with exponential
/// yielding) instead of blocking, and the barrier reports which thread was the
/// last to arrive, which phase-based executors use to run serial pivot work.
///
/// # Example
///
/// ```
/// use galois_runtime::SenseBarrier;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let barrier = SenseBarrier::new(4);
/// let phase1 = AtomicUsize::new(0);
/// galois_runtime::run_on_threads(4, |_tid| {
///     phase1.fetch_add(1, Ordering::Relaxed);
///     barrier.wait();
///     // Every thread observes all four phase-1 increments.
///     assert_eq!(phase1.load(Ordering::Relaxed), 4);
/// });
/// ```
pub struct SenseBarrier {
    count: AtomicUsize,
    sense: AtomicBool,
    total: usize,
    /// Optional adversarial arrival jitter; `None` costs one branch.
    chaos: Option<Arc<ChaosPolicy>>,
}

impl std::fmt::Debug for SenseBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SenseBarrier")
            .field("total", &self.total)
            .field("arrived", &self.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl SenseBarrier {
    /// Creates a barrier for `total` threads.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(total: usize) -> Self {
        Self::with_chaos(total, None)
    }

    /// Creates a barrier that injects a drawn spin delay before each arrival
    /// when a [`ChaosPolicy`] is installed, perturbing arrival order (and
    /// therefore which thread is the leader of each phase).
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn with_chaos(total: usize, chaos: Option<Arc<ChaosPolicy>>) -> Self {
        assert!(total > 0, "barrier needs at least one participant");
        SenseBarrier {
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            total,
            chaos,
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Blocks until all `total` threads have called `wait`.
    ///
    /// Returns `true` on exactly one thread per phase (the last arriver),
    /// mirroring [`std::sync::BarrierWaitResult::is_leader`].
    pub fn wait(&self) -> bool {
        if self.total == 1 {
            return true;
        }
        if let Some(c) = &self.chaos {
            ChaosPolicy::spin(c.barrier_jitter_spins());
        }
        let my_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            // Last arriver: reset the count and flip the sense to release.
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // On oversubscribed hosts the releasing thread may not be
                    // scheduled; yield so it can run.
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_on_threads;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_is_leader() {
        let b = SenseBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        let b = SenseBarrier::new(4);
        let leaders = AtomicU64::new(0);
        run_on_threads(4, |_| {
            for _ in 0..100 {
                if b.wait() {
                    leaders.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn phases_are_synchronized() {
        // Classic check: a counter incremented before the barrier must be
        // fully visible after it, for many consecutive phases.
        const THREADS: usize = 4;
        const PHASES: u64 = 200;
        let b = SenseBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        run_on_threads(THREADS, |_| {
            for phase in 1..=PHASES {
                counter.fetch_add(1, Ordering::Relaxed);
                b.wait();
                assert_eq!(counter.load(Ordering::Relaxed), phase * THREADS as u64);
                b.wait();
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_participants_panics() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    fn debug_is_nonempty() {
        let b = SenseBarrier::new(2);
        assert!(format!("{b:?}").contains("SenseBarrier"));
    }

    #[test]
    fn chaos_jitter_preserves_synchronization() {
        const THREADS: usize = 4;
        const PHASES: u64 = 50;
        let chaos = Arc::new(ChaosPolicy::new(77));
        let b = SenseBarrier::with_chaos(THREADS, Some(chaos));
        let counter = AtomicU64::new(0);
        run_on_threads(THREADS, |_| {
            for phase in 1..=PHASES {
                counter.fetch_add(1, Ordering::Relaxed);
                b.wait();
                assert_eq!(counter.load(Ordering::Relaxed), phase * THREADS as u64);
                b.wait();
            }
        });
    }
}
