//! Virtual-time scaling model.
//!
//! The paper evaluates on three multi-socket machines (m4x10, m4x6, numa8x4).
//! This reproduction runs on a single core, so wall-clock thread sweeps cannot
//! show scaling. Instead, executors record an [`ExecTrace`] — per-task costs
//! plus the round/barrier structure the scheduler imposed — and this module
//! replays the trace on *p* virtual workers:
//!
//! - **Asynchronous traces** (the non-deterministic executor): tasks have no
//!   ordering constraints beyond creation, so the makespan is the greedy
//!   list-scheduling bound `max(total_work / p, longest_task)` plus per-task
//!   scheduling overhead. This matches the paper's observation that abort
//!   ratios are essentially zero (§5.1), making g-n embarrassingly parallel.
//! - **Round traces** (the deterministic executors, both DIG and PBBS-style):
//!   each round contributes `inspect-phase makespan + commit-phase makespan +
//!   barrier costs`; rounds are serialized. This is precisely the critical-path
//!   cost the paper attributes to determinism (§3.4).
//!
//! A [`MachineProfile`] supplies per-machine constants: worker count, barrier
//! latency, and a NUMA remote-access multiplier that kicks in past the size of
//! one NUMA node (reproducing the 8-thread cliff on numa8x4, §5.3).

/// Cost model constants for one simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Human-readable machine name (e.g. `"m4x10"`).
    pub name: &'static str,
    /// Maximum worker count.
    pub max_threads: usize,
    /// Fixed component of one barrier episode, nanoseconds.
    pub barrier_base_ns: f64,
    /// Per-log2(p) component of one barrier episode, nanoseconds.
    pub barrier_per_log_thread_ns: f64,
    /// Threads per NUMA node; work slows down once p exceeds this.
    pub numa_node_size: usize,
    /// Multiplier applied to all work when p spans multiple NUMA nodes.
    pub numa_penalty: f64,
}

impl MachineProfile {
    /// The paper's m4x10: four ten-core Xeon E7-4860.
    pub const M4X10: MachineProfile = MachineProfile {
        name: "m4x10",
        max_threads: 40,
        barrier_base_ns: 400.0,
        barrier_per_log_thread_ns: 250.0,
        numa_node_size: 40, // single coherence domain for modelling purposes
        numa_penalty: 1.0,
    };

    /// The paper's m4x6: four six-core Xeon E7540.
    pub const M4X6: MachineProfile = MachineProfile {
        name: "m4x6",
        max_threads: 24,
        barrier_base_ns: 400.0,
        barrier_per_log_thread_ns: 280.0,
        numa_node_size: 24,
        numa_penalty: 1.0,
    };

    /// The paper's numa8x4: eight four-core E7520 on SGI NUMALink.
    ///
    /// Runs of eight threads or fewer stay on one node; larger runs pay
    /// remote-access costs (§5.3: "sharp drop in performance at eight
    /// threads ... remote memory accesses are significantly more expensive").
    pub const NUMA8X4: MachineProfile = MachineProfile {
        name: "numa8x4",
        max_threads: 32,
        barrier_base_ns: 900.0,
        barrier_per_log_thread_ns: 600.0,
        numa_node_size: 8,
        numa_penalty: 1.9,
    };

    /// All three paper machines.
    pub const ALL: [MachineProfile; 3] = [Self::M4X10, Self::M4X6, Self::NUMA8X4];

    /// Cost in nanoseconds of one barrier episode with `p` participants.
    pub fn barrier_ns(&self, p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            self.barrier_base_ns + self.barrier_per_log_thread_ns * (p as f64).log2()
        }
    }

    /// Work multiplier for `p` workers (NUMA penalty or 1.0).
    pub fn work_multiplier(&self, p: usize) -> f64 {
        if p > self.numa_node_size {
            self.numa_penalty
        } else {
            1.0
        }
    }
}

/// Aggregate cost of one parallel phase of a round.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTrace {
    /// Sum of task costs in the phase, nanoseconds.
    pub total_ns: f64,
    /// Longest single task (or measured block) in the phase, nanoseconds —
    /// the phase's critical-path floor.
    pub max_ns: f64,
    /// Tasks processed.
    pub count: u64,
}

impl PhaseTrace {
    /// Accumulates a measured block of `count` tasks costing `total_ns`.
    pub fn add_block(&mut self, total_ns: f64, count: u64) {
        self.total_ns += total_ns;
        self.count += count;
        if count > 0 {
            self.max_ns = self.max_ns.max(total_ns / count as f64);
        }
    }

    /// Builds a uniform phase of `count` tasks costing `total_ns` together.
    pub fn uniform(total_ns: f64, count: u64) -> Self {
        PhaseTrace {
            total_ns,
            max_ns: if count > 0 {
                total_ns / count as f64
            } else {
                0.0
            },
            count,
        }
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &PhaseTrace) {
        self.total_ns += other.total_ns;
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One round of a bulk-synchronous (deterministic) execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundTrace {
    /// Inspect-phase aggregate.
    pub inspect: PhaseTrace,
    /// Commit-phase aggregate (committed tasks).
    pub commit: PhaseTrace,
    /// Inherently sequential scheduler work in the round (window carving,
    /// buffer concatenation), which no worker count parallelizes.
    pub serial_ns: f64,
    /// Scheduler work that a production runtime parallelizes (pass-boundary
    /// sorting, prefix-sum flattening); modeled as `/p` work with no
    /// longest-task floor.
    pub sched_par_ns: f64,
    /// Number of barrier episodes in the round (Figure 2 shows three).
    pub barriers: u32,
}

impl RoundTrace {
    /// Total work in the round, nanoseconds.
    pub fn total_work_ns(&self) -> f64 {
        self.inspect.total_ns + self.commit.total_ns + self.serial_ns + self.sched_par_ns
    }
}

/// A recorded execution, replayable on any virtual worker count.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecTrace {
    /// Unordered task pool, no global synchronization (non-deterministic
    /// executor, Figure 1b). Costs are per committed task; `overhead_ns` is
    /// the per-task scheduling cost (worklist + marks).
    Async {
        /// Per-task execution costs, nanoseconds.
        task_ns: Vec<f64>,
        /// Per-task scheduler overhead, nanoseconds.
        overhead_ns: f64,
    },
    /// Bulk-synchronous rounds (deterministic executors, Figure 2).
    Rounds(Vec<RoundTrace>),
    /// A purely sequential execution (baselines): fixed total time.
    Sequential {
        /// Total time, nanoseconds.
        total_ns: f64,
    },
}

impl ExecTrace {
    /// Total work contained in the trace, nanoseconds.
    pub fn total_work_ns(&self) -> f64 {
        match self {
            ExecTrace::Async {
                task_ns,
                overhead_ns,
            } => task_ns.iter().sum::<f64>() + overhead_ns * task_ns.len() as f64,
            ExecTrace::Rounds(rounds) => rounds.iter().map(RoundTrace::total_work_ns).sum(),
            ExecTrace::Sequential { total_ns } => *total_ns,
        }
    }

    /// Predicted makespan on `p` workers of `machine`, nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn makespan_ns(&self, machine: &MachineProfile, p: usize) -> f64 {
        assert!(p > 0, "need at least one worker");
        let mult = machine.work_multiplier(p);
        match self {
            ExecTrace::Sequential { total_ns } => *total_ns,
            ExecTrace::Async {
                task_ns,
                overhead_ns,
            } => {
                let total: f64 = task_ns.iter().sum::<f64>() + overhead_ns * task_ns.len() as f64;
                let longest = task_ns.iter().copied().fold(0.0f64, f64::max);
                (total * mult / p as f64).max(longest * mult)
            }
            ExecTrace::Rounds(rounds) => rounds
                .iter()
                .map(|r| {
                    let phase = |t: &PhaseTrace| -> f64 {
                        (t.total_ns * mult / p as f64).max(t.max_ns * mult)
                    };
                    phase(&r.inspect)
                        + phase(&r.commit)
                        + r.serial_ns * mult
                        + r.sched_par_ns * mult / p as f64
                        + f64::from(r.barriers) * machine.barrier_ns(p)
                })
                .sum(),
        }
    }

    /// Speedup of this trace on `p` workers relative to a baseline time.
    pub fn speedup_vs(&self, machine: &MachineProfile, p: usize, baseline_ns: f64) -> f64 {
        baseline_ns / self.makespan_ns(machine, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_trace_scales_linearly_until_longest_task() {
        let t = ExecTrace::Async {
            task_ns: vec![100.0; 1000],
            overhead_ns: 0.0,
        };
        let m = MachineProfile::M4X10;
        let s1 = t.makespan_ns(&m, 1);
        let s10 = t.makespan_ns(&m, 10);
        assert!((s1 / s10 - 10.0).abs() < 1e-9);
        // With one giant task, adding workers stops helping.
        let t2 = ExecTrace::Async {
            task_ns: vec![1_000_000.0],
            overhead_ns: 0.0,
        };
        assert_eq!(t2.makespan_ns(&m, 1), t2.makespan_ns(&m, 40));
    }

    #[test]
    fn rounds_pay_barriers() {
        let rounds: Vec<RoundTrace> = (0..100)
            .map(|_| RoundTrace {
                inspect: PhaseTrace::uniform(50.0 * 64.0, 64),
                commit: PhaseTrace::uniform(50.0 * 64.0, 64),
                serial_ns: 0.0,
                sched_par_ns: 0.0,
                barriers: 3,
            })
            .collect();
        let t = ExecTrace::Rounds(rounds);
        let m = MachineProfile::M4X10;
        // An async trace with identical work scales better because it pays no
        // barrier per round.
        let work = t.total_work_ns();
        let a = ExecTrace::Async {
            task_ns: vec![work / 12_800.0; 12_800],
            overhead_ns: 0.0,
        };
        assert!(t.makespan_ns(&m, 40) > a.makespan_ns(&m, 40));
        // But at one thread they are close (barriers cost zero at p=1).
        let r1 = t.makespan_ns(&m, 1);
        let a1 = a.makespan_ns(&m, 1);
        assert!((r1 - a1).abs() / a1 < 1e-9);
    }

    #[test]
    fn numa_penalty_creates_cliff() {
        let t = ExecTrace::Async {
            task_ns: vec![100.0; 10_000],
            overhead_ns: 0.0,
        };
        let m = MachineProfile::NUMA8X4;
        let s8 = t.speedup_vs(&m, 8, t.total_work_ns());
        let s16 = t.speedup_vs(&m, 16, t.total_work_ns());
        // 16 threads beat 8 overall but by far less than 2x.
        assert!(s16 > s8);
        assert!(s16 / s8 < 1.5);
    }

    #[test]
    fn sequential_trace_ignores_workers() {
        let t = ExecTrace::Sequential { total_ns: 123.0 };
        let m = MachineProfile::M4X6;
        assert_eq!(t.makespan_ns(&m, 1), 123.0);
        assert_eq!(t.makespan_ns(&m, 24), 123.0);
    }

    #[test]
    fn barrier_cost_grows_with_threads() {
        let m = MachineProfile::M4X10;
        assert_eq!(m.barrier_ns(1), 0.0);
        assert!(m.barrier_ns(4) < m.barrier_ns(40));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let t = ExecTrace::Sequential { total_ns: 1.0 };
        let _ = t.makespan_ns(&MachineProfile::M4X10, 0);
    }

    #[test]
    fn profiles_have_distinct_names() {
        let names: Vec<_> = MachineProfile::ALL.iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["m4x10", "m4x6", "numa8x4"]);
    }
}
