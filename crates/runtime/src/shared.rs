//! Shared mutable slices with caller-guaranteed disjoint access.
//!
//! Bulk-synchronous executors partition a slice of per-task slots among
//! threads each phase; every slot is touched by exactly one thread per phase.
//! [`SharedSlice`] exposes that pattern with a single documented unsafe
//! accessor instead of scattering raw-pointer arithmetic through executor
//! code.

use std::cell::UnsafeCell;

/// A `&mut [T]` that may be shared across threads, with unsafe per-index
/// access. The *caller* guarantees that no index is accessed concurrently
/// from two threads.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: access is mediated by `get_mut`, whose contract requires external
// synchronization per index. `T: Send` is required because elements are
// mutated from arbitrary threads.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<T> std::fmt::Debug for SharedSlice<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSlice")
            .field("len", &self.len())
            .finish()
    }
}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps an exclusive slice for shared distribution.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, and we hold the
        // unique borrow of the slice for 'a, so reinterpreting is sound.
        let data = unsafe {
            std::slice::from_raw_parts(slice.as_ptr() as *const UnsafeCell<T>, slice.len())
        };
        SharedSlice { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Exclusive access to element `i`.
    ///
    /// # Safety
    ///
    /// No other thread may access index `i` for the lifetime of the returned
    /// reference. The usual pattern is an atomic claim counter or a static
    /// partition of indices, with a barrier before reassignment.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        unsafe { &mut *self.data[i].get() }
    }

    /// Exclusive access to the contiguous range `range`.
    ///
    /// The bulk version of [`get_mut`](Self::get_mut), for phases that
    /// partition the slice into per-thread runs (e.g. the parallel input
    /// generators writing one row of output per task).
    ///
    /// # Safety
    ///
    /// No other thread may access any index in `range` for the lifetime of
    /// the returned slice.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds or inverted.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        assert!(range.start <= range.end && range.end <= self.data.len());
        // The pointer is derived from the whole backing slice, so its
        // provenance covers every element of `range`, not just one cell.
        let base = self.data.as_ptr() as *mut T;
        unsafe { std::slice::from_raw_parts_mut(base.add(range.start), range.len()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{chunk_range, run_on_threads};

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut v = vec![0u64; 1000];
        {
            let shared = SharedSlice::new(&mut v);
            let sharedr = &shared;
            run_on_threads(4, |tid| {
                for i in chunk_range(sharedr.len(), 4, tid) {
                    // SAFETY: chunk ranges are disjoint across tids.
                    unsafe { *sharedr.get_mut(i) = i as u64 * 2 };
                }
            });
        }
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2);
        }
    }

    #[test]
    fn len_and_empty() {
        let mut v = vec![1u8; 3];
        let s = SharedSlice::new(&mut v);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let mut e: Vec<u8> = vec![];
        let s2 = SharedSlice::new(&mut e);
        assert!(s2.is_empty());
    }
}
