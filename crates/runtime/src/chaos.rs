//! Seeded schedule-chaos injection.
//!
//! The paper's portability claim is that the deterministic schedule is a pure
//! function of committed-task history — *nothing* the machine does to the
//! thread interleaving may leak into the output. CI only ever exercises the
//! interleavings the OS happens to produce, so this module manufactures
//! adversarial ones on demand: a [`ChaosPolicy`], driven by a single `u64`
//! seed, perturbs every scheduling degree of freedom the paper says must not
//! matter:
//!
//! - **steal-victim order** and **chunk spill/refill order** in the work bags
//!   ([`crate::worklist`]),
//! - **barrier arrival order** via injected spin delays
//!   ([`crate::barrier`]),
//! - **per-thread start skew** in the pool ([`crate::pool`]),
//! - **forced spurious aborts** at the operator failsafe point (wired up by
//!   the executors in `galois-core`), exercising the abort/retry paths far
//!   harder than real conflicts do.
//!
//! The invariance contract: under the deterministic scheduler, *no* chaos
//! seed may change the output, the canonical round log, or any
//! schedule-derived statistic (committed / aborted / rounds). Under the
//! speculative scheduler, chaos may change the output freely — it must still
//! validate against the serial oracle. The cost when no policy is installed
//! is one branch on an `Option`, the same zero-cost-when-off pattern as the
//! probe layer.
//!
//! Two kinds of draws coexist:
//!
//! - **Ticketed** draws ([`ChaosPolicy::draw`]) consume an atomic ticket, so
//!   consecutive decisions differ — good for timing jitter and ordering
//!   perturbations where variety is the point.
//! - **Pure** draws ([`ChaosPolicy::inject_spec_abort`],
//!   [`ChaosPolicy::inject_det_abort`]) hash only the seed and the caller's
//!   key. Spec injection keys on the per-attempt mark value, so a re-pushed
//!   task draws fresh on retry and termination holds almost surely; det
//!   injection keys on the task id, so a given (seed, task) injects at most
//!   once per commit attempt and the retry runs clean.

use std::sync::atomic::{AtomicU64, Ordering};

/// Domain-separation salts for the different perturbation sites.
const SALT_SKEW: u64 = 0x5157_4553;
const SALT_BARRIER: u64 = 0x4241_5252;
const SALT_STEAL: u64 = 0x5354_4541;
const SALT_SPILL: u64 = 0x5350_494c;
const SALT_REFILL: u64 = 0x5245_4649;
const SALT_SPEC_ABORT: u64 = 0x5350_4543;
const SALT_DET_ABORT: u64 = 0x4445_5421;
const SALT_SPEC_PANIC: u64 = 0x5350_5043;
const SALT_DET_PANIC: u64 = 0x4445_5043;

/// Upper bound on any injected spin delay, so chaos slows runs by bounded
/// constant factors instead of hanging them.
const MAX_SPINS: u32 = 4096;

/// Fraction (1 in `ABORT_PERIOD`) of eligible failsafe crossings that are
/// forced to abort.
const ABORT_PERIOD: u64 = 4;

/// Fraction (1 in `PANIC_PERIOD`) of eligible failsafe crossings that are
/// forced to *panic* when panic injection is enabled. Much sparser than
/// abort injection: every drawn panic quarantines a task for the rest of
/// the run (there is no retry), so a dense draw would gut the schedule.
const PANIC_PERIOD: u64 = 64;

/// A seeded source of adversarial scheduling decisions.
///
/// Cheap to share behind an [`std::sync::Arc`]; all methods take `&self`.
/// Two policies compare equal iff their seeds do (the ticket is transient
/// state, not identity).
///
/// # Example
///
/// ```
/// use galois_runtime::chaos::ChaosPolicy;
/// let c = ChaosPolicy::new(42);
/// assert_eq!(c.seed(), 42);
/// // Pure draws are reproducible...
/// assert_eq!(c.inject_det_abort(7), ChaosPolicy::new(42).inject_det_abort(7));
/// // ...ticketed draws advance.
/// let a = c.draw(1);
/// let b = c.draw(1);
/// assert_ne!(a, b);
/// ```
#[derive(Debug)]
pub struct ChaosPolicy {
    seed: u64,
    ticket: AtomicU64,
    /// Whether the panic-injection draws are live (see
    /// [`ChaosPolicy::with_panics`]). Off by default: injected panics
    /// quarantine tasks, which changes the output, so only harnesses that
    /// check *fault-report* invariance (not output invariance) enable them.
    panics: bool,
}

impl PartialEq for ChaosPolicy {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
    }
}

impl Eq for ChaosPolicy {}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosPolicy {
    /// Creates a policy from a seed. Equal seeds ⇒ equal pure draws.
    pub fn new(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            ticket: AtomicU64::new(0),
            panics: false,
        }
    }

    /// Creates a policy whose panic-injection draws are live: roughly one in
    /// [`PANIC_PERIOD`] eligible failsafe crossings panics instead of
    /// continuing, exercising the fault-containment layer. The scheduling
    /// perturbations and abort draws are identical to [`ChaosPolicy::new`]
    /// with the same seed.
    pub fn with_panics(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            ticket: AtomicU64::new(0),
            panics: true,
        }
    }

    /// The driving seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether panic-injection draws are live.
    pub fn panics_enabled(&self) -> bool {
        self.panics
    }

    /// Pure hash of `(seed, salt, key)`: reproducible across runs.
    fn pure(&self, salt: u64, key: u64) -> u64 {
        mix(self.seed ^ mix(salt ^ mix(key)))
    }

    /// Ticketed draw: consecutive calls with the same salt yield different
    /// values. Reproducible only up to ticket interleaving, which is fine —
    /// ticketed draws feed perturbations whose whole point is that the
    /// deterministic schedule must not see them.
    pub fn draw(&self, salt: u64) -> u64 {
        let t = self.ticket.fetch_add(1, Ordering::Relaxed);
        self.pure(salt, t)
    }

    /// Spin-delay budget injected before thread `tid` starts a parallel
    /// section, staggering worker start order.
    pub fn start_skew_spins(&self, tid: usize) -> u32 {
        (self.draw(SALT_SKEW ^ tid as u64) % MAX_SPINS as u64) as u32
    }

    /// Spin-delay budget injected before a barrier arrival, perturbing which
    /// thread arrives last (and therefore leads the next phase).
    pub fn barrier_jitter_spins(&self) -> u32 {
        (self.draw(SALT_BARRIER) % (MAX_SPINS as u64 / 4)) as u32
    }

    /// A perturbed victim order for work stealing: the canonical rotation
    /// `(tid+1..threads, 0..tid)` rotated by a drawn offset and possibly
    /// reversed. Always a permutation of the other threads, so stealing
    /// still finds any available work.
    pub fn steal_order(&self, tid: usize, threads: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (tid + 1..threads).chain(0..tid).collect();
        if order.len() > 1 {
            let d = self.draw(SALT_STEAL);
            let by = (d % order.len() as u64) as usize;
            order.rotate_left(by);
            if d & (1 << 40) != 0 {
                order.reverse();
            }
        }
        order
    }

    /// Position at which a spilled chunk lands in a shared list of `len`
    /// entries (instead of always at the tail).
    pub fn spill_index(&self, len: usize) -> usize {
        debug_assert!(len > 0);
        (self.draw(SALT_SPILL) % len as u64) as usize
    }

    /// Which of `len` shared chunks a refill takes (instead of always the
    /// canonical end).
    pub fn refill_index(&self, len: usize) -> usize {
        debug_assert!(len > 0);
        (self.draw(SALT_REFILL) % len as u64) as usize
    }

    /// Whether the speculative attempt identified by `mark_value` is forced
    /// to abort at its failsafe point. Pure in `(seed, mark_value)`; mark
    /// values are per-attempt unique, so a re-pushed task draws fresh and
    /// the retry chain terminates almost surely.
    pub fn inject_spec_abort(&self, mark_value: u64) -> bool {
        self.pure(SALT_SPEC_ABORT, mark_value)
            .is_multiple_of(ABORT_PERIOD)
    }

    /// Whether the deterministic commit of task `task_id` is forced to abort
    /// once at its failsafe point (the executor retries it in place, which
    /// is schedule-invisible). Pure in `(seed, task_id)`.
    pub fn inject_det_abort(&self, task_id: u64) -> bool {
        self.pure(SALT_DET_ABORT, task_id)
            .is_multiple_of(ABORT_PERIOD)
    }

    /// Whether the speculative attempt identified by `mark_value` is forced
    /// to *panic* at its failsafe point. Always false unless the policy was
    /// built with [`ChaosPolicy::with_panics`]. Pure in `(seed, mark_value)`
    /// like [`inject_spec_abort`](Self::inject_spec_abort) — but a panicked
    /// task is quarantined, never retried, so the draw fires at most once
    /// per attempt chain.
    pub fn inject_spec_panic(&self, mark_value: u64) -> bool {
        self.panics
            && self
                .pure(SALT_SPEC_PANIC, mark_value)
                .is_multiple_of(PANIC_PERIOD)
    }

    /// Whether the deterministic commit of task `task_id` is forced to
    /// *panic* at its failsafe point. Always false unless the policy was
    /// built with [`ChaosPolicy::with_panics`]. Pure in `(seed, task_id)`,
    /// so the set of faulted tasks — and therefore the canonical fault
    /// report — is a function of the seed alone, independent of thread
    /// count.
    pub fn inject_det_panic(&self, task_id: u64) -> bool {
        self.panics
            && self
                .pure(SALT_DET_PANIC, task_id)
                .is_multiple_of(PANIC_PERIOD)
    }

    /// Burns roughly `n` spin iterations (capped at the module bound).
    pub fn spin(n: u32) {
        for _ in 0..n.min(MAX_SPINS) {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_draws_reproduce_across_instances() {
        let a = ChaosPolicy::new(7);
        let b = ChaosPolicy::new(7);
        for id in 0..200u64 {
            assert_eq!(a.inject_det_abort(id), b.inject_det_abort(id));
            assert_eq!(a.inject_spec_abort(id), b.inject_spec_abort(id));
        }
    }

    #[test]
    fn seeds_change_pure_draws() {
        let a = ChaosPolicy::new(1);
        let b = ChaosPolicy::new(2);
        let differs = (0..256u64).any(|id| a.inject_det_abort(id) != b.inject_det_abort(id));
        assert!(differs, "different seeds must inject differently");
    }

    #[test]
    fn inject_rate_is_roughly_one_in_period() {
        let c = ChaosPolicy::new(99);
        let hits = (0..10_000u64).filter(|&id| c.inject_spec_abort(id)).count();
        // 1/4 nominal; allow generous slack.
        assert!((1_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn panic_draws_are_dead_unless_opted_in() {
        let plain = ChaosPolicy::new(7);
        assert!(!plain.panics_enabled());
        assert!((0..100_000u64).all(|id| !plain.inject_det_panic(id)));
        assert!((0..100_000u64).all(|id| !plain.inject_spec_panic(id)));
    }

    #[test]
    fn panic_draws_reproduce_and_are_sparse() {
        let a = ChaosPolicy::with_panics(7);
        let b = ChaosPolicy::with_panics(7);
        assert!(a.panics_enabled());
        for id in 0..500u64 {
            assert_eq!(a.inject_det_panic(id), b.inject_det_panic(id));
            assert_eq!(a.inject_spec_panic(id), b.inject_spec_panic(id));
        }
        let hits = (0..100_000u64).filter(|&id| a.inject_det_panic(id)).count();
        // 1/64 nominal; allow generous slack.
        assert!((800..2_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn panic_opt_in_leaves_other_draws_unchanged() {
        let plain = ChaosPolicy::new(42);
        let faulty = ChaosPolicy::with_panics(42);
        for id in 0..500u64 {
            assert_eq!(plain.inject_det_abort(id), faulty.inject_det_abort(id));
            assert_eq!(plain.inject_spec_abort(id), faulty.inject_spec_abort(id));
        }
        assert_eq!(plain, faulty, "equality stays by seed");
    }

    #[test]
    fn ticketed_draws_advance() {
        let c = ChaosPolicy::new(3);
        let xs: Vec<u64> = (0..8).map(|_| c.draw(0)).collect();
        let mut uniq = xs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), xs.len(), "consecutive draws should differ");
    }

    #[test]
    fn steal_order_is_a_permutation_of_other_threads() {
        let c = ChaosPolicy::new(11);
        for threads in 1..=8usize {
            for tid in 0..threads {
                for _ in 0..10 {
                    let mut order = c.steal_order(tid, threads);
                    assert!(!order.contains(&tid));
                    order.sort_unstable();
                    let expected: Vec<usize> = (0..threads).filter(|&v| v != tid).collect();
                    assert_eq!(order, expected);
                }
            }
        }
    }

    #[test]
    fn indices_stay_in_bounds() {
        let c = ChaosPolicy::new(5);
        for len in 1..=64usize {
            assert!(c.spill_index(len) < len);
            assert!(c.refill_index(len) < len);
        }
    }

    #[test]
    fn equality_is_by_seed() {
        let a = ChaosPolicy::new(4);
        let b = ChaosPolicy::new(4);
        let _ = a.draw(0); // tickets differ
        assert_eq!(a, b);
        assert_ne!(a, ChaosPolicy::new(5));
    }

    #[test]
    fn spin_terminates() {
        ChaosPolicy::spin(u32::MAX); // capped internally
    }
}
