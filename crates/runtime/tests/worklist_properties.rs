//! Property tests for the chunked work bags.
//!
//! The bags move work in 64-task chunks, so the interesting states all sit
//! at chunk boundaries: a push chunk that is exactly full but not yet
//! spilled, a pop chunk that runs empty and must refill from the shared
//! list, a steal that lands on a partially filled chunk. Sizes here are
//! drawn as `chunks * CHUNK_CAPACITY + delta` to concentrate cases on those
//! boundaries, and every property also runs under a drawn chaos seed —
//! the bags are unordered (or FIFO only per-thread), so no seed may ever
//! lose, duplicate, or invent an item.

use galois_runtime::chaos::ChaosPolicy;
use galois_runtime::worklist::{ChunkedBag, ChunkedFifo};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Mirrors the private `worklist::CHUNK_CAPACITY`; the boundary cases
/// below are only interesting if this stays in sync.
const CHUNK_CAPACITY: usize = 64;

/// Seed 0 means "no chaos" so every property covers the unperturbed bag
/// too; any other seed wraps a live policy.
fn chaos(seed: u64) -> Option<Arc<ChaosPolicy>> {
    (seed != 0).then(|| Arc::new(ChaosPolicy::new(seed)))
}

fn drain<T>(pop: impl Fn() -> Option<T>) -> Vec<T> {
    let mut out = Vec::new();
    while let Some(v) = pop() {
        out.push(v);
    }
    out
}

proptest! {
    /// Cross-thread drain of the bag: when `n < CHUNK_CAPACITY` the items
    /// never spill, so the popper must steal from the pusher's partially
    /// filled push chunk; at exact multiples the popper's local chunks run
    /// empty and it refills whole chunks from the shared list. Either way
    /// every item comes back exactly once.
    fn bag_cross_thread_drain_round_trips(
        chunks in 0usize..3,
        delta in 0usize..3,
        threads in 2usize..5,
        seed in 0u64..1024,
    ) {
        let n = chunks * CHUNK_CAPACITY + delta;
        let bag: ChunkedBag<usize> = ChunkedBag::with_chaos(threads, chaos(seed));
        for i in 0..n {
            bag.push(0, i);
        }
        // Pop from the *last* thread: its local chunks are empty, so the
        // first pop exercises the refill/steal path, not the local cache.
        let got = drain(|| bag.pop(threads - 1));
        prop_assert_eq!(got.len(), n, "bag lost or duplicated items");
        let set: HashSet<usize> = got.iter().copied().collect();
        prop_assert_eq!(set.len(), n, "bag duplicated an item");
        prop_assert!(set.iter().all(|&v| v < n), "bag invented an item");
        prop_assert!(bag.pop(0).is_none(), "bag non-empty after full drain");
    }

    /// Interleaved push/pop sequences against a model multiset: pops that
    /// land mid-spill (push chunk full, shared list growing) must still
    /// only ever return items that were pushed and not yet popped.
    fn bag_interleaved_ops_match_a_model(
        ops in proptest::collection::vec((0u8..4, 0usize..4), 0..400),
        threads in 1usize..5,
        seed in 0u64..1024,
    ) {
        let bag: ChunkedBag<usize> = ChunkedBag::with_chaos(threads, chaos(seed));
        let mut live: HashSet<usize> = HashSet::new();
        let mut next = 0usize;
        for (op, tid) in ops {
            let tid = tid % threads;
            if op < 3 {
                // Bias 3:1 toward pushes so runs actually cross the
                // spill boundary instead of staying near empty.
                bag.push(tid, next);
                live.insert(next);
                next += 1;
            } else {
                match bag.pop(tid) {
                    Some(v) => prop_assert!(live.remove(&v), "popped {v} twice or never pushed"),
                    None => prop_assert!(live.is_empty(), "pop returned None with items live"),
                }
            }
        }
        let rest = drain(|| bag.pop(0));
        for v in &rest {
            prop_assert!(live.remove(v), "drain returned {v} twice or never pushed");
        }
        prop_assert!(live.is_empty(), "items lost: {live:?}");
    }

    /// Single-producer single-consumer FIFO exactness across chunk
    /// boundaries, chaos-free: the per-thread FIFO contract must survive
    /// the internal chunk spill/refill (chunks are stored reversed in the
    /// pop cache, which is exactly the kind of thing this would catch).
    fn fifo_is_exactly_fifo_per_thread(
        chunks in 0usize..3,
        delta in 0usize..3,
    ) {
        let n = chunks * CHUNK_CAPACITY + delta;
        let fifo: ChunkedFifo<usize> = ChunkedFifo::new(1);
        for i in 0..n {
            fifo.push(0, i);
        }
        let got = drain(|| fifo.pop(0));
        prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    /// Under chaos the FIFO's *chunk* order may be perturbed (that is the
    /// point), but the bag contract still holds: cross-thread drain
    /// returns every pushed item exactly once.
    fn fifo_under_chaos_loses_nothing(
        chunks in 0usize..3,
        delta in 0usize..3,
        threads in 2usize..5,
        seed in 1u64..1024,
    ) {
        let n = chunks * CHUNK_CAPACITY + delta;
        let fifo: ChunkedFifo<usize> = ChunkedFifo::with_chaos(threads, chaos(seed));
        for i in 0..n {
            fifo.push(0, i);
        }
        let got = drain(|| fifo.pop(threads - 1));
        let set: HashSet<usize> = got.iter().copied().collect();
        prop_assert_eq!(got.len(), n);
        prop_assert_eq!(set.len(), n);
        prop_assert!(fifo.pop(0).is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Real concurrency: producers spill chunks while consumers drain.
    /// Two producer threads push disjoint ranges as two consumer threads
    /// pop until everything has been seen, so refills and steals race
    /// against in-progress spills. The union of what the consumers saw
    /// must be exactly what the producers pushed.
    fn bag_concurrent_drain_during_spill(
        per_producer in 1usize..(3 * CHUNK_CAPACITY),
        seed in 0u64..1024,
    ) {
        let total = 2 * per_producer;
        let bag: ChunkedBag<usize> = ChunkedBag::with_chaos(4, chaos(seed));
        let popped = AtomicUsize::new(0);
        let mut seen: Vec<Vec<usize>> = Vec::new();
        std::thread::scope(|s| {
            for p in 0..2usize {
                let bag = &bag;
                s.spawn(move || {
                    for i in 0..per_producer {
                        bag.push(p, p * per_producer + i);
                    }
                });
            }
            let consumers: Vec<_> = (0..2usize)
                .map(|c| {
                    let (bag, popped) = (&bag, &popped);
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            if let Some(v) = bag.pop(2 + c) {
                                mine.push(v);
                                popped.fetch_add(1, Ordering::Relaxed);
                            } else if popped.load(Ordering::Relaxed) == total {
                                return mine;
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            for c in consumers {
                seen.push(c.join().unwrap());
            }
        });
        let union: HashSet<usize> = seen.iter().flatten().copied().collect();
        let count: usize = seen.iter().map(Vec::len).sum();
        prop_assert_eq!(count, total, "concurrent drain lost or duplicated items");
        prop_assert_eq!(union.len(), total);
        prop_assert!(union.iter().all(|&v| v < total));
    }
}
