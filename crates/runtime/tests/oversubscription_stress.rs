//! Stress tests under heavy oversubscription — the configuration this
//! reproduction actually runs in (many threads, one core), where lost
//! wakeups and missed barrier phases would surface quickly.

use galois_runtime::pool::run_on_threads;
use galois_runtime::worklist::{BucketedQueue, ChunkedBag, ChunkedFifo, Terminator};
use galois_runtime::SenseBarrier;
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn barrier_survives_16x_oversubscription() {
    const THREADS: usize = 16;
    const PHASES: u64 = 300;
    let barrier = SenseBarrier::new(THREADS);
    let counter = AtomicU64::new(0);
    run_on_threads(THREADS, |_| {
        for phase in 1..=PHASES {
            counter.fetch_add(1, Ordering::Relaxed);
            barrier.wait();
            assert_eq!(counter.load(Ordering::Relaxed), phase * THREADS as u64);
            barrier.wait();
        }
    });
}

#[test]
fn producer_consumer_pipeline_through_bags() {
    // Half the threads produce into a LIFO bag; all drain into a FIFO queue;
    // totals conserved under a termination detector.
    const THREADS: usize = 8;
    const ITEMS: u64 = 20_000;
    let stage1: ChunkedBag<u64> = ChunkedBag::new(THREADS);
    let stage2: ChunkedFifo<u64> = ChunkedFifo::new(THREADS);
    let term = Terminator::new();
    term.register(ITEMS as usize);
    let drained = AtomicU64::new(0);
    run_on_threads(THREADS, |tid| {
        if tid < THREADS / 2 {
            let per = ITEMS / (THREADS / 2) as u64;
            for i in 0..per {
                stage1.push(tid, tid as u64 * per + i);
            }
        }
        loop {
            match stage1.pop(tid) {
                Some(x) => {
                    stage2.push(tid, x * 2);
                    term.finish_one();
                }
                None => {
                    if term.is_done() {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
    });
    run_on_threads(THREADS, |tid| {
        while let Some(x) = stage2.pop(tid) {
            assert_eq!(x % 2, 0);
            drained.fetch_add(1, Ordering::Relaxed);
        }
    });
    // Sweep leftovers single-threaded (racy pops may give up early).
    while stage2.pop(0).is_some() {
        drained.fetch_add(1, Ordering::Relaxed);
    }
    assert_eq!(drained.load(Ordering::Relaxed), ITEMS);
}

#[test]
fn bucketed_queue_under_churn() {
    const THREADS: usize = 8;
    let q: BucketedQueue<u64> = BucketedQueue::new(THREADS, 32);
    let popped = AtomicU64::new(0);
    run_on_threads(THREADS, |tid| {
        // Interleave pushes and pops with priorities derived from values.
        for i in 0..2_000u64 {
            q.push(tid, (i % 32) as usize, i);
            if i % 3 == 0 && q.pop(tid).is_some() {
                popped.fetch_add(1, Ordering::Relaxed);
            }
        }
        while q.pop(tid).is_some() {
            popped.fetch_add(1, Ordering::Relaxed);
        }
    });
    while q.pop(0).is_some() {
        popped.fetch_add(1, Ordering::Relaxed);
    }
    assert_eq!(popped.load(Ordering::Relaxed), THREADS as u64 * 2_000);
}

#[test]
fn parallel_sort_under_oversubscription() {
    let mut v: Vec<(u64, u64)> = (0..50_000u64)
        .map(|i| ((i * 2654435761) % 1000, i))
        .collect();
    let mut expect = v.clone();
    expect.sort_by_key(|x| x.0);
    galois_runtime::sort::parallel_sort_by_key(&mut v, 12, |x| x.0);
    assert_eq!(v, expect);
}
