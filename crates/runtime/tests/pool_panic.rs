//! Regression test for the barrier-poison protocol: a worker that panics
//! while its peers are parked at (or heading into) a `SenseBarrier` must
//! not strand them. The pool's fault hook poisons the barrier, the peers'
//! `wait_checked` calls return `Err(BarrierPoisoned)` and they drain, the
//! scoped pool joins every thread, and the original panic propagates to
//! the caller — all within bounded time.
//!
//! Before poisoning existed this scenario deadlocked: the barrier's arrival
//! count could never reach `total` with one participant dead, so the
//! survivors spun forever and `std::thread::scope` never returned.

use galois_runtime::pool::run_on_threads_fault;
use galois_runtime::{BarrierPoisoned, SenseBarrier};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Hard cap on how long the join may take. Generous — the poison path is
/// microseconds — but small enough that a regression to the deadlock shows
/// up as a crisp test failure instead of a hung CI job.
const JOIN_BOUND: Duration = Duration::from_secs(30);

/// Runs `f` on a watchdog thread so a deadlock fails the test instead of
/// hanging it. Returns the caught panic payload text, if `f` panicked.
fn bounded(f: impl FnOnce() + Send + 'static) -> Option<String> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        let _ = tx.send(
            result
                .err()
                .map(|payload| match payload.downcast::<String>() {
                    Ok(s) => *s,
                    Err(payload) => match payload.downcast::<&'static str>() {
                        Ok(s) => (*s).to_string(),
                        Err(_) => "non-string payload".to_string(),
                    },
                }),
        );
    });
    rx.recv_timeout(JOIN_BOUND)
        .expect("worker-panic run deadlocked: barrier poison failed")
}

#[test]
fn worker_panic_mid_round_releases_barrier_waiters() {
    // Four "round-structured" workers; tid 2 dies between two barriers.
    // The survivors must see the poison at whichever barrier they reach
    // next, and the panic must propagate out of the pool.
    let rounds_survived = std::sync::Arc::new(AtomicU64::new(0));
    let seen = rounds_survived.clone();
    let msg = bounded(move || {
        let barrier = SenseBarrier::new(4);
        run_on_threads_fault(4, None, Some(&|| barrier.poison()), |tid| {
            // Round 1: everyone arrives.
            barrier.wait_checked().expect("first round is clean");
            if tid == 2 {
                panic!("worker {tid} exploded mid-round");
            }
            // Round 2: tid 2 never arrives; the rest must be released with
            // an error, not spin forever.
            match barrier.wait_checked() {
                Err(BarrierPoisoned) => {
                    seen.fetch_add(1, Ordering::Relaxed);
                }
                Ok(_) => {
                    // Benign race: a waiter can slip through the second
                    // barrier before the unwinding worker reaches the
                    // poison hook. It must then see poison at the next one.
                    barrier
                        .wait_checked()
                        .expect_err("poison must surface by the following barrier");
                    seen.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    })
    .expect("the worker panic must propagate out of the pool");
    assert!(msg.contains("worker 2 exploded"), "got: {msg}");
    assert_eq!(
        rounds_survived.load(Ordering::Relaxed),
        3,
        "all three survivors must drain through the poisoned barrier"
    );
}

#[test]
fn worker_panic_while_peers_already_park_at_the_barrier() {
    // Tighter interleaving: the panicking worker *waits* until every peer
    // is provably parked at the barrier (arrival counter), then dies. This
    // is the exact shape of the historical deadlock.
    let msg = bounded(|| {
        let barrier = SenseBarrier::new(3);
        let parked = AtomicU64::new(0);
        run_on_threads_fault(3, None, Some(&|| barrier.poison()), |tid| {
            if tid == 0 {
                // Die only after both peers are committed to spinning.
                while parked.load(Ordering::Acquire) < 2 {
                    std::hint::spin_loop();
                }
                panic!("late fault");
            }
            parked.fetch_add(1, Ordering::Release);
            barrier
                .wait_checked()
                .expect_err("the dead participant can never arrive");
        });
    })
    .expect("panic must propagate");
    assert!(msg.contains("late fault"), "got: {msg}");
}

#[test]
fn clean_runs_are_unaffected_by_the_fault_hook() {
    // The containment plumbing must be inert on the happy path: same
    // rounds, no poison, no error.
    let done = bounded(|| {
        let barrier = SenseBarrier::new(4);
        let total = AtomicU64::new(0);
        run_on_threads_fault(4, None, Some(&|| barrier.poison()), |_tid| {
            for _ in 0..100 {
                barrier.wait_checked().expect("no fault, no poison");
                total.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(!barrier.is_poisoned());
        assert_eq!(total.load(Ordering::Relaxed), 400);
    });
    assert!(done.is_none(), "clean run panicked: {done:?}");
}
