//! Uniform measurement drivers over every (application, variant) pair.

use crate::inputs;
use galois_apps::{bfs, dmr, dt, mis, pfp, Variant};
use galois_core::{Executor, RoundLog, RunReport, Schedule};
use galois_runtime::simtime::{ExecTrace, RoundTrace};
use std::time::{Duration, Instant};

/// The five benchmark applications (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Breadth-first search labelling.
    Bfs,
    /// Delaunay mesh refinement.
    Dmr,
    /// Delaunay triangulation.
    Dt,
    /// Maximal independent set.
    Mis,
    /// Preflow-push max-flow.
    Pfp,
}

impl App {
    /// All applications, in the paper's presentation order.
    pub const ALL: [App; 5] = [App::Bfs, App::Dmr, App::Dt, App::Mis, App::Pfp];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            App::Bfs => "bfs",
            App::Dmr => "dmr",
            App::Dt => "dt",
            App::Mis => "mis",
            App::Pfp => "pfp",
        }
    }

    /// The variants the paper evaluates for this app (§4.1: pfp has no PBBS
    /// counterpart).
    pub fn variants(&self) -> &'static [Variant] {
        match self {
            App::Pfp => &[Variant::Seq, Variant::GaloisNondet, Variant::GaloisDet],
            _ => &[
                Variant::Seq,
                Variant::GaloisNondet,
                Variant::GaloisDet,
                Variant::Pbbs,
            ],
        }
    }
}

/// One benchmark run's results.
#[derive(Debug)]
pub struct Measurement {
    /// Application.
    pub app: App,
    /// Variant.
    pub variant: Variant,
    /// Real worker threads used.
    pub threads: usize,
    /// Wall-clock time of the compute section.
    pub elapsed: Duration,
    /// Committed tasks.
    pub committed: u64,
    /// Aborted task attempts.
    pub aborted: u64,
    /// Atomic updates (mark CASes, priority writes, application atomics).
    pub atomic_updates: u64,
    /// Bulk-synchronous rounds (0 for asynchronous executions).
    pub rounds: u64,
    /// Virtual-time trace, when requested.
    pub trace: Option<ExecTrace>,
    /// Per-thread abstract-location access streams, when requested.
    pub accesses: Option<Vec<Vec<u32>>>,
    /// Per-round schedule log, when requested (Galois variants only).
    pub round_log: Option<RoundLog>,
}

impl Measurement {
    /// Abort ratio (Figure 4).
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// Committed tasks per µs (Figure 4).
    pub fn commit_rate_per_us(&self) -> f64 {
        self.committed as f64 / (self.elapsed.as_secs_f64() * 1e6).max(1e-9)
    }

    /// Atomic updates per µs (Figure 5).
    pub fn atomic_rate_per_us(&self) -> f64 {
        self.atomic_updates as f64 / (self.elapsed.as_secs_f64() * 1e6).max(1e-9)
    }

    /// Leader-serial fraction of the round work, for bulk-synchronous runs
    /// recorded with a trace: `serial_ns / total_work_ns` aggregated over
    /// every round (see [`crate::tables::serial_fraction`]). `None` when no
    /// rounds trace was recorded (asynchronous or untraced runs).
    pub fn serial_fraction(&self) -> Option<f64> {
        match &self.trace {
            Some(ExecTrace::Rounds(rounds)) => Some(crate::tables::serial_fraction(rounds)),
            _ => None,
        }
    }
}

/// Options for a measurement run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Opts {
    /// Record a virtual-time trace.
    pub trace: bool,
    /// Record abstract-location access streams.
    pub access: bool,
    /// Disable the continuation optimization (Figure 10's g-d baseline).
    pub no_continuation: bool,
    /// Record a per-round schedule log ([`Measurement::round_log`]).
    pub round_log: bool,
}

fn executor(app: App, variant: Variant, threads: usize, opts: Opts) -> Executor {
    let schedule = match variant {
        Variant::Seq => Schedule::Serial,
        Variant::GaloisNondet => Schedule::Speculative,
        Variant::GaloisDet => Schedule::Deterministic(galois_core::DetOptions {
            continuation: !opts.no_continuation,
            // The §3.3 locality-spreading optimization: dt/dmr tasks adjacent
            // in creation order have overlapping cavities, so the generated
            // deterministic variants spread them across rounds (the paper's
            // g-d includes all §3.3 optimizations).
            locality_spread: match app {
                App::Dt | App::Dmr => 16,
                _ => 1,
            },
            ..Default::default()
        }),
        Variant::Pbbs => unreachable!("pbbs variants do not use the Galois executor"),
    };
    // Label-correcting bfs and wave-propagating pfp need breadth-like order
    // under speculation (the Galois worklist-policy choice; see
    // WorklistPolicy docs).
    let worklist = match (app, variant) {
        (App::Bfs | App::Pfp, Variant::GaloisNondet) => galois_core::WorklistPolicy::Fifo,
        _ => galois_core::WorklistPolicy::Lifo,
    };
    Executor::new()
        .threads(threads)
        .schedule(schedule)
        .worklist(worklist)
        .record_trace(opts.trace)
        .record_access(opts.access)
        .record_rounds(opts.round_log)
}

fn from_report(app: App, variant: Variant, threads: usize, mut report: RunReport) -> Measurement {
    Measurement {
        app,
        variant,
        threads,
        elapsed: report.stats.elapsed,
        committed: report.stats.committed,
        aborted: report.stats.aborted,
        atomic_updates: report.stats.atomic_updates,
        rounds: report.stats.rounds,
        round_log: report.take_round_log(),
        trace: report.trace,
        accesses: report.accesses.map(|per| {
            per.into_iter()
                .map(|v| v.into_iter().map(|a| a.loc).collect())
                .collect()
        }),
    }
}

/// The shared configuration path for every executor-based measurement: one
/// [`executor`] call, one app-specific loop body, one [`from_report`]
/// conversion. The fig4/fig7 drivers and the serial-fraction table all go
/// through here, so an `Opts` knob (trace, access, round log) only has to be
/// wired once.
fn galois_run(
    app: App,
    variant: Variant,
    threads: usize,
    opts: Opts,
    body: impl FnOnce(&Executor) -> RunReport,
) -> Measurement {
    let exec = executor(app, variant, threads, opts);
    from_report(app, variant, threads, body(&exec))
}

fn rounds_trace(rt: Vec<RoundTrace>, on: bool) -> Option<ExecTrace> {
    on.then_some(ExecTrace::Rounds(rt))
}

/// Runs one (app, variant) measurement.
///
/// Returns `None` for unsupported combinations (pfp has no PBBS variant).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn measure(
    app: App,
    variant: Variant,
    threads: usize,
    scale: f64,
    opts: Opts,
) -> Option<Measurement> {
    assert!(threads > 0);
    let m = match (app, variant) {
        (App::Bfs, Variant::Pbbs) => {
            let g = inputs::bfs_graph(scale);
            let t0 = Instant::now();
            let (_d, _p, stats) = bfs::pbbs(&g, 0, threads, opts.trace);
            Measurement {
                app,
                variant,
                threads,
                elapsed: t0.elapsed(),
                committed: stats.visited,
                aborted: 0,
                atomic_updates: stats.atomic_updates,
                rounds: stats.rounds,
                trace: rounds_trace(stats.round_traces, opts.trace),
                accesses: None,
                round_log: None,
            }
        }
        (App::Bfs, v) => {
            let g = inputs::bfs_graph(scale);
            galois_run(app, v, threads, opts, |exec| bfs::galois(&g, 0, exec).1)
        }
        (App::Mis, Variant::Pbbs) => {
            let g = inputs::mis_graph(scale);
            let t0 = Instant::now();
            let (_f, stats) = mis::pbbs(&g, threads, opts.trace);
            Measurement {
                app,
                variant,
                threads,
                elapsed: t0.elapsed(),
                committed: stats.committed,
                aborted: stats.aborted,
                atomic_updates: stats.reserved,
                rounds: stats.rounds,
                trace: rounds_trace(stats.round_traces, opts.trace),
                accesses: None,
                round_log: None,
            }
        }
        (App::Mis, v) => {
            let g = inputs::mis_graph(scale);
            galois_run(app, v, threads, opts, |exec| mis::galois(&g, exec).1)
        }
        (App::Dt, Variant::Pbbs) => {
            let pts = inputs::dt_points(scale);
            let t0 = Instant::now();
            let (_mesh, stats) = dt::pbbs(&pts, inputs::SEED, threads, opts.trace);
            Measurement {
                app,
                variant,
                threads,
                elapsed: t0.elapsed(),
                committed: stats.committed,
                aborted: stats.aborted,
                atomic_updates: stats.atomic_updates,
                rounds: stats.rounds,
                trace: rounds_trace(stats.round_traces, opts.trace),
                accesses: None,
                round_log: None,
            }
        }
        (App::Dt, v) => {
            let pts = inputs::dt_points(scale);
            galois_run(app, v, threads, opts, |exec| {
                dt::galois(&pts, inputs::SEED, exec).1
            })
        }
        (App::Dmr, Variant::Pbbs) => {
            let mesh = inputs::dmr_mesh(scale);
            let t0 = Instant::now();
            let stats = dmr::pbbs(&mesh, threads, opts.trace);
            Measurement {
                app,
                variant,
                threads,
                elapsed: t0.elapsed(),
                committed: stats.committed,
                aborted: stats.aborted,
                atomic_updates: stats.atomic_updates,
                rounds: stats.rounds,
                trace: rounds_trace(stats.round_traces, opts.trace),
                accesses: None,
                round_log: None,
            }
        }
        (App::Dmr, v) => {
            let mesh = inputs::dmr_mesh(scale);
            galois_run(app, v, threads, opts, |exec| dmr::galois(&mesh, exec))
        }
        (App::Pfp, Variant::Pbbs) => return None,
        (App::Pfp, Variant::Seq) => {
            let net = inputs::pfp_network(scale);
            let t0 = Instant::now();
            let (_flow, stats) = pfp::seq(&net);
            let elapsed = t0.elapsed();
            Measurement {
                app,
                variant,
                threads: 1,
                elapsed,
                committed: stats.pushes + stats.relabels,
                aborted: 0,
                atomic_updates: 0,
                rounds: stats.global_relabels,
                trace: opts.trace.then_some(ExecTrace::Sequential {
                    total_ns: elapsed.as_nanos() as f64,
                }),
                accesses: None,
                round_log: None,
            }
        }
        (App::Pfp, v) => {
            let net = inputs::pfp_network(scale);
            let exec = executor(app, v, threads, opts);
            let (_flow, mut report) = pfp::galois(&net, &exec);
            // Merge bout traces.
            let trace = opts.trace.then(|| {
                let mut rounds: Vec<RoundTrace> = Vec::new();
                let mut tasks: Vec<f64> = Vec::new();
                let mut overhead = 0.0;
                for r in &report.reports {
                    match &r.trace {
                        Some(ExecTrace::Rounds(rt)) => rounds.extend(rt.iter().cloned()),
                        Some(ExecTrace::Async {
                            task_ns,
                            overhead_ns,
                        }) => {
                            tasks.extend_from_slice(task_ns);
                            overhead = overhead_ns.max(overhead);
                        }
                        _ => {}
                    }
                }
                if rounds.is_empty() {
                    ExecTrace::Async {
                        task_ns: tasks,
                        overhead_ns: overhead,
                    }
                } else {
                    ExecTrace::Rounds(rounds)
                }
            });
            let mut accesses = None;
            let mut merged: Vec<Vec<u32>> = Vec::new();
            let mut any = false;
            for r in &report.reports {
                if let Some(per) = &r.accesses {
                    any = true;
                    merged.resize_with(merged.len().max(per.len()), Vec::new);
                    for (tid, stream) in per.iter().enumerate() {
                        merged[tid].extend(stream.iter().map(|a| a.loc));
                    }
                }
            }
            if any {
                accesses = Some(merged);
            }
            // Concatenate per-bout round logs, renumbering rounds globally so
            // the merged log is still a single monotone sequence.
            let round_log = opts.round_log.then(|| {
                let mut log = RoundLog::new();
                let mut next = 0u64;
                for r in &mut report.reports {
                    if let Some(bout) = r.take_round_log() {
                        for mut rec in bout.into_records() {
                            rec.round = next;
                            next += 1;
                            galois_core::Probe::on_round(&mut log, rec);
                        }
                    }
                }
                log
            });
            Measurement {
                app,
                variant: v,
                threads,
                elapsed: report.stats.elapsed,
                committed: report.stats.committed,
                aborted: report.stats.aborted,
                atomic_updates: report.stats.atomic_updates,
                rounds: report.stats.rounds,
                trace,
                accesses,
                round_log,
            }
        }
    };
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: f64 = 0.01;

    #[test]
    fn every_supported_combo_runs() {
        for app in App::ALL {
            for &v in app.variants() {
                let m = measure(app, v, 1, TINY, Opts::default())
                    .unwrap_or_else(|| panic!("{:?}/{v} should be supported", app));
                assert!(m.committed > 0, "{:?}/{v} committed nothing", app);
            }
        }
    }

    #[test]
    fn pfp_pbbs_is_unsupported() {
        assert!(measure(App::Pfp, Variant::Pbbs, 1, TINY, Opts::default()).is_none());
    }

    #[test]
    fn traces_recorded_on_request() {
        let m = measure(
            App::Bfs,
            Variant::GaloisDet,
            1,
            TINY,
            Opts {
                trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(matches!(m.trace, Some(ExecTrace::Rounds(_))));
        let m = measure(
            App::Mis,
            Variant::GaloisNondet,
            1,
            TINY,
            Opts {
                trace: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(matches!(m.trace, Some(ExecTrace::Async { .. })));
    }

    #[test]
    fn serial_fraction_reported_for_round_traces_only() {
        let opts = Opts {
            trace: true,
            ..Default::default()
        };
        let det = measure(App::Mis, Variant::GaloisDet, 1, TINY, opts).unwrap();
        let frac = det.serial_fraction().expect("rounds trace recorded");
        assert!(
            frac > 0.0 && frac < 1.0,
            "leader-serial fraction should be a proper fraction, got {frac}"
        );
        let spec = measure(App::Mis, Variant::GaloisNondet, 1, TINY, opts).unwrap();
        assert_eq!(spec.serial_fraction(), None, "async traces have no rounds");
        let untraced = measure(App::Mis, Variant::GaloisDet, 1, TINY, Opts::default()).unwrap();
        assert_eq!(untraced.serial_fraction(), None);
    }

    #[test]
    fn access_streams_recorded_on_request() {
        let m = measure(
            App::Mis,
            Variant::GaloisDet,
            2,
            TINY,
            Opts {
                access: true,
                ..Default::default()
            },
        )
        .unwrap();
        let streams = m.accesses.expect("streams requested");
        assert_eq!(streams.len(), 2);
        assert!(streams.iter().map(|s| s.len()).sum::<usize>() > 0);
    }

    #[test]
    fn deterministic_variant_portable_counts() {
        let a = measure(App::Mis, Variant::GaloisDet, 1, TINY, Opts::default()).unwrap();
        let b = measure(App::Mis, Variant::GaloisDet, 3, TINY, Opts::default()).unwrap();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.rounds, b.rounds);
    }
}
