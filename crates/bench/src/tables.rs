//! Plain-text table rendering for the figure harnesses, plus the small
//! numeric summaries (medians, leader-serial fractions) they report.

use galois_core::RoundLog;
use galois_runtime::simtime::RoundTrace;
use std::collections::BTreeMap;

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}  ", c, w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Fraction of a bulk-synchronous execution's work that is inherently
/// serial leader work: `serial_ns` summed over the rounds, divided by the
/// rounds' total work (inspect + commit + serial + parallelizable
/// scheduling).
///
/// This is the Amdahl term the epoch-tagged turnaround attacks — the
/// higher it is, the sooner adding threads stops helping the deterministic
/// variant. Returns `0.0` for an empty or zero-work trace.
pub fn serial_fraction(rounds: &[RoundTrace]) -> f64 {
    let serial: f64 = rounds.iter().map(|r| r.serial_ns).sum();
    let total: f64 = rounds.iter().map(RoundTrace::total_work_ns).sum();
    if total > 0.0 {
        serial / total
    } else {
        0.0
    }
}

/// Renders a [`RoundLog`] as a per-round table: window, attempts, commit
/// ratio, the hottest conflicting abstract location, and the measured phase
/// times. This is the human-readable counterpart of the JSONL emitters
/// ([`RoundLog::canonical_jsonl`] / [`RoundLog::jsonl_with_timing`]).
pub fn round_log_table(log: &RoundLog) -> Table {
    let mut t = Table::new(&[
        "round",
        "window",
        "attempted",
        "committed",
        "failed",
        "commit%",
        "top-conflict",
        "inspect-us",
        "commit-us",
        "serial-us",
    ]);
    for r in log.records() {
        let top = match r.conflicts.first() {
            Some((loc, n)) => format!("{loc} x{n}"),
            None => "-".into(),
        };
        t.row(vec![
            r.round.to_string(),
            r.window.to_string(),
            r.attempted.to_string(),
            r.committed.to_string(),
            r.failed.to_string(),
            f(100.0 * r.commit_ratio()),
            top,
            f(r.inspect_ns / 1e3),
            f(r.commit_ns / 1e3),
            f(r.serial_ns / 1e3),
        ]);
    }
    t
}

/// Canonical `BENCH_rounds.json` entry name for a per-round metric.
///
/// Every producer (the `bench_all` rounds suite) and consumer (fig7, the
/// CI perf smoke) goes through this helper, so a rename shows up as a
/// compile-time conflict or an explicit "missing entry" report — never as
/// a silently skipped row. Metrics: `round_wall_ns`, `barriers_per_round`,
/// `allocs_per_round`.
pub fn rounds_metric_name(app: &str, threads: usize, metric: &str) -> String {
    format!("rounds/{app}_t{threads}_{metric}")
}

/// Loads a criterion-shim JSONL bench file (`BENCH_*.json`) into a
/// `name → median` map.
///
/// Each line has the shape
/// `{"name":"...","median_ns":X,"mean_ns":Y,"samples":N}`; for count-based
/// rounds metrics the `_ns` fields carry plain counts (see the
/// `BENCH_rounds.json` legend in the README). Returns an error naming the
/// path when the file is missing or a line does not parse, so callers can
/// report instead of skip.
pub fn load_bench_jsonl(path: &std::path::Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut map = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let field = |key: &str| -> Option<&str> {
            let tag = format!("\"{key}\":");
            let rest = &line[line.find(&tag)? + tag.len()..];
            let end = rest.find([',', '}'])?;
            Some(rest[..end].trim())
        };
        let name = field("name")
            .and_then(|v| v.strip_prefix('"'))
            .and_then(|v| v.strip_suffix('"'));
        let median = field("median_ns").and_then(|v| v.parse::<f64>().ok());
        match (name, median) {
            (Some(n), Some(m)) => {
                map.insert(n.to_string(), m);
            }
            _ => {
                return Err(format!(
                    "{}:{}: not a bench record: {line}",
                    path.display(),
                    lineno + 1
                ))
            }
        }
    }
    Ok(map)
}

/// Median of a sample (NaNs excluded).
pub fn median(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["app", "value"]);
        t.row(vec!["bfs".into(), "1.23".into()]);
        t.row(vec!["dmr-long-name".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("app"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn median_cases() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert!(median(&[]).is_nan());
        assert_eq!(median(&[f64::NAN, 5.0]), 5.0);
    }

    #[test]
    fn serial_fraction_aggregates_over_rounds() {
        use galois_runtime::simtime::PhaseTrace;
        let round = |work: f64, serial: f64| RoundTrace {
            inspect: PhaseTrace {
                total_ns: work / 2.0,
                max_ns: work / 2.0,
                count: 1,
            },
            commit: PhaseTrace {
                total_ns: work / 2.0,
                max_ns: work / 2.0,
                count: 1,
            },
            serial_ns: serial,
            sched_par_ns: 0.0,
            barriers: 3,
        };
        // 10 serial out of (90 + 10) total.
        assert_eq!(serial_fraction(&[round(60.0, 5.0), round(30.0, 5.0)]), 0.1);
        assert_eq!(serial_fraction(&[]), 0.0);
        assert_eq!(serial_fraction(&[round(0.0, 0.0)]), 0.0);
    }

    #[test]
    fn round_log_table_renders_records() {
        use galois_core::{Probe, RoundRecord};
        let mut log = RoundLog::new();
        log.on_round(RoundRecord {
            round: 0,
            window: 8,
            attempted: 8,
            committed: 6,
            failed: 2,
            conflicts: vec![(3, 2)],
            inspect_ns: 1000.0,
            commit_ns: 2000.0,
            serial_ns: 500.0,
        });
        log.on_round(RoundRecord {
            round: 1,
            window: 12,
            attempted: 4,
            committed: 4,
            failed: 0,
            conflicts: vec![],
            ..Default::default()
        });
        let s = round_log_table(&log).render();
        assert_eq!(s.lines().count(), 4, "header + rule + 2 rows:\n{s}");
        assert!(s.contains("3 x2"), "top conflict rendered:\n{s}");
        assert!(s.lines().nth(3).unwrap().contains('-'), "no-conflict dash");
    }

    #[test]
    fn rounds_names_are_canonical() {
        assert_eq!(
            rounds_metric_name("bfs", 4, "barriers_per_round"),
            "rounds/bfs_t4_barriers_per_round"
        );
        assert_eq!(
            rounds_metric_name("mis", 1, "round_wall_ns"),
            "rounds/mis_t1_round_wall_ns"
        );
    }

    #[test]
    fn jsonl_loader_reads_shim_records_and_reports_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("galois-tables-test-{}.json", std::process::id()));
        std::fs::write(
            &path,
            "{\"name\":\"rounds/bfs_t2_allocs_per_round\",\"median_ns\":0.0,\"mean_ns\":0.1,\"samples\":9}\n\
             {\"name\":\"gen/x\",\"median_ns\":1234.5,\"mean_ns\":1300.0,\"samples\":3}\n",
        )
        .unwrap();
        let map = load_bench_jsonl(&path).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map["rounds/bfs_t2_allocs_per_round"], 0.0);
        assert_eq!(map["gen/x"], 1234.5);
        std::fs::write(&path, "not a record\n").unwrap();
        let err = load_bench_jsonl(&path).unwrap_err();
        assert!(err.contains("not a bench record"), "{err}");
        std::fs::remove_file(&path).unwrap();
        let err = load_bench_jsonl(&path).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.6234), "0.6234");
        assert_eq!(f(2.4), "2.40");
        assert_eq!(f(250.0), "250");
    }
}
