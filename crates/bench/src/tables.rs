//! Plain-text table rendering for the figure harnesses, plus the small
//! numeric summaries (medians, leader-serial fractions) they report.

use galois_core::RoundLog;
use galois_runtime::simtime::RoundTrace;

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}  ", c, w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Fraction of a bulk-synchronous execution's work that is inherently
/// serial leader work: `serial_ns` summed over the rounds, divided by the
/// rounds' total work (inspect + commit + serial + parallelizable
/// scheduling).
///
/// This is the Amdahl term the epoch-tagged turnaround attacks — the
/// higher it is, the sooner adding threads stops helping the deterministic
/// variant. Returns `0.0` for an empty or zero-work trace.
pub fn serial_fraction(rounds: &[RoundTrace]) -> f64 {
    let serial: f64 = rounds.iter().map(|r| r.serial_ns).sum();
    let total: f64 = rounds.iter().map(RoundTrace::total_work_ns).sum();
    if total > 0.0 {
        serial / total
    } else {
        0.0
    }
}

/// Renders a [`RoundLog`] as a per-round table: window, attempts, commit
/// ratio, the hottest conflicting abstract location, and the measured phase
/// times. This is the human-readable counterpart of the JSONL emitters
/// ([`RoundLog::canonical_jsonl`] / [`RoundLog::jsonl_with_timing`]).
pub fn round_log_table(log: &RoundLog) -> Table {
    let mut t = Table::new(&[
        "round",
        "window",
        "attempted",
        "committed",
        "failed",
        "commit%",
        "top-conflict",
        "inspect-us",
        "commit-us",
        "serial-us",
    ]);
    for r in log.records() {
        let top = match r.conflicts.first() {
            Some((loc, n)) => format!("{loc} x{n}"),
            None => "-".into(),
        };
        t.row(vec![
            r.round.to_string(),
            r.window.to_string(),
            r.attempted.to_string(),
            r.committed.to_string(),
            r.failed.to_string(),
            f(100.0 * r.commit_ratio()),
            top,
            f(r.inspect_ns / 1e3),
            f(r.commit_ns / 1e3),
            f(r.serial_ns / 1e3),
        ]);
    }
    t
}

/// Median of a sample (NaNs excluded).
pub fn median(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["app", "value"]);
        t.row(vec!["bfs".into(), "1.23".into()]);
        t.row(vec!["dmr-long-name".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("app"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn median_cases() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert!(median(&[]).is_nan());
        assert_eq!(median(&[f64::NAN, 5.0]), 5.0);
    }

    #[test]
    fn serial_fraction_aggregates_over_rounds() {
        use galois_runtime::simtime::PhaseTrace;
        let round = |work: f64, serial: f64| RoundTrace {
            inspect: PhaseTrace {
                total_ns: work / 2.0,
                max_ns: work / 2.0,
                count: 1,
            },
            commit: PhaseTrace {
                total_ns: work / 2.0,
                max_ns: work / 2.0,
                count: 1,
            },
            serial_ns: serial,
            sched_par_ns: 0.0,
            barriers: 3,
        };
        // 10 serial out of (90 + 10) total.
        assert_eq!(serial_fraction(&[round(60.0, 5.0), round(30.0, 5.0)]), 0.1);
        assert_eq!(serial_fraction(&[]), 0.0);
        assert_eq!(serial_fraction(&[round(0.0, 0.0)]), 0.0);
    }

    #[test]
    fn round_log_table_renders_records() {
        use galois_core::{Probe, RoundRecord};
        let mut log = RoundLog::new();
        log.on_round(RoundRecord {
            round: 0,
            window: 8,
            attempted: 8,
            committed: 6,
            failed: 2,
            conflicts: vec![(3, 2)],
            inspect_ns: 1000.0,
            commit_ns: 2000.0,
            serial_ns: 500.0,
        });
        log.on_round(RoundRecord {
            round: 1,
            window: 12,
            attempted: 4,
            committed: 4,
            failed: 0,
            conflicts: vec![],
            ..Default::default()
        });
        let s = round_log_table(&log).render();
        assert_eq!(s.lines().count(), 4, "header + rule + 2 rows:\n{s}");
        assert!(s.contains("3 x2"), "top conflict rendered:\n{s}");
        assert!(s.lines().nth(3).unwrap().contains('-'), "no-conflict dash");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.6234), "0.6234");
        assert_eq!(f(2.4), "2.40");
        assert_eq!(f(250.0), "250");
    }
}
