//! One-shot refresh of every checked-in BENCH file:
//!
//! ```text
//! cargo run -p galois-bench --release --bin bench_all
//! ```
//!
//! regenerates, in order:
//!
//! - `BENCH_marks.json` — the [`galois_bench::suites::micro_suite`]
//!   primitives (marks, worklist, id assignment, window),
//! - `BENCH_gen.json` — the [`galois_bench::suites::gen_suite`] input
//!   pipeline (generation, CSR build, fused full build, cache),
//! - `BENCH_rounds.json` — per-round metrics of the deterministic executor
//!   running the real bfs and mis operators at threads 1/2/4/8:
//!   `round_wall_ns` (wall time per round), `barriers_per_round` and
//!   `allocs_per_round` (heap allocations per steady-state round, counted
//!   by a wrapping `#[global_allocator]`; the 2-barrier protocol and the
//!   allocation-free invariant make these exactly 2 and 0).
//!
//! All three files are criterion-shim JSONL
//! (`{"name","median_ns","mean_ns","samples"}`); for the count-based rounds
//! metrics the `_ns` fields carry plain counts — see the BENCH_rounds.json
//! legend in the README. Scale the rounds inputs with `GALOIS_SCALE`.

use galois_apps::{bfs, mis};
use galois_bench::tables::rounds_metric_name;
use galois_bench::{inputs, suites, tables};
use galois_core::{Executor, Probe, RoundRecord, RunReport, Schedule};
use galois_graph::CsrGraph;
use galois_runtime::simtime::ExecTrace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocator entry point (same shape as the
/// `crates/core/tests/alloc_free.rs` harness), so `allocs_per_round` is a
/// direct measurement, not an estimate. The relaxed counter costs a few ns
/// per allocation and nothing on the allocation-free hot path it verifies.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counter is a relaxed
// atomic, so the wrapper adds no allocation or synchronization of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Snapshots the allocation counter at every round record. Capacity is
/// reserved up front so the probe itself never allocates mid-run.
struct SnapProbe {
    snaps: Vec<(u64, u64)>,
}

impl SnapProbe {
    fn new() -> Self {
        SnapProbe {
            snaps: Vec::with_capacity(1 << 16),
        }
    }
}

impl Probe for SnapProbe {
    // Request nothing optional: the disabled probe paths are the
    // allocation-free ones the metric is pinning down.
    fn wants_conflicts(&self) -> bool {
        false
    }
    fn wants_timing(&self) -> bool {
        false
    }
    fn conflict_top_k(&self) -> usize {
        0
    }
    fn on_round(&mut self, record: RoundRecord) {
        if self.snaps.len() < self.snaps.capacity() {
            self.snaps
                .push((record.round, ALLOC_EVENTS.load(Ordering::Relaxed)));
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .to_path_buf()
}

/// Truncates `path` and points the criterion shim's `CRITERION_JSON`
/// appender at it while `suite` runs.
fn refresh_criterion(
    path: &Path,
    mut config: criterion::Criterion,
    suite: fn(&mut criterion::Criterion),
) {
    let _ = std::fs::remove_file(path);
    std::env::set_var("CRITERION_JSON", path);
    suite(&mut config);
    std::env::remove_var("CRITERION_JSON");
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty(), "no samples");
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

fn det_exec(threads: usize, trace: bool) -> Executor {
    Executor::new()
        .threads(threads)
        .schedule(Schedule::deterministic())
        .record_trace(trace)
}

enum AppRun {
    Bfs(CsrGraph),
    Mis(CsrGraph),
}

impl AppRun {
    fn name(&self) -> &'static str {
        match self {
            AppRun::Bfs(_) => "bfs",
            AppRun::Mis(_) => "mis",
        }
    }

    fn run(&self, exec: &Executor, probe: Option<&mut dyn Probe>) -> RunReport {
        match (self, probe) {
            (AppRun::Bfs(g), Some(p)) => bfs::try_galois_probed(g, 0, exec, p).unwrap().1,
            (AppRun::Bfs(g), None) => bfs::galois(g, 0, exec).1,
            (AppRun::Mis(g), Some(p)) => mis::try_galois_probed(g, exec, p).unwrap().1,
            (AppRun::Mis(g), None) => mis::galois(g, exec).1,
        }
    }
}

/// One JSONL record in the criterion-shim shape.
fn emit(out: &mut String, name: &str, median: f64, mean: f64, samples: usize) {
    use std::fmt::Write as _;
    writeln!(
        out,
        "{{\"name\":\"{name}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{samples}}}"
    )
    .unwrap();
    println!("{name:<40} median {median:>12.1}  (mean {mean:.1}, n={samples})");
}

/// Per-round metrics for one app at one thread count: a probed + traced
/// run supplies barrier and allocation counts; `wall_samples` clean runs
/// supply the per-round wall time.
fn rounds_for(app: &AppRun, threads: usize, wall_samples: usize, out: &mut String) {
    // Barrier counts come from a traced run, allocation counts from an
    // untraced probed run: recording the trace itself appends to a
    // round-traces vector, which would charge harness bookkeeping to the
    // scheduler's allocation budget.
    let traced = app.run(&det_exec(threads, true), None);
    let barriers: Vec<f64> = match &traced.trace {
        Some(ExecTrace::Rounds(rt)) => rt.iter().map(|r| f64::from(r.barriers)).collect(),
        _ => panic!("deterministic run must record a rounds trace"),
    };

    let mut probe = SnapProbe::new();
    let report = app.run(&det_exec(threads, false), Some(&mut probe));
    let rounds = report.stats.rounds.max(1);

    // Round r's record arrives in round r+1's serial section, so a delta
    // between consecutive snapshots covers exactly one full round. Rounds
    // 0-2 warm the high-water buffers; the later deltas are the steady
    // state. Medians keep rare legitimate allocation rounds (pass-boundary
    // re-sorts, window high-water growth) from hiding a regression of the
    // common case — and the mean is emitted alongside so those rounds stay
    // visible too.
    let allocs: Vec<f64> = probe
        .snaps
        .windows(2)
        .filter(|w| w[1].0 >= 3)
        .map(|w| (w[1].1 - w[0].1) as f64)
        .collect();
    assert!(
        allocs.len() >= 8,
        "{} t{threads}: too few steady-state rounds ({}) to measure",
        app.name(),
        allocs.len()
    );

    let walls: Vec<f64> = (0..wall_samples)
        .map(|_| {
            let r = app.run(&det_exec(threads, false), None);
            r.stats.elapsed.as_nanos() as f64 / r.stats.rounds.max(1) as f64
        })
        .collect();

    let name = |metric: &str| rounds_metric_name(app.name(), threads, metric);
    emit(
        out,
        &name("round_wall_ns"),
        median(walls.clone()),
        mean(&walls),
        walls.len(),
    );
    emit(
        out,
        &name("barriers_per_round"),
        median(barriers.clone()),
        mean(&barriers),
        barriers.len(),
    );
    emit(
        out,
        &name("allocs_per_round"),
        median(allocs.clone()),
        mean(&allocs),
        allocs.len(),
    );
    println!(
        "  ({} t{threads}: {rounds} rounds, {} committed)",
        app.name(),
        report.stats.committed
    );
}

fn refresh_rounds(path: &Path) {
    let scale = galois_bench::scale();
    let wall_samples: usize = std::env::var("GALOIS_ROUNDS_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let apps = [
        AppRun::Bfs(inputs::bfs_graph(scale)),
        AppRun::Mis(inputs::mis_graph(scale)),
    ];
    let mut out = String::new();
    for app in &apps {
        for threads in [1usize, 2, 4, 8] {
            rounds_for(app, threads, wall_samples, &mut out);
        }
    }
    let mut f = std::fs::File::create(path).unwrap();
    f.write_all(out.as_bytes()).unwrap();
}

fn main() {
    let root = repo_root();
    let t0 = std::time::Instant::now();
    // `rounds-only` (the CI perf-smoke mode) skips the wall-time suites and
    // re-measures just the count-based round invariants.
    let rounds_only = std::env::args().any(|a| a == "rounds-only");

    if !rounds_only {
        println!("== BENCH_marks.json (runtime primitives) ==");
        refresh_criterion(
            &root.join("BENCH_marks.json"),
            suites::micro_config(),
            suites::micro_suite,
        );

        println!("\n== BENCH_gen.json (input pipeline) ==");
        refresh_criterion(
            &root.join("BENCH_gen.json"),
            suites::gen_config(),
            suites::gen_suite,
        );
    }

    println!("\n== BENCH_rounds.json (deterministic round hot path) ==");
    let rounds_path = root.join("BENCH_rounds.json");
    refresh_rounds(&rounds_path);

    // Read the file back the way every consumer does, and surface the two
    // campaign invariants where a human refreshing baselines will see them.
    let map = tables::load_bench_jsonl(&rounds_path).expect("just-written rounds file parses");
    let mut ok = true;
    for app in ["bfs", "mis"] {
        for threads in [1usize, 2, 4, 8] {
            let barriers = map[&rounds_metric_name(app, threads, "barriers_per_round")];
            let allocs = map[&rounds_metric_name(app, threads, "allocs_per_round")];
            if barriers > 2.0 {
                println!("WARNING: {app} t{threads}: {barriers} barriers/round (expected <= 2)");
                ok = false;
            }
            if allocs != 0.0 {
                println!("WARNING: {app} t{threads}: {allocs} allocs per steady-state round (expected 0)");
                ok = false;
            }
        }
    }
    println!(
        "\nrefreshed BENCH_marks.json, BENCH_gen.json, BENCH_rounds.json in {:.1}s{}",
        t0.elapsed().as_secs_f64(),
        if ok {
            ""
        } else {
            " — INVARIANT WARNINGS ABOVE"
        }
    );
    std::process::exit(if ok { 0 } else { 1 });
}
