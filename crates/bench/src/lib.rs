//! Benchmark harness for the Deterministic Galois evaluation (§5).
//!
//! Every table and figure of the paper has a bench target
//! (`cargo bench -p galois-bench --bench figN`) built on this crate:
//!
//! - [`inputs`]: scaled-down versions of the paper's inputs (§4.2), scaled
//!   further by the `GALOIS_SCALE` environment variable.
//! - [`drivers`]: one entry point per (application, variant) pair returning
//!   a uniform [`Measurement`].
//! - [`tables`]: plain-text table rendering in the paper's row/column
//!   shapes.
//!
//! Wall-clock speedup sweeps use the virtual-time model of
//! [`galois_runtime::simtime`] over traces recorded at one thread — this
//! host has a single core (DESIGN.md, substitution 1). Schedule-derived
//! quantities (commit counts, abort ratios, rounds, atomic updates) are
//! measured directly.

#![warn(missing_docs)]

pub mod drivers;
pub mod inputs;
pub mod suites;
pub mod sweep;
pub mod tables;

pub use drivers::{measure, App, Measurement};
pub use galois_apps::Variant;

/// Reads the global scale factor (default 1.0).
pub fn scale() -> f64 {
    std::env::var("GALOIS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Worker-thread count used for "max threads" measurements on this host.
///
/// Real threads are oversubscribed on the single-core container; they are
/// used for correctness/portability checks, while scaling numbers come from
/// the virtual-time model.
pub fn max_threads() -> usize {
    std::env::var("GALOIS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}
