//! Scaled benchmark inputs (§4.2 of the paper, scaled per DESIGN.md).
//!
//! | app | paper input | this harness (scale = 1.0) |
//! |-----|-------------|---------------------------|
//! | bfs | 10M nodes × 5 random edges | 150k nodes × 5 |
//! | mis | same graph, symmetrized | 150k nodes × 4 |
//! | dmr | mesh of 2.5M random points | mesh of 3k points (≈50k after refinement) |
//! | dt  | 10M random points | 25k points |
//! | pfp | 2^23 nodes × 4 random edges | RMF 18×18×24 ≈ 2^13 nodes (see below) |

use galois_geometry::Point;
use galois_graph::cache::{cache_dir_from_env, load_or_build_graph};
use galois_graph::{gen, CsrGraph, FlowNetwork};
use galois_mesh::Mesh;

/// Deterministic seed for all benchmark inputs.
pub const SEED: u64 = 0xA5F_2014;

/// Threads used to *build* graph inputs. The parallel generators are
/// byte-identical for every thread count, so this only affects setup time.
const BUILD_THREADS: usize = 4;

/// Builds `key` with the parallel generators, or loads it from the
/// directory named by `GALOIS_CACHE_DIR` when that is set.
fn cached(key: String, build: impl FnOnce() -> CsrGraph) -> CsrGraph {
    let dir = cache_dir_from_env();
    load_or_build_graph(dir.as_deref(), &key, build).0
}

/// BFS input graph.
pub fn bfs_graph(scale: f64) -> CsrGraph {
    let n = ((150_000.0 * scale) as usize).max(1_000);
    cached(format!("uniform-n{n}-d5-s{SEED}"), || {
        gen::uniform_random_parallel(n, 5, SEED, BUILD_THREADS)
    })
}

/// MIS input graph (undirected).
pub fn mis_graph(scale: f64) -> CsrGraph {
    let n = ((150_000.0 * scale) as usize).max(1_000);
    cached(format!("uniform-und-n{n}-d4-s{}", SEED + 1), || {
        gen::uniform_random_undirected_parallel(n, 4, SEED + 1, BUILD_THREADS)
    })
}

/// DT input points.
pub fn dt_points(scale: f64) -> Vec<Point> {
    let n = ((25_000.0 * scale) as usize).max(500);
    galois_geometry::point::random_points(n, SEED + 2)
}

/// DMR input mesh (shared generator so every variant refines an identical
/// mesh). Returns a fresh mesh each call — refinement mutates in place.
pub fn dmr_mesh(scale: f64) -> Mesh {
    let n = ((3_000.0 * scale) as usize).max(200);
    galois_apps::dmr::make_input(n, SEED + 3)
}

/// PFP input network.
///
/// The paper uses a 2^23-node random 4-out graph; scaled down, that family
/// collapses to a handful of discharge tasks (diameter ~5), so the harness
/// uses the washington-RMF family at an equivalent node count, which keeps
/// the discharge density of the full-size input (DESIGN.md, substitution 5).
pub fn pfp_network(scale: f64) -> FlowNetwork {
    let frames = ((24.0 * scale.cbrt()) as usize).max(4);
    let a = ((18.0 * scale.cbrt()) as usize).max(3);
    FlowNetwork::rmf(a, frames, 100, SEED + 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic_and_scaled() {
        let a = bfs_graph(0.01);
        let b = bfs_graph(0.01);
        assert_eq!(a, b);
        assert_eq!(a.num_nodes(), 1_500);
        assert!(mis_graph(0.01).num_nodes() >= 1_000);
        assert_eq!(dt_points(0.1).len(), 2_500);
        assert!(pfp_network(0.1).num_nodes() >= 256);
        assert!(pfp_network(1.0).num_nodes() >= 4_000);
    }

    #[test]
    fn floors_apply_at_tiny_scales() {
        assert_eq!(bfs_graph(0.0001).num_nodes(), 1_000);
        assert_eq!(dt_points(0.0001).len(), 500);
    }
}
