//! The shared thread-count sweep behind Figures 7, 9, 10 and 12.
//!
//! For every application and variant the sweep records a one-thread
//! execution trace and replays it through the virtual-time model on each of
//! the paper's three machine profiles (DESIGN.md, substitution 1). The
//! sequential baselines (Figure 8) are measured directly.

use crate::drivers::{measure, App, Measurement, Opts};
use crate::Variant;
use galois_runtime::simtime::MachineProfile;
use std::collections::HashMap;

/// Thread counts swept on a machine profile.
pub fn thread_points(machine: &MachineProfile) -> Vec<usize> {
    let mut pts = vec![1usize, 2, 4, 8, 16, 24, 32, 40];
    pts.retain(|&p| p <= machine.max_threads);
    if !pts.contains(&machine.max_threads) {
        pts.push(machine.max_threads);
    }
    pts
}

/// Key into the sweep's time map.
pub type Key = (App, Variant, &'static str, usize);

/// The sweep dataset.
#[derive(Debug)]
pub struct SweepData {
    /// Best sequential time per app, nanoseconds (Figure 8).
    pub baseline_ns: HashMap<App, f64>,
    /// Predicted time for (app, variant, machine, threads), nanoseconds.
    pub times: HashMap<Key, f64>,
    /// The one-thread measurements (for abort/atomic statistics reuse).
    pub one_thread: HashMap<(App, Variant), Measurement>,
}

impl SweepData {
    /// Predicted speedup over the app's sequential baseline.
    pub fn speedup(&self, key: Key) -> Option<f64> {
        let t = self.times.get(&key)?;
        let base = self.baseline_ns.get(&key.0)?;
        Some(base / t)
    }

    /// Time ratio `t_pbbs(p) / t_var(p)` (Figure 9's metric; > 1 means the
    /// variant beats PBBS).
    pub fn relative_to_pbbs(
        &self,
        app: App,
        variant: Variant,
        machine: &'static str,
        p: usize,
    ) -> Option<f64> {
        let t_pbbs = self.times.get(&(app, Variant::Pbbs, machine, p))?;
        let t_var = self.times.get(&(app, variant, machine, p))?;
        Some(t_pbbs / t_var)
    }
}

/// Runs the sweep. `no_continuation` disables the §3.3 continuation
/// optimization in the deterministic variant (Figure 10's ablation).
pub fn run_sweep(scale: f64, no_continuation: bool) -> SweepData {
    let mut data = SweepData {
        baseline_ns: HashMap::new(),
        times: HashMap::new(),
        one_thread: HashMap::new(),
    };
    let opts = Opts {
        trace: true,
        no_continuation,
        ..Default::default()
    };
    for app in App::ALL {
        for &variant in app.variants() {
            let Some(m) = measure(app, variant, 1, scale, opts) else {
                continue;
            };
            if variant == Variant::Seq {
                data.baseline_ns.insert(app, m.elapsed.as_nanos() as f64);
            }
            if let Some(trace) = &m.trace {
                for machine in &MachineProfile::ALL {
                    for p in thread_points(machine) {
                        let t = trace.makespan_ns(machine, p);
                        data.times.insert((app, variant, machine.name, p), t);
                    }
                }
            }
            data.one_thread.insert((app, variant), m);
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_keys() {
        let data = run_sweep(0.01, false);
        for app in App::ALL {
            assert!(data.baseline_ns.contains_key(&app), "{app:?} baseline");
            for &v in app.variants() {
                for machine in &MachineProfile::ALL {
                    for p in thread_points(machine) {
                        assert!(
                            data.times.contains_key(&(app, v, machine.name, p)),
                            "{app:?}/{v}/{}/{p}",
                            machine.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn nondet_scales_better_than_det_at_max_threads() {
        let data = run_sweep(0.02, false);
        let mut wins = 0;
        let mut total = 0;
        for app in App::ALL {
            let gn = data.times[&(app, Variant::GaloisNondet, "m4x10", 40)];
            let gd = data.times[&(app, Variant::GaloisDet, "m4x10", 40)];
            total += 1;
            if gn < gd {
                wins += 1;
            }
        }
        assert!(
            wins >= total - 1,
            "g-n should beat g-d almost always ({wins}/{total})"
        );
    }

    #[test]
    fn thread_points_respect_machine_caps() {
        use galois_runtime::simtime::MachineProfile;
        let pts = thread_points(&MachineProfile::M4X6);
        assert_eq!(*pts.last().unwrap(), 24);
        assert!(pts.iter().all(|&p| p <= 24));
    }
}
