//! The criterion suites behind `BENCH_marks.json` and `BENCH_gen.json`.
//!
//! The suite bodies live here in the library so they have exactly two
//! callers with identical behavior: the standalone bench targets
//! (`cargo bench -p galois-bench --bench micro` / `--bench gen`) and the
//! one-shot `bench_all` refresher binary that regenerates every BENCH
//! file in a single command.

use criterion::{BatchSize, Criterion};
use galois_core::marks::{LockId, MarkTable};
use galois_core::task::{assign_ids, PendingItem};
use galois_core::window::{AdaptiveWindow, WindowPolicy};
use galois_graph::io::{read_csr_binary, write_csr_binary};
use galois_graph::{gen, CsrGraph};
use galois_runtime::worklist::ChunkedBag;
use std::hint::black_box;
use std::io::{BufReader, BufWriter};
use std::time::Duration;

/// Criterion configuration used for the `micro` suite.
pub fn micro_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

/// Criterion configuration used for the `gen` suite.
pub fn gen_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

/// Micro-benchmarks of the runtime primitives on the hot path of both
/// schedulers: mark operations, work bags, deterministic id assignment,
/// and the adaptive window (`BENCH_marks.json`).
pub fn micro_suite(c: &mut Criterion) {
    bench_marks(c);
    bench_round_release(c);
    bench_release_only(c);
    bench_worklist(c);
    bench_id_assignment(c);
    bench_window(c);
}

/// Input-pipeline benchmarks: parallel generation/build vs the sequential
/// oracle, and warm cache loads vs regeneration (`BENCH_gen.json`).
///
/// This container has one core, so a 4-thread wall-clock speedup cannot be
/// observed directly (DESIGN.md, substitution: single-core container).
/// Instead the numbers measure the pieces the speedup is made of:
///
/// - `edges_chunk*_of4` time one worker's statically partitioned share of
///   the edge fill. Per-node counter streams make the shares uniform, so
///   the 4-thread span of the generation phase *is* the slowest chunk —
///   read the speedup as `edges_seq / max(chunk)` (expected ≈ 4×).
/// - `*_par4_wall` run the real 4-thread code on one core: total work
///   including all coordination. The fused full build draws targets
///   straight into their final CSR positions, so `full_build_par4_wall`
///   must beat `full_build_seq` even on one core — the build does strictly
///   less work, not just more-parallel work.
/// - `cache_warm_load` vs `full_build_seq` is a direct wall-clock claim
///   valid on any machine: loading the binary CSR must beat regenerating.
pub fn gen_suite(c: &mut Criterion) {
    bench_generation(c);
    bench_csr_build(c);
    bench_full_pipeline(c);
    bench_cache(c);
}

fn bench_marks(c: &mut Criterion) {
    let table = MarkTable::new(1024);
    c.bench_function("marks/try_acquire_release", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                black_box(table.try_acquire(LockId(i), 7));
            }
            for i in 0..1024u32 {
                table.release(LockId(i), 7);
            }
        })
    });
    c.bench_function("marks/write_max_contended_value", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                black_box(table.write_max(LockId(i), 9));
            }
            for i in 0..1024u32 {
                table.release(LockId(i), 9);
            }
        })
    });
}

/// One deterministic "round" over 1024 locations under each release
/// protocol: the old CAS-release sweep vs. the epoch bump. The epoch
/// variant must win — this is a measured claim of the PR-1 tentpole.
fn bench_round_release(c: &mut Criterion) {
    let table = MarkTable::new(1024);
    c.bench_function("marks/round_write_max_plus_release_sweep", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                black_box(table.write_max(LockId(i), 9));
            }
            // Old turnaround: every location released by CAS.
            for i in 0..1024u32 {
                table.release(LockId(i), 9);
            }
        })
    });
    let table = MarkTable::new(1024);
    c.bench_function("marks/round_write_max_plus_epoch_bump", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                black_box(table.write_max(LockId(i), 9));
            }
            // New turnaround: one increment retires the whole round.
            table.bump_epoch();
        })
    });
}

/// Release cost in isolation, per 1024 owned marks.
fn bench_release_only(c: &mut Criterion) {
    let table = MarkTable::new(1024);
    c.bench_function("marks/release_sweep_1k", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                table.write_max(LockId(i), 5);
            }
            for i in 0..1024u32 {
                table.release(LockId(i), 5);
            }
        })
    });
    let table = MarkTable::new(1024);
    c.bench_function("marks/release_epoch_bump_1k", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                table.write_max(LockId(i), 5);
            }
            table.bump_epoch();
        })
    });
}

fn bench_worklist(c: &mut Criterion) {
    c.bench_function("worklist/push_pop_1k", |b| {
        let bag: ChunkedBag<u64> = ChunkedBag::new(1);
        b.iter(|| {
            for i in 0..1000 {
                bag.push(0, i);
            }
            while let Some(x) = bag.pop(0) {
                black_box(x);
            }
        })
    });
}

fn bench_id_assignment(c: &mut Criterion) {
    c.bench_function("task/assign_ids_10k", |b| {
        b.iter_batched(
            || {
                (0..10_000u64)
                    .rev()
                    .map(|i| PendingItem {
                        task: i,
                        parent: i % 97,
                        rank: (i % 3) as u32,
                    })
                    .collect::<Vec<_>>()
            },
            |pending| black_box(assign_ids(pending, 1)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_window(c: &mut Criterion) {
    c.bench_function("window/update_sequence", |b| {
        b.iter(|| {
            let mut w = AdaptiveWindow::for_pass(WindowPolicy::default(), 100_000);
            for round in 0..1000usize {
                let attempted = w.size();
                let committed = attempted * (80 + round % 20) / 100;
                w.update(attempted, committed);
            }
            black_box(w.size())
        })
    });
}

const N: usize = 1_000_000;
const DEGREE: usize = 5;
const SEED: u64 = 0xA5F_2014;

fn bench_generation(c: &mut Criterion) {
    c.bench_function("gen/uniform_1M_edges_seq", |b| {
        b.iter(|| black_box(gen::uniform_random_edges(N, DEGREE, SEED)))
    });
    // One worker's share under the static 4-way partition; the parallel
    // fill's span is the slowest of these.
    let quarters = [0..N / 4, N / 4..N / 2, N / 2..3 * N / 4, 3 * N / 4..N];
    for (i, q) in quarters.into_iter().enumerate() {
        c.bench_function(&format!("gen/uniform_1M_edges_chunk{}_of4", i + 1), |b| {
            b.iter(|| black_box(gen::uniform_random_edges_range(N, DEGREE, SEED, q.clone())))
        });
    }
}

fn bench_csr_build(c: &mut Criterion) {
    let edges = gen::uniform_random_edges(N, DEGREE, SEED);
    c.bench_function("gen/uniform_1M_csr_seq", |b| {
        b.iter(|| black_box(CsrGraph::from_edges(N, &edges)))
    });
    c.bench_function("gen/uniform_1M_csr_par4_wall", |b| {
        b.iter(|| black_box(CsrGraph::from_edges_parallel(N, &edges, 4)))
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    c.bench_function("gen/uniform_1M_full_build_seq", |b| {
        b.iter(|| black_box(gen::uniform_random(N, DEGREE, SEED)))
    });
    c.bench_function("gen/uniform_1M_full_build_par4_wall", |b| {
        b.iter(|| black_box(gen::uniform_random_parallel(N, DEGREE, SEED, 4)))
    });
}

fn bench_cache(c: &mut Criterion) {
    let g = gen::uniform_random(N, DEGREE, SEED);
    let path = std::env::temp_dir().join(format!("galois-bench-gen-{}.gcsr", std::process::id()));
    c.bench_function("cache/uniform_1M_store", |b| {
        b.iter(|| {
            let f = std::fs::File::create(&path).unwrap();
            write_csr_binary(&g, BufWriter::new(f)).unwrap();
        })
    });
    c.bench_function("cache/uniform_1M_warm_load", |b| {
        b.iter(|| {
            let f = std::fs::File::open(&path).unwrap();
            let loaded = read_csr_binary(BufReader::new(f)).unwrap();
            black_box(loaded)
        })
    });
    // Sanity inside the bench itself: a load is only a valid substitute for
    // regeneration if it reproduces the graph exactly.
    let f = std::fs::File::open(&path).unwrap();
    assert_eq!(read_csr_binary(BufReader::new(f)).unwrap(), g);
    let _ = std::fs::remove_file(&path);
}
