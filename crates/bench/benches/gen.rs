//! Input-pipeline benchmarks: parallel generation/build vs the sequential
//! oracle, and warm cache loads vs regeneration (BENCH_gen.json).
//!
//! This container has one core, so a 4-thread wall-clock speedup cannot be
//! observed directly (DESIGN.md, substitution: single-core container).
//! Instead the numbers measure the pieces the speedup is made of:
//!
//! - `edges_chunk*_of4` time one worker's statically partitioned share of
//!   the edge fill. Per-node counter streams make the shares uniform, so
//!   the 4-thread span of the generation phase *is* the slowest chunk —
//!   read the speedup as `edges_seq / max(chunk)` (expected ≈ 4×).
//! - `*_par4_wall` run the real 4-thread code on one core: total work
//!   including all coordination. `par4_wall / seq` is the overhead factor
//!   the parallel pipeline pays (expected ≈ 1.0×), which bounds the
//!   4-core span from above by `seq × overhead / 4`.
//! - `cache_warm_load` vs `full_build_seq` is a direct wall-clock claim
//!   valid on any machine: loading the binary CSR must beat regenerating.

use criterion::{criterion_group, criterion_main, Criterion};
use galois_graph::io::{read_csr_binary, write_csr_binary};
use galois_graph::{gen, CsrGraph};
use std::hint::black_box;
use std::io::{BufReader, BufWriter};

const N: usize = 1_000_000;
const DEGREE: usize = 5;
const SEED: u64 = 0xA5F_2014;

fn bench_generation(c: &mut Criterion) {
    c.bench_function("gen/uniform_1M_edges_seq", |b| {
        b.iter(|| black_box(gen::uniform_random_edges(N, DEGREE, SEED)))
    });
    // One worker's share under the static 4-way partition; the parallel
    // fill's span is the slowest of these.
    let quarters = [0..N / 4, N / 4..N / 2, N / 2..3 * N / 4, 3 * N / 4..N];
    for (i, q) in quarters.into_iter().enumerate() {
        c.bench_function(&format!("gen/uniform_1M_edges_chunk{}_of4", i + 1), |b| {
            b.iter(|| black_box(gen::uniform_random_edges_range(N, DEGREE, SEED, q.clone())))
        });
    }
}

fn bench_csr_build(c: &mut Criterion) {
    let edges = gen::uniform_random_edges(N, DEGREE, SEED);
    c.bench_function("gen/uniform_1M_csr_seq", |b| {
        b.iter(|| black_box(CsrGraph::from_edges(N, &edges)))
    });
    c.bench_function("gen/uniform_1M_csr_par4_wall", |b| {
        b.iter(|| black_box(CsrGraph::from_edges_parallel(N, &edges, 4)))
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    c.bench_function("gen/uniform_1M_full_build_seq", |b| {
        b.iter(|| black_box(gen::uniform_random(N, DEGREE, SEED)))
    });
    c.bench_function("gen/uniform_1M_full_build_par4_wall", |b| {
        b.iter(|| black_box(gen::uniform_random_parallel(N, DEGREE, SEED, 4)))
    });
}

fn bench_cache(c: &mut Criterion) {
    let g = gen::uniform_random(N, DEGREE, SEED);
    let path = std::env::temp_dir().join(format!("galois-bench-gen-{}.gcsr", std::process::id()));
    c.bench_function("cache/uniform_1M_store", |b| {
        b.iter(|| {
            let f = std::fs::File::create(&path).unwrap();
            write_csr_binary(&g, BufWriter::new(f)).unwrap();
        })
    });
    c.bench_function("cache/uniform_1M_warm_load", |b| {
        b.iter(|| {
            let f = std::fs::File::open(&path).unwrap();
            let loaded = read_csr_binary(BufReader::new(f)).unwrap();
            black_box(loaded)
        })
    });
    // Sanity inside the bench itself: a load is only a valid substitute for
    // regeneration if it reproduces the graph exactly.
    let f = std::fs::File::open(&path).unwrap();
    assert_eq!(read_csr_binary(BufReader::new(f)).unwrap(), g);
    let _ = std::fs::remove_file(&path);
}

criterion_group!(
    name = gen_benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_generation, bench_csr_build, bench_full_pipeline, bench_cache
);
criterion_main!(gen_benches);
