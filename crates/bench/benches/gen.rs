//! Input-pipeline benchmarks: parallel generation/build vs the sequential
//! oracle, and warm cache loads vs regeneration (`BENCH_gen.json`). The
//! suite body lives in [`galois_bench::suites`] so `bench_all` regenerates
//! the same numbers.

use criterion::{criterion_group, criterion_main};
use galois_bench::suites;

criterion_group!(
    name = gen_benches;
    config = suites::gen_config();
    targets = suites::gen_suite
);
criterion_main!(gen_benches);
