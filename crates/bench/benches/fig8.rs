//! Figure 8: sequential baseline times.
//!
//! The paper's table lists, per app and machine, the best one-thread time
//! of any variant (a Cilk bfs, hi_pr for pfp, the best suite variant
//! elsewhere). Here: measured one-thread times of every variant on this
//! host; the minimum per app is the baseline used by Figures 7 and 9.

use galois_bench::drivers::Opts;
use galois_bench::tables::{f, Table};
use galois_bench::{measure, scale, App};

fn main() {
    let scale = scale();
    println!("== Figure 8: one-thread times in milliseconds (scale {scale}) ==\n");
    let mut table = Table::new(&["app", "variant", "time-ms"]);
    for app in App::ALL {
        let mut best: Option<(String, f64)> = None;
        for &variant in app.variants() {
            let Some(m) = measure(app, variant, 1, scale, Opts::default()) else {
                continue;
            };
            let ms = m.elapsed.as_secs_f64() * 1e3;
            table.row(vec![app.name().into(), variant.to_string(), f(ms)]);
            if best.as_ref().is_none_or(|(_, b)| ms < *b) {
                best = Some((variant.to_string(), ms));
            }
        }
        let (v, ms) = best.expect("every app has variants");
        table.row(vec![app.name().into(), format!("BASELINE ({v})"), f(ms)]);
    }
    println!("{}", table.render());
}
