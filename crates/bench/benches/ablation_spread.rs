//! Ablation: locality spreading (§3.3, second optimization).
//!
//! Tasks adjacent in creation order (BRIO-ordered points, freshly created
//! bad triangles) have overlapping neighborhoods; executing them in the
//! same round guarantees conflicts — the paper's "perverse situation where
//! the scheduler needs to reduce locality to improve performance". The
//! deterministic deal into S buckets places them in different rounds.

use galois_apps::{dmr, dt};
use galois_bench::inputs;
use galois_bench::tables::{f, Table};
use galois_core::{DetOptions, Executor, Schedule};

fn main() {
    let scale = galois_bench::scale();
    println!("== Ablation: locality spreading stride (scale {scale}) ==\n");
    let mut table = Table::new(&["app", "stride", "time-ms", "rounds", "abort-ratio"]);
    for stride in [1usize, 4, 16, 64, 256] {
        let exec = Executor::new()
            .threads(galois_bench::max_threads())
            .schedule(Schedule::Deterministic(DetOptions {
                locality_spread: stride,
                ..Default::default()
            }));
        let pts = inputs::dt_points(scale);
        let (_mesh, r) = dt::galois(&pts, inputs::SEED, &exec);
        table.row(vec![
            "dt".into(),
            stride.to_string(),
            f(r.stats.elapsed.as_secs_f64() * 1e3),
            r.stats.rounds.to_string(),
            f(r.stats.abort_ratio()),
        ]);
        let mesh = inputs::dmr_mesh(scale);
        let r = dmr::galois(&mesh, &exec);
        table.row(vec![
            "dmr".into(),
            stride.to_string(),
            f(r.stats.elapsed.as_secs_f64() * 1e3),
            r.stats.rounds.to_string(),
            f(r.stats.abort_ratio()),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: stride > 1 cuts the abort ratio for cavity-based apps");
}
