//! Ablation: CoreDet's quantum parameter, fixed vs adaptive.
//!
//! The paper's §6 criticizes user-tunable round/task sizes: "Devietti et
//! al. show that system overheads can vary between 160%–250% depending on
//! the task size parameter", and notes dOS adopts an adaptive algorithm
//! "like the one described in Section 3.2". This table reproduces both
//! observations with the DMP-O model: fixed quanta swing benchmark costs by
//! large factors, while the dOS-style adaptive quantum (the analogue of the
//! paper's adaptive window) tracks the best fixed setting per kernel.

use coredet_sim::kernels::Kernel;
use coredet_sim::model::{coredet_adaptive_makespan_ns, coredet_makespan_ns, native_makespan_ns};
use galois_bench::tables::{f, Table};

const THREADS: usize = 16;

fn main() {
    let scale = galois_bench::scale();
    println!(
        "== Ablation: CoreDet quantum, fixed vs adaptive ({THREADS} threads, scale {scale}) ==\n"
    );
    let quanta = [5_000.0f64, 50_000.0, 500_000.0];
    let mut table = Table::new(&[
        "program",
        "slowdown q=5us",
        "q=50us",
        "q=500us",
        "adaptive",
        "fixed swing",
    ]);
    for k in Kernel::ALL {
        let streams = k.streams(THREADS, scale * 0.5);
        let native = native_makespan_ns(&streams);
        let fixed: Vec<f64> = quanta
            .iter()
            .map(|&q| coredet_makespan_ns(&streams, q) / native)
            .collect();
        let adaptive = coredet_adaptive_makespan_ns(&streams, 50_000.0) / native;
        let min = fixed.iter().copied().fold(f64::MAX, f64::min);
        let max = fixed.iter().copied().fold(0.0, f64::max);
        table.row(vec![
            k.name().into(),
            f(fixed[0]),
            f(fixed[1]),
            f(fixed[2]),
            f(adaptive),
            format!("{}x", f(max / min)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape: fixed-quantum costs swing by large factors per program\n\
         (the paper's 160-250%+ observation); the adaptive quantum lands near\n\
         each program's best fixed setting with no parameter"
    );
}
