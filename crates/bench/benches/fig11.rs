//! Figure 11: memory requests satisfied from DRAM, per variant.
//!
//! Paper result (§5.4): the non-deterministic variants have far fewer DRAM
//! requests than the deterministic ones, because DIG scheduling separates a
//! task's inspect and execute phases by a window of other tasks, destroying
//! intra-task locality. Reproduced by replaying recorded abstract-location
//! access streams through the cache hierarchy (DESIGN.md, substitution 4).
//! The PBBS variants are omitted (no access recording; their round-based
//! locality behaviour is qualitatively that of g-d).

use cache_sim::{Hierarchy, HierarchyConfig};
use galois_bench::drivers::Opts;
use galois_bench::tables::{f, Table};
use galois_bench::{max_threads, measure, scale, App, Variant};

fn main() {
    let scale = scale();
    let threads = max_threads();
    println!(
        "== Figure 11: DRAM requests by variant ({threads}-thread streams, scale {scale}) ==\n"
    );
    let mut table = Table::new(&[
        "app", "variant", "accesses", "l1-hit%", "l3-hit%", "dram", "dram%",
    ]);
    for app in App::ALL {
        for variant in [Variant::GaloisNondet, Variant::GaloisDet] {
            let Some(m) = measure(
                app,
                variant,
                threads,
                scale,
                Opts {
                    access: true,
                    ..Default::default()
                },
            ) else {
                continue;
            };
            let streams = m.accesses.expect("access recording requested");
            let mut h = Hierarchy::new(streams.len(), HierarchyConfig::default());
            let stats = h.replay(&streams);
            table.row(vec![
                app.name().into(),
                variant.to_string(),
                stats.accesses.to_string(),
                f(100.0 * stats.l1_hits as f64 / stats.accesses.max(1) as f64),
                f(100.0 * stats.l3_hits as f64 / stats.accesses.max(1) as f64),
                stats.dram.to_string(),
                f(100.0 * stats.dram_rate()),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expected shape: g-d issues more accesses (inspect + execute touch the\n\
         neighborhood twice, a window apart) and misses to DRAM more often"
    );
}
