//! Figure 4 companion: the per-round anatomy behind the abort ratios.
//!
//! Figure 4 reports *aggregate* abort ratios; this driver drills into where
//! they come from. For each application's deterministic (g-d) variant it
//! records a [`galois_core::RoundLog`] and prints the per-round schedule —
//! adaptive window, attempts, commits, and the abort attribution (the
//! abstract locations whose `writeMarkMax` contention serialized the
//! round) — plus the canonical JSONL emission that is byte-identical across
//! thread counts.
//!
//! ```text
//! cargo bench -p galois-bench --bench fig4_rounds
//! GALOIS_ROUNDS_JSONL=dir cargo bench -p galois-bench --bench fig4_rounds
//! ```
//!
//! With `GALOIS_ROUNDS_JSONL=<dir>`, each app's canonical round log is also
//! written to `<dir>/<app>-rounds.jsonl` for offline diffing.

use galois_bench::drivers::Opts;
use galois_bench::tables::{f, round_log_table};
use galois_bench::{measure, scale, App, Variant};

const SHOW_ROUNDS: usize = 12;

fn main() {
    let scale = scale();
    let jsonl_dir = std::env::var("GALOIS_ROUNDS_JSONL").ok();
    let opts = Opts {
        round_log: true,
        ..Default::default()
    };
    println!("== Figure 4 companion: per-round schedule logs, g-d (scale {scale}) ==\n");
    for app in App::ALL {
        let Some(m) = measure(app, Variant::GaloisDet, 2, scale, opts) else {
            continue;
        };
        let log = m.round_log.as_ref().expect("round log requested");
        let total_attempted: u64 = log.records().iter().map(|r| r.attempted).sum();
        let total_committed: u64 = log.records().iter().map(|r| r.committed).sum();
        println!(
            "-- {}: {} rounds, {} attempts for {} commits (overall commit ratio {}) --",
            app.name(),
            log.len(),
            total_attempted,
            total_committed,
            f(total_committed as f64 / (total_attempted as f64).max(1.0)),
        );
        // The first rounds carry the adaptive-window ramp; the tail repeats.
        let mut table = round_log_table(log);
        if log.len() > SHOW_ROUNDS {
            table = round_log_table_prefix(log, SHOW_ROUNDS);
            println!("(first {SHOW_ROUNDS} of {} rounds)", log.len());
        }
        println!("{}", table.render());
        if let Some(dir) = &jsonl_dir {
            let path = format!("{dir}/{}-rounds.jsonl", app.name());
            std::fs::write(&path, log.canonical_jsonl()).expect("write JSONL");
            println!("canonical JSONL -> {path}\n");
        }
    }
    println!(
        "The schedule-derived columns (window/attempted/committed/failed and\n\
         the conflict attribution) are identical at any thread count; only\n\
         the *-us timing columns are machine facts."
    );
}

/// A prefix view of the log, so long runs stay readable.
fn round_log_table_prefix(log: &galois_core::RoundLog, n: usize) -> galois_bench::tables::Table {
    let mut head = galois_core::RoundLog::new();
    for r in log.records().iter().take(n) {
        galois_core::Probe::on_round(&mut head, r.clone());
    }
    round_log_table(&head)
}
