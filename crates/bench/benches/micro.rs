//! Criterion micro-benchmarks of the runtime primitives on the hot path of
//! both schedulers: mark operations, work bags, deterministic id
//! assignment, and the adaptive window.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use galois_core::marks::{LockId, MarkTable};
use galois_core::task::{assign_ids, PendingItem};
use galois_core::window::{AdaptiveWindow, WindowPolicy};
use galois_runtime::worklist::ChunkedBag;
use std::hint::black_box;

fn bench_marks(c: &mut Criterion) {
    let table = MarkTable::new(1024);
    c.bench_function("marks/try_acquire_release", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                black_box(table.try_acquire(LockId(i), 7));
            }
            for i in 0..1024u32 {
                table.release(LockId(i), 7);
            }
        })
    });
    c.bench_function("marks/write_max_contended_value", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                black_box(table.write_max(LockId(i), 9));
            }
            for i in 0..1024u32 {
                table.release(LockId(i), 9);
            }
        })
    });
}

/// One deterministic "round" over 1024 locations under each release
/// protocol: the old CAS-release sweep vs. the epoch bump. The epoch
/// variant must win — this is the tentpole's measured claim.
fn bench_round_release(c: &mut Criterion) {
    let table = MarkTable::new(1024);
    c.bench_function("marks/round_write_max_plus_release_sweep", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                black_box(table.write_max(LockId(i), 9));
            }
            // Old turnaround: every location released by CAS.
            for i in 0..1024u32 {
                table.release(LockId(i), 9);
            }
        })
    });
    let table = MarkTable::new(1024);
    c.bench_function("marks/round_write_max_plus_epoch_bump", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                black_box(table.write_max(LockId(i), 9));
            }
            // New turnaround: one increment retires the whole round.
            table.bump_epoch();
        })
    });
}

/// Release cost in isolation, per 1024 owned marks.
fn bench_release_only(c: &mut Criterion) {
    let table = MarkTable::new(1024);
    c.bench_function("marks/release_sweep_1k", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                table.write_max(LockId(i), 5);
            }
            for i in 0..1024u32 {
                table.release(LockId(i), 5);
            }
        })
    });
    let table = MarkTable::new(1024);
    c.bench_function("marks/release_epoch_bump_1k", |b| {
        b.iter(|| {
            for i in 0..1024u32 {
                table.write_max(LockId(i), 5);
            }
            table.bump_epoch();
        })
    });
}

fn bench_worklist(c: &mut Criterion) {
    c.bench_function("worklist/push_pop_1k", |b| {
        let bag: ChunkedBag<u64> = ChunkedBag::new(1);
        b.iter(|| {
            for i in 0..1000 {
                bag.push(0, i);
            }
            while let Some(x) = bag.pop(0) {
                black_box(x);
            }
        })
    });
}

fn bench_id_assignment(c: &mut Criterion) {
    c.bench_function("task/assign_ids_10k", |b| {
        b.iter_batched(
            || {
                (0..10_000u64)
                    .rev()
                    .map(|i| PendingItem {
                        task: i,
                        parent: i % 97,
                        rank: (i % 3) as u32,
                    })
                    .collect::<Vec<_>>()
            },
            |pending| black_box(assign_ids(pending, 1)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_window(c: &mut Criterion) {
    c.bench_function("window/update_sequence", |b| {
        b.iter(|| {
            let mut w = AdaptiveWindow::for_pass(WindowPolicy::default(), 100_000);
            for round in 0..1000usize {
                let attempted = w.size();
                let committed = attempted * (80 + round % 20) / 100;
                w.update(attempted, committed);
            }
            black_box(w.size())
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_marks, bench_round_release, bench_release_only, bench_worklist, bench_id_assignment, bench_window
);
criterion_main!(micro);
