//! Criterion micro-benchmarks of the runtime primitives on the hot path of
//! both schedulers (`BENCH_marks.json`). The suite body lives in
//! [`galois_bench::suites`] so `bench_all` regenerates the same numbers.

use criterion::{criterion_group, criterion_main};
use galois_bench::suites;

criterion_group!(
    name = micro;
    config = suites::micro_config();
    targets = suites::micro_suite
);
criterion_main!(micro);
