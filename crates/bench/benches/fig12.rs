//! Figure 12: how well a linear model in the memory-traffic ratio explains
//! the efficiency differences between variants.
//!
//! Paper model: `eff_var = B0 + B1 * (PC_ref / PC_var) * eff_ref` with g-n
//! as the reference; a good fit supports the claim that lost locality, not
//! scheduler instructions, explains most of the deterministic slowdown.
//!
//! Reproduced per application: within one application, the DRAM-traffic
//! ratio is a property of the variant pair, and the model predicts the
//! deterministic efficiency from the non-deterministic one across machines
//! and thread counts. (A pooled fit across applications mostly measures
//! between-app variance, which the model does not claim to explain.)

use cache_sim::regression::fit;
use cache_sim::{Hierarchy, HierarchyConfig};
use galois_bench::drivers::Opts;
use galois_bench::sweep::{run_sweep, thread_points};
use galois_bench::tables::{f, median, Table};
use galois_bench::{max_threads, measure, App, Variant};
use galois_runtime::simtime::MachineProfile;

fn main() {
    let scale = galois_bench::scale();
    let threads = max_threads();
    println!("== Figure 12: linear fit of efficiency vs DRAM-traffic ratio (scale {scale}) ==\n");

    // DRAM counts per app/variant from recorded access streams.
    let mut dram = std::collections::HashMap::new();
    for app in App::ALL {
        for variant in [Variant::GaloisNondet, Variant::GaloisDet] {
            let Some(m) = measure(
                app,
                variant,
                threads,
                scale,
                Opts {
                    access: true,
                    ..Default::default()
                },
            ) else {
                continue;
            };
            let streams = m.accesses.expect("requested");
            let mut h = Hierarchy::new(streams.len(), HierarchyConfig::default());
            let stats = h.replay(&streams);
            dram.insert((app, variant), stats.dram.max(1) as f64);
        }
    }

    let data = run_sweep(scale, false);
    let mut table = Table::new(&["app", "dram_gn/dram_gd", "samples", "B0", "B1", "R^2"]);
    let mut r2s = Vec::new();
    for app in App::ALL {
        let (Some(&pc_ref), Some(&pc_var)) = (
            dram.get(&(app, Variant::GaloisNondet)),
            dram.get(&(app, Variant::GaloisDet)),
        ) else {
            continue;
        };
        let ratio = pc_ref / pc_var;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for machine in &MachineProfile::ALL {
            for &p in &thread_points(machine) {
                let (Some(s_ref), Some(s_var)) = (
                    data.speedup((app, Variant::GaloisNondet, machine.name, p)),
                    data.speedup((app, Variant::GaloisDet, machine.name, p)),
                ) else {
                    continue;
                };
                xs.push(ratio * s_ref / p as f64);
                ys.push(s_var / p as f64);
            }
        }
        match fit(&xs, &ys) {
            Some(fitted) => {
                r2s.push(fitted.r2);
                table.row(vec![
                    app.name().into(),
                    f(ratio),
                    xs.len().to_string(),
                    f(fitted.b0),
                    f(fitted.b1),
                    f(fitted.r2),
                ]);
            }
            None => table.row(vec![
                app.name().into(),
                f(ratio),
                xs.len().to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    println!("{}", table.render());
    println!("median per-application R^2: {}", f(median(&r2s)));
    println!(
        "\nnote (DESIGN.md, substitution 1/4): the paper fits hardware samples in\n\
         which locality effects and efficiency covary on real memory systems;\n\
         this reproduction's virtual-time model holds per-task costs fixed, so\n\
         most within-app efficiency variance here comes from the modelled round\n\
         structure, not from the cache model — the fits above are therefore\n\
         weaker than the paper's by construction. The locality claim itself is\n\
         carried by Figure 11 (deterministic variants reach DRAM more) and the\n\
         positive slopes (B1 > 0) here."
    );
}
