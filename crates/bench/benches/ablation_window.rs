//! Ablation: the adaptive window vs fixed window sizes (§3.2).
//!
//! The paper's parameter-freedom argument: scheduler performance "depends
//! critically on the window size", and the best fixed size varies by
//! application — so systems with a tunable round size (CoreDet, Kendo,
//! PBBS) invite output-changing tuning. The adaptive policy should track
//! the best fixed size without a knob.

use galois_apps::{dmr, mis};
use galois_bench::inputs;
use galois_bench::tables::{f, Table};
use galois_core::{DetOptions, Executor, Schedule, WindowPolicy};

fn det_with(window: WindowPolicy, spread: usize) -> Executor {
    Executor::new()
        .threads(galois_bench::max_threads())
        .schedule(Schedule::Deterministic(DetOptions {
            window,
            locality_spread: spread,
            ..Default::default()
        }))
}

fn fixed(size: usize) -> WindowPolicy {
    WindowPolicy {
        min_window: size,
        max_window: size,
        ..WindowPolicy::default()
    }
}

fn main() {
    let scale = galois_bench::scale();
    println!("== Ablation: adaptive vs fixed DIG windows (scale {scale}) ==\n");
    let mut table = Table::new(&["app", "window", "time-ms", "rounds", "abort-ratio"]);

    let g = inputs::mis_graph(scale);
    let mesh_scale = scale;
    let mut run = |app: &str, window: &str, exec: &Executor| {
        let (elapsed, rounds, ratio) = match app {
            "mis" => {
                let (_out, r) = mis::galois(&g, exec);
                (r.stats.elapsed, r.stats.rounds, r.stats.abort_ratio())
            }
            _ => {
                let mesh = inputs::dmr_mesh(mesh_scale);
                let r = dmr::galois(&mesh, exec);
                (r.stats.elapsed, r.stats.rounds, r.stats.abort_ratio())
            }
        };
        table.row(vec![
            app.into(),
            window.into(),
            f(elapsed.as_secs_f64() * 1e3),
            rounds.to_string(),
            f(ratio),
        ]);
    };

    for app in ["mis", "dmr"] {
        let spread = if app == "dmr" { 16 } else { 1 };
        run(app, "adaptive", &det_with(WindowPolicy::default(), spread));
        for size in [64usize, 1024, 16 * 1024, 256 * 1024] {
            run(
                app,
                &format!("fixed {size}"),
                &det_with(fixed(size), spread),
            );
        }
    }
    println!("{}", table.render());
    println!(
        "expected shape: tiny fixed windows explode the round count; huge ones\n\
         explode the abort ratio; the adaptive policy lands near the best fixed\n\
         size for both applications without a tunable parameter"
    );
}
