//! Figure 10: the continuation optimization (§3.3) ablation.
//!
//! Paper result: disabling the continuation optimization — so the commit
//! phase re-executes each task's prefix up to the failsafe point — costs a
//! median 1.14× across the deterministic programs, with the benefit
//! concentrated in the more complicated dmr and dt (whose inspect phases,
//! the location walk and cavity growth, are the expensive prefix).
//!
//! Measurement: interleaved with/without pairs per application (single-core
//! wall time at one thread drifts more between separate sweeps than the
//! effect size, so pairs are run back-to-back and the median is reported).

use galois_bench::drivers::{measure, App, Opts};
use galois_bench::tables::{f, median, Table};
use galois_bench::Variant;

const REPS: usize = 5;

fn main() {
    let scale = galois_bench::scale();
    println!("== Figure 10: g-d without the continuation optimization (scale {scale}) ==\n");
    let mut table = Table::new(&["app", "median t(no-cont)/t(cont)", "per-rep ratios"]);
    let mut all_medians = Vec::new();
    for app in App::ALL {
        let mut ratios = Vec::new();
        for _ in 0..REPS {
            let with = measure(app, Variant::GaloisDet, 1, scale, Opts::default())
                .expect("g-d supported everywhere");
            let without = measure(
                app,
                Variant::GaloisDet,
                1,
                scale,
                Opts {
                    no_continuation: true,
                    ..Default::default()
                },
            )
            .expect("g-d supported everywhere");
            ratios.push(without.elapsed.as_secs_f64() / with.elapsed.as_secs_f64());
        }
        let med = median(&ratios);
        all_medians.push(med);
        table.row(vec![
            app.name().into(),
            f(med),
            ratios.iter().map(|r| f(*r)).collect::<Vec<_>>().join(" "),
        ]);
    }
    println!("{}", table.render());
    println!(
        "median improvement across applications: {}x (paper: 1.14x, significant\n\
         only for dmr and dt; ~1.0x elsewhere is expected — their operators\n\
         have cheap prefixes, so there is nothing to skip)",
        f(median(&all_medians))
    );
}
