//! Figure 4: task execution rates, abort ratios, and round counts.
//!
//! Paper rows: each application × {g-n, g-d, pbbs} at 1 thread and at the
//! maximum thread count, reporting committed tasks/µs, the abort ratio, and
//! (for the deterministic variants) the number of rounds. Expected shape
//! (§5.1): g-n abort ratios essentially zero; deterministic variants abort
//! more because each round inspects more tasks than threads; irregular
//! tasks are microsecond-scale.

use galois_bench::drivers::Opts;
use galois_bench::tables::{f, Table};
use galois_bench::{max_threads, measure, scale, App, Variant};

fn main() {
    let scale = scale();
    let threads_hi = max_threads();
    println!("== Figure 4: task rates, abort ratios, rounds (scale {scale}) ==");
    println!(
        "(rates at {threads_hi} oversubscribed threads on this 1-core host are\n\
         wall-clock artifacts; abort ratios and rounds are exact schedule facts)\n"
    );
    let mut table = Table::new(&[
        "app",
        "variant",
        "threads",
        "committed",
        "tasks/us",
        "abort-ratio",
        "rounds",
    ]);
    for app in App::ALL {
        for &variant in app.variants() {
            if variant == Variant::Seq {
                continue;
            }
            for threads in [1usize, threads_hi] {
                let Some(m) = measure(app, variant, threads, scale, Opts::default()) else {
                    continue;
                };
                table.row(vec![
                    app.name().into(),
                    variant.to_string(),
                    threads.to_string(),
                    m.committed.to_string(),
                    f(m.commit_rate_per_us()),
                    f(m.abort_ratio()),
                    m.rounds.to_string(),
                ]);
            }
        }
    }
    println!("{}", table.render());
}
