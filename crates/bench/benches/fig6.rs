//! Figure 6: CoreDet vs native execution.
//!
//! Paper result (§5.2): with CoreDet, blackscholes is nearly unaffected at
//! low thread counts, bodytrack/freqmine show limited speedups, and the
//! irregular programs (bfs, dmr, dt) perform poorly — a median slowdown of
//! 3.7× (min 1.3×, max 55×) at maximum threads. The mis row is the
//! data-parallel PBBS code and survives better. Reproduced with the DMP-O
//! virtual-time model over matched instruction streams.

use coredet_sim::kernels::Kernel;
use coredet_sim::model::{coredet_makespan_ns, native_makespan_ns};
use galois_bench::tables::{f, median, Table};

const QUANTUM_NS: f64 = 50_000.0;

fn main() {
    let scale = galois_bench::scale();
    println!("== Figure 6: CoreDet slowdown vs native (DMP-O model, quantum 50us) ==\n");
    let thread_points = [1usize, 2, 4, 8, 16, 32, 40];
    let mut table = Table::new(&["program", "p", "native-ms", "coredet-ms", "slowdown"]);
    let mut max_thread_slowdowns = Vec::new();
    for k in Kernel::ALL {
        for &p in &thread_points {
            let streams = k.streams(p, scale);
            let native = native_makespan_ns(&streams);
            let coredet = coredet_makespan_ns(&streams, QUANTUM_NS);
            let slowdown = coredet / native;
            if p == 40 {
                max_thread_slowdowns.push(slowdown);
            }
            table.row(vec![
                k.name().into(),
                p.to_string(),
                f(native / 1e6),
                f(coredet / 1e6),
                f(slowdown),
            ]);
        }
    }
    println!("{}", table.render());
    let min = max_thread_slowdowns
        .iter()
        .copied()
        .fold(f64::MAX, f64::min);
    let max = max_thread_slowdowns.iter().copied().fold(0.0, f64::max);
    println!(
        "at max threads: median slowdown {}x (min {}x, max {}x)",
        f(median(&max_thread_slowdowns)),
        f(min),
        f(max)
    );
    println!("paper: median 3.7x (min 1.3x, max 55x)");
}
