//! Figure 7: speedup of g-n, g-d and PBBS over the best sequential
//! baseline, across thread counts and machines.
//!
//! Paper result (§5.3): g-n is the best variant overall (median 2.4× over
//! PBBS at max threads), with ≥15× speedup on m4x10 for four of five apps;
//! deterministic variants scale substantially worse; numa8x4 shows a cliff
//! past 8 threads. Speedups here come from one-thread traces replayed
//! through the virtual-time machine model (DESIGN.md, substitution 1).

use galois_bench::sweep::{run_sweep, thread_points};
use galois_bench::tables::{f, load_bench_jsonl, rounds_metric_name, Table};
use galois_bench::{App, Variant};
use galois_runtime::simtime::MachineProfile;

/// The checked-in `BENCH_rounds.json` baselines, keyed by the canonical
/// `rounds/{app}_t{threads}_{metric}` names. Entries that are missing or
/// renamed are reported as "missing", never skipped — a rename in the
/// bench suite must show up here as a hole, not as a shorter table.
fn print_rounds_baselines() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .join("BENCH_rounds.json");
    println!("-- checked-in round baselines ({}) --", path.display());
    let map = match load_bench_jsonl(&path) {
        Ok(map) => map,
        Err(e) => {
            println!("unavailable: {e}");
            println!("regenerate with: cargo run -p galois-bench --release --bin bench_all\n");
            return;
        }
    };
    let mut table = Table::new(&["app", "threads", "round wall (ns)", "barriers", "allocs"]);
    let mut missing = Vec::new();
    for app in ["bfs", "mis"] {
        for threads in [1usize, 2, 4, 8] {
            let mut cell = |metric: &str| {
                let name = rounds_metric_name(app, threads, metric);
                match map.get(&name) {
                    Some(v) => f(*v),
                    None => {
                        missing.push(name);
                        "missing".into()
                    }
                }
            };
            table.row(vec![
                app.into(),
                threads.to_string(),
                cell("round_wall_ns"),
                cell("barriers_per_round"),
                cell("allocs_per_round"),
            ]);
        }
    }
    println!("{}", table.render());
    if !missing.is_empty() {
        println!(
            "{} baseline entr{} missing from {}:",
            missing.len(),
            if missing.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        for name in &missing {
            println!("  {name}");
        }
        println!("regenerate with: cargo run -p galois-bench --release --bin bench_all");
    }
    println!();
}

fn main() {
    let scale = galois_bench::scale();
    println!("== Figure 7: speedup vs best sequential baseline (scale {scale}) ==\n");
    let data = run_sweep(scale, false);
    for machine in &MachineProfile::ALL {
        println!("-- machine {} --", machine.name);
        let pts = thread_points(machine);
        let mut header: Vec<String> = vec!["app".into(), "variant".into()];
        header.extend(pts.iter().map(|p| format!("p={p}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);
        for app in App::ALL {
            for &variant in app.variants() {
                if variant == Variant::Seq {
                    continue;
                }
                let mut row = vec![app.name().to_string(), variant.to_string()];
                for &p in &pts {
                    let s = data
                        .speedup((app, variant, machine.name, p))
                        .map(f)
                        .unwrap_or_else(|| "-".into());
                    row.push(s);
                }
                table.row(row);
            }
        }
        println!("{}", table.render());
    }

    // Why the round-based variants flatten: the leader-serial share of the
    // round work is the Amdahl term no thread count removes. Read off the
    // recorded one-thread traces of the bulk-synchronous variants.
    println!("-- leader-serial fraction of round work (from 1-thread traces) --");
    let mut serial = Table::new(&["app", "variant", "serial fraction"]);
    for app in App::ALL {
        for &variant in app.variants() {
            // Every (app, variant) gets a row: a measurement gap renders as
            // "-" instead of silently vanishing from the table.
            let frac = data
                .one_thread
                .get(&(app, variant))
                .and_then(|m| m.serial_fraction());
            serial.row(vec![
                app.name().into(),
                variant.to_string(),
                frac.map(f).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    println!("{}", serial.render());

    print_rounds_baselines();

    println!(
        "expected shape: g-n scales best (near-linear until the NUMA cliff on\n\
         numa8x4); g-d and pbbs flatten as rounds and barriers dominate, and\n\
         the serial-fraction table above bounds their asymptotic speedup"
    );
}
