//! Figure 7: speedup of g-n, g-d and PBBS over the best sequential
//! baseline, across thread counts and machines.
//!
//! Paper result (§5.3): g-n is the best variant overall (median 2.4× over
//! PBBS at max threads), with ≥15× speedup on m4x10 for four of five apps;
//! deterministic variants scale substantially worse; numa8x4 shows a cliff
//! past 8 threads. Speedups here come from one-thread traces replayed
//! through the virtual-time machine model (DESIGN.md, substitution 1).

use galois_bench::sweep::{run_sweep, thread_points};
use galois_bench::tables::{f, Table};
use galois_bench::{App, Variant};
use galois_runtime::simtime::MachineProfile;

fn main() {
    let scale = galois_bench::scale();
    println!("== Figure 7: speedup vs best sequential baseline (scale {scale}) ==\n");
    let data = run_sweep(scale, false);
    for machine in &MachineProfile::ALL {
        println!("-- machine {} --", machine.name);
        let pts = thread_points(machine);
        let mut header: Vec<String> = vec!["app".into(), "variant".into()];
        header.extend(pts.iter().map(|p| format!("p={p}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);
        for app in App::ALL {
            for &variant in app.variants() {
                if variant == Variant::Seq {
                    continue;
                }
                let mut row = vec![app.name().to_string(), variant.to_string()];
                for &p in &pts {
                    let s = data
                        .speedup((app, variant, machine.name, p))
                        .map(f)
                        .unwrap_or_else(|| "-".into());
                    row.push(s);
                }
                table.row(row);
            }
        }
        println!("{}", table.render());
    }

    // Why the round-based variants flatten: the leader-serial share of the
    // round work is the Amdahl term no thread count removes. Read off the
    // recorded one-thread traces of the bulk-synchronous variants.
    println!("-- leader-serial fraction of round work (from 1-thread traces) --");
    let mut serial = Table::new(&["app", "variant", "serial fraction"]);
    for app in App::ALL {
        for &variant in app.variants() {
            let Some(m) = data.one_thread.get(&(app, variant)) else {
                continue;
            };
            if let Some(frac) = m.serial_fraction() {
                serial.row(vec![app.name().into(), variant.to_string(), f(frac)]);
            }
        }
    }
    println!("{}", serial.render());

    println!(
        "expected shape: g-n scales best (near-linear until the NUMA cliff on\n\
         numa8x4); g-d and pbbs flatten as rounds and barriers dominate, and\n\
         the serial-fraction table above bounds their asymptotic speedup"
    );
}
