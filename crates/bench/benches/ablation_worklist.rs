//! Ablation: speculative worklist policy (LIFO vs FIFO).
//!
//! The unordered pool of Figure 1a admits any processing order; the Galois
//! runtime makes the order a pluggable policy because it can change total
//! *work* for label-correcting algorithms: LIFO bfs explores deep stale
//! paths and relabels nodes many times, FIFO approximates level order.
//! (The deterministic scheduler imposes its own order and ignores this.)

use galois_apps::bfs;
use galois_bench::inputs;
use galois_bench::tables::{f, Table};
use galois_core::{Executor, Schedule, WorklistPolicy};

fn main() {
    let scale = galois_bench::scale();
    println!("== Ablation: speculative worklist policy on bfs (scale {scale}) ==\n");
    // LIFO bfs is catastrophically redundant; use a reduced input so the
    // table finishes quickly.
    let g = inputs::bfs_graph(scale * 0.1);
    let mut table = Table::new(&["policy", "time-ms", "committed tasks", "work blowup"]);
    let mut baseline = None;
    for (name, policy) in [
        ("fifo", WorklistPolicy::Fifo),
        ("lifo", WorklistPolicy::Lifo),
    ] {
        let exec = Executor::new()
            .threads(galois_bench::max_threads())
            .schedule(Schedule::Speculative)
            .worklist(policy);
        let (_dist, r) = bfs::galois(&g, 0, &exec);
        let committed = r.stats.committed;
        let blowup = match baseline {
            None => {
                baseline = Some(committed);
                1.0
            }
            Some(b) => committed as f64 / b as f64,
        };
        table.row(vec![
            name.into(),
            f(r.stats.elapsed.as_secs_f64() * 1e3),
            committed.to_string(),
            f(blowup),
        ]);
    }
    println!("{}", table.render());
    println!("expected shape: LIFO commits orders of magnitude more (stale) tasks");
}
