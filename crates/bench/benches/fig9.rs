//! Figure 9: performance of g-n and g-d relative to the handwritten PBBS
//! variants, plus the paper's headline medians.
//!
//! Paper (§5.3): at max threads the median of t_pbbs/t_g-n is 2.4× and of
//! t_pbbs/t_g-d is 0.62× (0.70× excluding mis); g-n over g-d is 4.2×. The
//! table reports mean / max / 1-thread / max-thread ratios per machine.

use galois_bench::sweep::{run_sweep, thread_points};
use galois_bench::tables::{f, median, Table};
use galois_bench::{App, Variant};
use galois_runtime::simtime::MachineProfile;

fn main() {
    let scale = galois_bench::scale();
    println!("== Figure 9: performance relative to the PBBS variant (scale {scale}) ==");
    println!("(t_pbbs(p) / t_var(p); >1 means the variant is faster than PBBS)\n");
    let data = run_sweep(scale, false);

    let mut table = Table::new(&["machine", "app", "variant", "mean", "max", "I1", "Imax"]);
    let mut med_gn_imax = Vec::new();
    let mut med_gd_imax = Vec::new();
    let mut med_gd_imax_no_mis = Vec::new();
    let mut med_gn_over_gd = Vec::new();

    for machine in &MachineProfile::ALL {
        let pts = thread_points(machine);
        let imax = *pts.last().unwrap();
        for app in App::ALL {
            if !app.variants().contains(&Variant::Pbbs) {
                continue; // pfp has no PBBS comparator
            }
            for variant in [Variant::GaloisNondet, Variant::GaloisDet] {
                let ratios: Vec<f64> = pts
                    .iter()
                    .filter_map(|&p| data.relative_to_pbbs(app, variant, machine.name, p))
                    .collect();
                let i1 = data
                    .relative_to_pbbs(app, variant, machine.name, 1)
                    .unwrap();
                let rmax = data
                    .relative_to_pbbs(app, variant, machine.name, imax)
                    .unwrap();
                let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
                let max = ratios.iter().copied().fold(0.0, f64::max);
                table.row(vec![
                    machine.name.into(),
                    app.name().into(),
                    variant.to_string(),
                    f(mean),
                    f(max),
                    f(i1),
                    f(rmax),
                ]);
                match variant {
                    Variant::GaloisNondet => med_gn_imax.push(rmax),
                    Variant::GaloisDet => {
                        med_gd_imax.push(rmax);
                        if app != App::Mis {
                            med_gd_imax_no_mis.push(rmax);
                        }
                    }
                    _ => {}
                }
            }
            let gn = data.times[&(app, Variant::GaloisNondet, machine.name, imax)];
            let gd = data.times[&(app, Variant::GaloisDet, machine.name, imax)];
            med_gn_over_gd.push(gd / gn);
        }
        // pfp contributes to the g-n vs g-d comparison only.
        let pts_last = imax;
        let gn = data.times[&(App::Pfp, Variant::GaloisNondet, machine.name, pts_last)];
        let gd = data.times[&(App::Pfp, Variant::GaloisDet, machine.name, pts_last)];
        med_gn_over_gd.push(gd / gn);
    }
    println!("{}", table.render());
    println!("medians at max threads:");
    println!(
        "  g-n vs pbbs: {}x   (paper: 2.4x)",
        f(median(&med_gn_imax))
    );
    println!(
        "  g-d vs pbbs: {}x   (paper: 0.62x; 0.70x without mis -> here {}x)",
        f(median(&med_gd_imax)),
        f(median(&med_gd_imax_no_mis))
    );
    println!(
        "  g-n vs g-d:  {}x   (paper: 4.2x)",
        f(median(&med_gn_over_gd))
    );
}
